"""Run-store performance — warm store-served sweeps versus cold simulation.

``Study`` sweeps through a :class:`~repro.store.cache.StoreCache` persist
every cell under a content-addressed run ID, so repeating a sweep (same
specs, scenarios, seed, engine version) is pure disk reads: the warm pass
must execute **zero** simulator tasks and finish orders of magnitude faster
than the cold pass that actually stepped the closed-loop dynamics.  This
benchmark runs a specs x scenarios x TDP grid cold into a fresh store, then
re-runs it warm, asserts the warm pass touched no simulator code, and
records the timings to ``benchmarks/output/store_benchmark.json`` so CI can
track the perf trajectory across PRs (see ``benchmarks/perf_track.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.analysis.study import Study
from repro.pdn.transients import paper_transient_scenarios
from repro.store import RunStore, StoreCache

#: Where the timing artifact lands (overridable for local experiments).
OUTPUT_PATH = Path(
    os.environ.get(
        "STORE_BENCH_OUT",
        Path(__file__).parent / "output" / "store_benchmark.json",
    )
)

#: CI-safe floor; warm disk reads typically beat cold transient
#: simulation by 50x+ locally, but shared runners have slow filesystems.
MIN_SPEEDUP = 10.0

#: The sweep grid: 2 PDN configurations x the paper's transient scenarios.
#: Transient cells are the store's best case — each cold run integrates the
#: RLC ladder at sub-nanosecond steps, while the stored artifact is a small
#: droop summary — but the warm pass is identical machinery for every kind.
SPEC_NAMES = ("darkgates", "baseline")
SEED = 7


def _sweep(root: str) -> Study:
    study = Study(
        SPEC_NAMES,
        {"transients": paper_transient_scenarios()},
        cache=StoreCache(root, seed=SEED),
        seed=SEED,
        name="store-bench",
    )
    study.run()
    return study


def _timed_sweep(root: str):
    start = time.perf_counter()
    study = _sweep(root)
    return study, time.perf_counter() - start


def test_store_warm_path_speedup(benchmark):
    root = tempfile.mkdtemp(prefix="repro_store_bench_")

    cold, cold_s = _timed_sweep(root)
    assert cold.tasks_executed == len(cold)

    # Best-of-two warm passes (fresh cache objects, so every read goes to
    # disk), then one measured pass through the benchmark fixture.
    warm, warm_s = _timed_sweep(root)
    _, second_warm_s = _timed_sweep(root)
    warm_s = min(warm_s, second_warm_s)
    benchmark.pedantic(
        lambda: _sweep(root), rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = cold_s / warm_s

    assert warm.tasks_executed == 0, "warm sweep must execute zero tasks"
    stored = len(RunStore(root))

    payload = {
        "grid": {
            "specs": list(SPEC_NAMES),
            "scenarios": [
                scenario.name for scenario in paper_transient_scenarios()
            ],
        },
        "runs": stored,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_warm_vs_cold": speedup,
        "warm_tasks_executed": warm.tasks_executed,
    }
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2))

    print()
    print(f"grid: {stored} runs persisted to {root}")
    print(f"cold (simulated):   {cold_s * 1e3:8.1f} ms")
    print(f"warm (store reads): {warm_s * 1e3:8.1f} ms  ({speedup:.1f}x)")
    print(f"timing artifact:    {OUTPUT_PATH}")

    assert stored == len(cold)
    assert speedup >= MIN_SPEEDUP
