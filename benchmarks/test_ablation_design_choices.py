"""Ablations of the design choices called out in DESIGN.md.

* Package C8 availability — without it the DarkGates part cannot meet the
  energy-efficiency limits (this is the paper's own Fig. 10 ablation).
* PBM idle-core-leakage accounting — ignoring it would hide the 35 W
  graphics loss of Fig. 9.
* Guardband-to-power coupling — ignoring the power benefit of a smaller
  guardband removes most of the TDP-limited (rate-mode) gains.
* Reliability guardband — applying it costs a small, bounded share of the
  DarkGates gain.
"""

from __future__ import annotations

from repro.core.spec import get_spec
from repro.pdn.guardband import GuardbandModel
from repro.pdn.loadline import default_virus_table
from repro.pmu.dvfs import CpuDemand, DvfsPolicy
from repro.pmu.vf_curve import VfCurve
from repro.sim.engine import SimulationEngine
from repro.soc.skus import skylake_h_mobile, skylake_s_desktop
from repro.workloads.energy import rmt_scenario
from repro.workloads.spec import spec_cpu2006_base_suite


def _curve(processor, coupling: float) -> VfCurve:
    return VfCurve(
        silicon=processor.die.vf_character,
        guardband_model=GuardbandModel(processor.package.pdn),
        virus_table=default_virus_table(processor.core_count),
        frequency_grid=processor.die.core_frequency_grid,
        vmax_v=processor.die.vmax_v,
        guardband_power_coupling=coupling,
    )


def _rate_frequency_gain(tdp_w: float, coupling: float) -> float:
    """All-core frequency gain of bypassing at one TDP and coupling setting."""
    demand = CpuDemand(active_cores=4, activity=0.65)
    gated_processor = skylake_h_mobile(tdp_w)
    bypassed_processor = skylake_s_desktop(tdp_w)
    gated = DvfsPolicy(gated_processor, _curve(gated_processor, coupling), bypass_mode=False)
    bypassed = DvfsPolicy(
        bypassed_processor, _curve(bypassed_processor, coupling), bypass_mode=True
    )
    return (
        bypassed.resolve(demand).frequency_hz / gated.resolve(demand).frequency_hz - 1.0
    )


def _ablation_summary():
    # C8 ablation (energy limits).
    darkgates = SimulationEngine(get_spec("darkgates", tdp_w=91.0).build())
    scenario = rmt_scenario()
    with_c8 = darkgates.run_energy_scenario(scenario)

    # Reliability-guardband ablation (performance).
    suite = spec_cpu2006_base_suite()
    baseline_engine = SimulationEngine(get_spec("baseline", tdp_w=91.0).build())
    with_margin = SimulationEngine(get_spec("darkgates", tdp_w=91.0).build())
    without_margin = SimulationEngine(
        get_spec("darkgates", tdp_w=91.0, apply_reliability_guardband=False).build()
    )

    def average_gain(engine):
        gains = []
        for workload in suite:
            gains.append(
                engine.run_cpu_workload(workload).improvement_over(
                    baseline_engine.run_cpu_workload(workload)
                )
            )
        return sum(gains) / len(gains)

    return {
        "rmt_with_c8_w": with_c8.average_power_w,
        "gain_with_reliability_margin": average_gain(with_margin),
        "gain_without_reliability_margin": average_gain(without_margin),
        "rate_gain_tdp_limited_full_coupling": _rate_frequency_gain(45.0, coupling=0.75),
        "rate_gain_tdp_limited_no_coupling": _rate_frequency_gain(45.0, coupling=0.0),
    }


def test_ablation_design_choices(benchmark):
    summary = benchmark.pedantic(_ablation_summary, rounds=1, iterations=1, warmup_rounds=0)

    print()
    for key, value in summary.items():
        print(f"{key}: {value:.4f}")

    # Guardband-power coupling: removing it (coupling=0) removes most of the
    # TDP-limited all-core gain; with it the gain is clearly positive.
    assert summary["rate_gain_tdp_limited_full_coupling"] > 0.02
    assert (
        summary["rate_gain_tdp_limited_no_coupling"]
        < summary["rate_gain_tdp_limited_full_coupling"]
    )

    # Reliability guardband: applying it costs some gain, but less than half.
    with_margin = summary["gain_with_reliability_margin"]
    without_margin = summary["gain_without_reliability_margin"]
    assert without_margin >= with_margin - 1e-9
    assert with_margin > 0.5 * without_margin

    # Package C8 keeps the RMT average power under 1 W on the DarkGates part.
    assert summary["rmt_with_c8_w"] < 1.0
