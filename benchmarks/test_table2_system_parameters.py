"""Table 2 — parameters of the evaluated systems.

Regenerates the SKU parameter table and checks that the instantiated
processor models agree with it.
"""

from __future__ import annotations

from repro.analysis.experiments import run_table2_system_parameters
from repro.analysis.reporting import format_table
from repro.soc.skus import skylake_h_mobile, skylake_s_desktop


def test_table2_system_parameters(benchmark):
    descriptions = benchmark(run_table2_system_parameters)

    rows = [
        (
            d.name,
            d.segment,
            d.package,
            d.core_count,
            f"{d.core_frequency_range_ghz[0]}-{d.core_frequency_range_ghz[1]} GHz",
            f"{d.graphics_frequency_range_mhz[0]:.0f}-{d.graphics_frequency_range_mhz[1]:.0f} MHz",
            f"{d.llc_mb:.0f} MB",
            f"{d.tdp_range_w[0]:.0f}-{d.tdp_range_w[1]:.0f} W",
            f"{d.process_nm} nm",
        )
        for d in descriptions
    ]
    print()
    print(
        format_table(
            ["SKU", "segment", "package", "cores", "core freq", "gfx freq", "LLC", "TDP", "process"],
            rows,
            title="Table 2: evaluated systems",
        )
    )

    desktop, mobile = descriptions
    assert desktop.name == "i7-6700K" and mobile.name == "i7-6920HQ"
    assert desktop.core_count == mobile.core_count == 4
    assert desktop.llc_mb == mobile.llc_mb == 8.0
    assert desktop.tdp_range_w == (35.0, 91.0)
    assert desktop.process_nm == 14

    # The instantiated processor models agree with the table.
    desktop_processor = skylake_s_desktop()
    mobile_processor = skylake_h_mobile()
    assert desktop_processor.core_count == desktop.core_count
    assert desktop_processor.die.uncore.llc_mb == desktop.llc_mb
    assert desktop_processor.die.graphics.frequency_grid.max_hz == (
        desktop.graphics_frequency_range_mhz[1] * 1e6
    )
    assert desktop_processor.power_gates_bypassed
    assert not mobile_processor.power_gates_bypassed
