"""Fig. 10 — ENERGY STAR and Intel RMT average-power reductions.

Paper shape (relative to the DarkGates part limited to package C7):
DarkGates+C8 reduces average power by ~33 % (ENERGY STAR) and ~68 % (RMT);
the non-DarkGates baseline by ~37 % and ~77 %.  DarkGates+C7 misses both
benchmarks' limits, DarkGates+C8 meets them.
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig10_energy_efficiency
from repro.core.spec import get_spec
from repro.pmu.cstates import PackageCState


def test_fig10_energy_efficiency(benchmark):
    result = benchmark.pedantic(
        run_fig10_energy_efficiency, rounds=1, iterations=1, warmup_rounds=0
    )

    print()
    print(result.as_text())
    for scenario, reference in result.reference_power_w.items():
        print(f"DarkGates+C7 reference average power ({scenario}): {reference:.2f} W")

    energy_star_c8, energy_star_base = result.reductions["ENERGY STAR"]
    rmt_c8, rmt_base = result.reductions["RMT"]

    # ENERGY STAR reductions near the paper's 33 % / 37 %.
    assert 0.20 <= energy_star_c8 <= 0.50
    assert 0.20 <= energy_star_base <= 0.55
    # RMT reductions near the paper's 68 % / 77 %.
    assert 0.50 <= rmt_c8 <= 0.85
    assert 0.55 <= rmt_base <= 0.90

    # The baseline (gated) system reduces at least as much as DarkGates+C8 —
    # DarkGates trades a little idle power for its performance gains.
    assert rmt_base >= rmt_c8 - 1e-9
    assert energy_star_base >= energy_star_c8 - 1e-9

    # Limit compliance: C8 is required for the DarkGates part.
    for scenario in ("ENERGY STAR", "RMT"):
        darkgates_c7_ok, darkgates_c8_ok, baseline_ok = result.limit_compliance[scenario]
        assert not darkgates_c7_ok
        assert darkgates_c8_ok
        assert baseline_ok

    # Section 4.3: DarkGates package-C7 power is more than 3x the baseline's.
    darkgates = get_spec("darkgates", tdp_w=91.0).build()
    baseline = get_spec("baseline", tdp_w=91.0).build()
    ratio = darkgates.cstate_model.power_w(PackageCState.C7) / baseline.cstate_model.power_w(
        PackageCState.C7
    )
    print(f"package C7 power ratio (DarkGates / baseline): {ratio:.2f}x")
    assert ratio > 3.0
