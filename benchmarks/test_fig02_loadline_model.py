"""Fig. 2 — load-line behaviour and multi-level power-virus guardbands.

Regenerates the background model of Fig. 2: the load-line voltage/current
relationship, the excess voltage carried at light load, and the guardband
steps between power-virus levels.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.pdn.loadline import LoadLine, default_virus_table


def _loadline_rows():
    loadline = LoadLine(resistance_ohm=1.8e-3, vmin_v=0.55, vmax_v=1.52)
    table = default_virus_table(4)
    rows = []
    for level in table.levels:
        guardband = loadline.guardband_for_level(level)
        excess_at_typical = loadline.excess_voltage_v(
            level.virus_current_a, 0.6 * level.virus_current_a
        )
        rows.append(
            (
                level.name,
                level.max_active_cores,
                level.virus_current_a,
                guardband * 1e3,
                excess_at_typical * 1e3,
            )
        )
    return loadline, table, rows


def test_fig02_loadline_model(benchmark):
    loadline, table, rows = benchmark(_loadline_rows)

    print()
    print(
        format_table(
            ["level", "cores", "virus current (A)", "IR guardband (mV)", "excess at typical (mV)"],
            rows,
            title="Fig. 2: load-line / adaptive voltage positioning",
        )
    )

    # Guardband grows monotonically with the virus level (Fig. 2(c)).
    guardbands = [row[3] for row in rows]
    assert guardbands == sorted(guardbands)
    # The guardband step between adjacent levels is the dV annotation.
    steps = [b - a for a, b in zip(guardbands, guardbands[1:])]
    assert all(step > 0 for step in steps)
    # Light (typical) load carries excess voltage, the motivation for
    # adaptive (multi-level) guardbands.
    assert all(row[4] > 0 for row in rows)
    # Load voltage stays within the Vmin/Vmax window at a sane setpoint.
    loadline.check_operating_point(
        vr_setpoint_v=1.25, virus_current_a=table.highest().virus_current_a
    )
