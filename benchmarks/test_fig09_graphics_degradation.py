"""Fig. 9 — 3DMark performance impact across TDP levels.

Paper shape: ~2 % degradation at 35 W (thermally limited), essentially zero
at 45 W and above.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig9_graphics_degradation


def test_fig09_graphics_degradation(benchmark):
    result = benchmark.pedantic(
        run_fig9_graphics_degradation, rounds=1, iterations=1, warmup_rounds=0
    )

    print()
    print(result.as_text())

    degradation = dict(zip(result.tdp_levels_w, result.average_degradation))

    # Only the thermally-limited 35 W configuration loses graphics performance.
    assert 0.002 <= degradation[35.0] <= 0.06
    assert degradation[65.0] == pytest.approx(0.0, abs=1e-9)
    assert degradation[91.0] == pytest.approx(0.0, abs=1e-9)

    # Degradation is monotonically non-increasing with TDP.
    series = result.average_degradation
    assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))

    # The 45 W level sits between 35 W and the unaffected high-TDP levels.
    assert degradation[45.0] <= degradation[35.0]
    assert degradation[45.0] <= 0.02
