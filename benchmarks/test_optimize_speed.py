"""Inverse-query performance — bisection versus the dense sweep it replaces.

``Study.optimize`` answers "minimum TDP sustaining a frequency target" by
bisecting the TDP grid, probing O(log n) cells through the same engine a
dense ``Study.over_dynamics`` sweep would evaluate n times.  This harness
poses the paper's min-TDP question on a 64-level TDP grid against the
closed-loop dynamics engine, solves it both ways on cold caches, asserts
the bisection answer is *identical* to the dense scan's argmin (exactness
is the whole point — see ``tests/test_optimize.py`` for the oracle suite),
and records the timing to ``benchmarks/output/optimize_benchmark.json`` so
CI can track the trajectory across PRs (``benchmarks/perf_track.py`` gates
the ``speedup_bisect_vs_dense`` headline against ``baseline.json``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict

from repro.analysis.optimize import (
    Constraint,
    Objective,
    OptimizationSpec,
)
from repro.analysis.study import Study
from repro.workloads.dynamics import sustained_scenario

#: Where the timing artifact lands (overridable for local experiments).
OUTPUT_PATH = Path(
    os.environ.get(
        "OPTIMIZE_BENCH_OUT",
        Path(__file__).parent / "output" / "optimize_benchmark.json",
    )
)

#: Acceptance floor: bisection must beat the dense sweep by >= 5x on the
#: 64-level grid (log2(64) + 1 = 7 probes against 64 cells puts the
#: expected ratio near 9x; shared CI runners are noisy, hence the floor).
MIN_SPEEDUP = 5.0

#: 64 TDP candidates, 1 W apart — the dense sweep's whole grid.
TDP_GRID = tuple(float(t) for t in range(28, 92))

TARGET_HZ = 3.0e9


def _query(method: str, name: str) -> OptimizationSpec:
    return OptimizationSpec(
        name=name,
        method=method,
        objectives=(Objective("tdp_w", "min"),),
        constraints=(Constraint("sustained_frequency_hz", ">=", TARGET_HZ),),
        variables={"tdp_w": TDP_GRID},
    )


def _solve(method: str, name: str):
    """One cold-cache solve; returns (study, result)."""
    study = Study.optimize(
        ("darkgates",),
        _query(method, name),
        scenario=sustained_scenario(),
        executor="serial",
        name=name,
    )
    return study, study.run()


def _update_artifact(fields: Dict[str, Any]) -> None:
    """Merge *fields* into the benchmark artifact (tests share one file)."""
    payload: Dict[str, Any] = {}
    if OUTPUT_PATH.exists():
        payload = json.loads(OUTPUT_PATH.read_text())
    payload.update(fields)
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))


def test_optimize_bisect_speedup(benchmark):
    # Warm shared caches (engine build, candidate tables) so the timed
    # sections compare probe counts, not first-touch costs.
    _solve("bisect", "optimize-bench-warm")

    start = time.perf_counter()
    bisect_study, bisect_result = _solve("bisect", "optimize-bench-bisect")
    bisect_s = time.perf_counter() - start

    start = time.perf_counter()
    dense_study, dense_result = _solve("grid", "optimize-bench-dense")
    dense_s = time.perf_counter() - start

    benchmark.pedantic(
        lambda: _solve("bisect", "optimize-bench-bisect"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    speedup = dense_s / bisect_s

    bisect_cell = bisect_result.cells[0]
    dense_cell = dense_result.cells[0]
    identical = (
        bisect_cell.best.variables == dense_cell.best.variables
        and bisect_cell.best.metrics == dense_cell.best.metrics
    )

    _update_artifact(
        {
            "grid_levels": len(TDP_GRID),
            "target_ghz": TARGET_HZ / 1e9,
            "bisect_probes": bisect_cell.probes,
            "dense_probes": dense_cell.probes,
            "bisect_s": bisect_s,
            "dense_s": dense_s,
            "speedup_bisect_vs_dense": speedup,
            "answers_identical": identical,
            "min_tdp_w": bisect_cell.best.variable("tdp_w"),
        }
    )

    print()
    print(f"min TDP sustaining {TARGET_HZ / 1e9:.1f} GHz on {len(TDP_GRID)} levels")
    print(
        f"dense sweep:  {dense_s:8.2f} s  ({dense_cell.probes} probes)"
    )
    print(
        f"bisection:    {bisect_s:8.2f} s  ({bisect_cell.probes} probes, "
        f"{speedup:.1f}x)"
    )
    print(f"timing artifact: {OUTPUT_PATH}")

    assert identical, "bisection diverged from the dense sweep's argmin"
    assert bisect_cell.probes < dense_cell.probes
    assert dense_cell.probes == len(TDP_GRID)
    assert bisect_study.tasks_executed < dense_study.tasks_executed
    assert speedup >= MIN_SPEEDUP
