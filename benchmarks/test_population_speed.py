"""Population-sweep performance — lockstep fast path versus per-die stepping.

``Study.over_population`` can run a sampled die population two ways: the
*reference* path materialises one ``SystemSpec.variant()`` per die and steps
each through its own engine, while the *fast* path injects the population's
parameter arrays straight into the batched dynamics state and steps every
die in lockstep.  This benchmark runs a >= 4096-die population through both
paths on the same seed, asserts that the population quantiles (in fact the
entire condensed cells, binning included) are identical, and records the
timings to ``benchmarks/output/population_benchmark.json`` so CI can track
the perf trajectory across PRs (see ``benchmarks/perf_track.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.study import Study
from repro.variation.distributions import skylake_process_variation
from repro.workloads.dynamics import burst_scenario

#: Where the timing artifact lands (overridable for local experiments).
OUTPUT_PATH = Path(
    os.environ.get(
        "POPULATION_BENCH_OUT",
        Path(__file__).parent / "output" / "population_benchmark.json",
    )
)

#: Acceptance floor: the fast path must beat per-die stepping by >= 5x on
#: the 4096-die population (measured speedups are far higher; shared CI
#: runners are noisy, hence the conservative floor).
MIN_SPEEDUP = 5.0

DICE = 4096
SEED = 1337
TDP_W = 65.0


def _study(method: str) -> Study:
    scenario = burst_scenario(
        idle_lead_s=4.0,
        burst_s=12.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.1,
    )
    return Study.over_population(
        ("darkgates",),
        (scenario,),
        skylake_process_variation(),
        count=DICE,
        tdp_levels_w=(TDP_W,),
        seed=SEED,
        method=method,
        name=f"population-bench-{method}",
    )


def test_population_fast_path_speedup(benchmark):
    # Warm shared caches (engine build, nominal candidate tables) so the
    # timed sections compare stepping strategies, not first-touch costs.
    fast_result = _study("fast").run()

    start = time.perf_counter()
    fast_result = _study("fast").run()
    fast_s = time.perf_counter() - start

    start = time.perf_counter()
    reference_result = _study("reference").run()
    reference_s = time.perf_counter() - start

    benchmark.pedantic(
        lambda: _study("fast").run(), rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = reference_s / fast_s

    identical = (
        fast_result.cells == reference_result.cells
        and fast_result.binning == reference_result.binning
    )
    cell = fast_result.cells[0]
    payload = {
        "dice": DICE,
        "seed": SEED,
        "tdp_w": TDP_W,
        "steps_per_die": len(cell.times_s),
        "reference_s": reference_s,
        "fast_s": fast_s,
        "speedup_fast_vs_reference": speedup,
        "quantiles_identical": identical,
        "bin_yields": fast_result.bin_yields("darkgates"),
    }
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2))

    print()
    print(f"population: {DICE} dice x {len(cell.times_s)} steps")
    print(f"reference (per-die):   {reference_s:8.2f} s")
    print(f"fast (lockstep):       {fast_s:8.2f} s  ({speedup:.1f}x)")
    print(f"timing artifact:       {OUTPUT_PATH}")

    assert payload["dice"] >= 4096 and cell.count >= 4096
    assert identical, "fast-path population diverged from the per-die reference"
    assert speedup >= MIN_SPEEDUP
