"""Population-sweep performance — lockstep fast path versus per-die stepping.

``Study.over_population`` can run a sampled die population three ways: the
*reference* path materialises one ``SystemSpec.variant()`` per die and steps
each through its own engine, the *fast* path injects the population's
parameter arrays straight into the batched dynamics state and steps every
die in lockstep, and the *streaming* path runs fixed-size shards through
the fast path and folds each into mergeable online accumulators so peak
memory is O(shard), not O(population).  This harness runs a >= 4096-die
population through all paths on the same seed, asserts the fast path is
identical to the reference and the streaming path matches the fast path
(bit-identical exact statistics, histogram-backed quantiles within their
documented error bounds), gauges streaming-vs-monolithic peak memory with
``tracemalloc`` on a 64k-die population, drives a seeded million-die
streaming binning study to completion in bounded memory, and records
everything to ``benchmarks/output/population_benchmark.json`` so CI can
track the perf and memory trajectory across PRs (see
``benchmarks/perf_track.py``; the ``peak_mb`` key is gated against growth).
"""

from __future__ import annotations

import gc
import json
import math
import os
import time
import tracemalloc
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.analysis.study import Study
from repro.core.spec import build_engine, resolve_spec
from repro.variation.binning import SCRAP_BIN, die_metrics, skylake_binning_policy
from repro.variation.distributions import skylake_process_variation
from repro.variation.sampler import DiePopulationSampler
from repro.variation.streaming import (
    ShardPlan,
    merge_binning_shards,
    run_binning_shard,
)
from repro.workloads.dynamics import burst_scenario

#: Where the timing artifact lands (overridable for local experiments).
OUTPUT_PATH = Path(
    os.environ.get(
        "POPULATION_BENCH_OUT",
        Path(__file__).parent / "output" / "population_benchmark.json",
    )
)

#: Acceptance floor: the fast path must beat per-die stepping by >= 5x on
#: the 4096-die population (measured speedups are far higher; shared CI
#: runners are noisy, hence the conservative floor).
MIN_SPEEDUP = 5.0

DICE = 4096
SEED = 1337
TDP_W = 65.0

#: Shard size of the 4096-die streaming equivalence run (8 shards).
SHARD_SIZE = 512

#: The memory gauge's population: large enough that monolithic trace
#: matrices dominate peak memory, small enough to stay a quick harness.
MEMORY_DICE = 65536
MEMORY_SHARD_SIZE = 4096

#: Streaming peak-memory budget for the 64k-die run, and the minimum
#: monolithic/streaming peak ratio proving the O(shard) guarantee.
MEMORY_BUDGET_MB = 150.0
MIN_MEMORY_RATIO = 3.0

#: The bounded-memory binning study: one million dice, never materialised.
MILLION_DICE = 1_000_000
MILLION_SHARD_SIZE = 8192
MILLION_BUDGET_MB = 64.0


def _scenario():
    return burst_scenario(
        idle_lead_s=4.0,
        burst_s=12.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.1,
    )


def _study(method: str, shard_size: Optional[int] = None) -> Study:
    kwargs: Dict[str, Any] = {}
    if shard_size is not None:
        kwargs["shard_size"] = shard_size
    return Study.over_population(
        ("darkgates",),
        (_scenario(),),
        skylake_process_variation(),
        count=DICE,
        tdp_levels_w=(TDP_W,),
        seed=SEED,
        method=method,
        name=f"population-bench-{method}",
        **kwargs,
    )


def _update_artifact(fields: Dict[str, Any]) -> None:
    """Merge *fields* into the benchmark artifact (tests share one file)."""
    payload: Dict[str, Any] = {}
    if OUTPUT_PATH.exists():
        payload = json.loads(OUTPUT_PATH.read_text())
    payload.update(fields)
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))


def _traced_peak_mb(fn) -> float:
    """Peak traced allocation of ``fn()`` in MB (tracemalloc sees numpy)."""
    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def test_population_fast_path_speedup(benchmark):
    # Warm shared caches (engine build, nominal candidate tables) so the
    # timed sections compare stepping strategies, not first-touch costs.
    fast_result = _study("fast").run()

    start = time.perf_counter()
    fast_result = _study("fast").run()
    fast_s = time.perf_counter() - start

    start = time.perf_counter()
    reference_result = _study("reference").run()
    reference_s = time.perf_counter() - start

    benchmark.pedantic(
        lambda: _study("fast").run(), rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = reference_s / fast_s

    identical = (
        fast_result.cells == reference_result.cells
        and fast_result.binning == reference_result.binning
    )
    cell = fast_result.cells[0]
    _update_artifact(
        {
            "dice": DICE,
            "seed": SEED,
            "tdp_w": TDP_W,
            "steps_per_die": len(cell.times_s),
            "reference_s": reference_s,
            "fast_s": fast_s,
            "speedup_fast_vs_reference": speedup,
            "quantiles_identical": identical,
            "bin_yields": fast_result.bin_yields("darkgates"),
        }
    )

    print()
    print(f"population: {DICE} dice x {len(cell.times_s)} steps")
    print(f"reference (per-die):   {reference_s:8.2f} s")
    print(f"fast (lockstep):       {fast_s:8.2f} s  ({speedup:.1f}x)")
    print(f"timing artifact:       {OUTPUT_PATH}")

    assert DICE >= 4096 and cell.count >= 4096
    assert identical, "fast-path population diverged from the per-die reference"
    assert speedup >= MIN_SPEEDUP


def test_population_streaming_matches_fast():
    """Streaming shards reproduce the in-memory path on the common population.

    Exact statistics (frequency percentiles on the candidate-table grid,
    limiting-factor histograms, bin yields) must be bit-identical; the
    histogram-backed quantiles (power, temperature, sustained frequency)
    must agree within their documented per-metric error bounds.
    """
    fast = _study("fast").run()
    streaming = _study("streaming", shard_size=SHARD_SIZE).run()

    fast_cell = fast.cells[0]
    cell = streaming.cells[0]
    assert cell.count == DICE and cell.n_shards == DICE // SHARD_SIZE

    # Exact: discrete frequencies live on the shared candidate-table grid.
    frequencies_identical = (
        cell.frequency_percentiles_hz == fast_cell.frequency_percentiles_hz
    )
    assert frequencies_identical
    assert cell.limiting_histogram == fast_cell.limiting_histogram
    nonzero = {k: v for k, v in cell.final_limiting_counts.items() if v}
    assert nonzero == dict(Counter(fast_cell.final_limiting))
    yields_identical = streaming.bin_yields("darkgates") == fast.bin_yields(
        "darkgates"
    )
    assert yields_identical

    # Bounded: continuous metrics stream through fixed-range histograms
    # whose worst-case quantile error is one bin width.
    bounds = cell.quantile_error_bounds
    errors: Dict[str, float] = {}
    for metric, exact, bound_key in (
        ("power", fast_cell.power_percentiles_w, "power_w"),
        ("temperature", fast_cell.temperature_percentiles_c, "temperature_c"),
    ):
        approx = getattr(cell, f"{metric}_percentiles_{bound_key.split('_')[-1]}")
        worst = max(
            float(np.max(np.abs(np.asarray(approx[key]) - np.asarray(exact[key]))))
            for key in exact
        )
        errors[bound_key] = worst
        assert worst <= bounds[bound_key], (metric, worst, bounds[bound_key])
    sustained_err = max(
        abs(a - b)
        for a, b in zip(
            cell.sustained_summary.quantiles(),
            np.percentile(fast_cell.sustained_frequency_hz, [5.0, 50.0, 95.0]),
        )
    )
    errors["sustained_frequency_hz"] = sustained_err
    assert sustained_err <= bounds["sustained_frequency_hz"]

    # The streaming payload survives its JSON round trip unchanged.
    from repro.variation.population import PopulationResult

    assert PopulationResult.from_json(streaming.to_json()) == streaming

    _update_artifact(
        {
            "streaming_shard_size": SHARD_SIZE,
            "streaming_frequencies_identical": frequencies_identical,
            "streaming_yields_identical": yields_identical,
            "streaming_quantile_errors": errors,
            "streaming_quantile_error_bounds": dict(bounds),
        }
    )


def test_population_streaming_memory_gauge():
    """64k-die tracemalloc gauge: streaming peak is O(shard), not O(dice).

    The artifact's ``peak_mb`` key is the headline memory gauge gated by
    ``perf_track.py`` (growth beyond the baseline fails CI); the monolithic
    reference is named ``monolithic_peak_mb`` so it never wins the headline
    scan.
    """
    spec = resolve_spec("darkgates").variant(tdp_w=TDP_W)
    engine = build_engine(spec)
    scenario = _scenario()
    sampler = DiePopulationSampler(skylake_process_variation())
    population = sampler.sample(MEMORY_DICE, seed=SEED)

    # Warm shared caches (candidate tables, engine state) with a sliver so
    # first-touch allocations do not pollute either gauge.
    engine.run_population(scenario, population.slice(0, 64))

    streaming_peak = _traced_peak_mb(
        lambda: engine.run_population(
            scenario, population, shard_size=MEMORY_SHARD_SIZE
        )
    )
    monolithic_peak = _traced_peak_mb(
        lambda: engine.run_population(scenario, population)
    )
    ratio = monolithic_peak / streaming_peak

    print()
    print(f"memory: {MEMORY_DICE} dice, shard {MEMORY_SHARD_SIZE}")
    print(f"streaming peak:   {streaming_peak:8.1f} MB")
    print(f"monolithic peak:  {monolithic_peak:8.1f} MB  ({ratio:.1f}x)")

    _update_artifact(
        {
            "memory_dice": MEMORY_DICE,
            "memory_shard_size": MEMORY_SHARD_SIZE,
            "peak_mb": streaming_peak,
            "monolithic_peak_mb": monolithic_peak,
            "memory_ratio_monolithic_vs_streaming": ratio,
        }
    )

    assert streaming_peak <= MEMORY_BUDGET_MB, (
        f"streaming peak {streaming_peak:.1f} MB exceeds the "
        f"{MEMORY_BUDGET_MB:.0f} MB bounded-memory budget"
    )
    assert ratio >= MIN_MEMORY_RATIO, (
        f"monolithic/streaming peak ratio {ratio:.1f}x is below "
        f"{MIN_MEMORY_RATIO:.0f}x — streaming is not O(shard)"
    )


def test_million_die_streaming_binning_bounded_memory():
    """A seeded million-die binning study completes without materialising it.

    Every shard draws its dice straight from the seeded sampler's block
    grid, so shard counts merge into the exact population counts, the first
    4096 dice bin identically to the in-memory 4096-die study, and peak
    memory stays a small multiple of one shard.
    """
    spec = resolve_spec("darkgates").variant(tdp_w=TDP_W)
    model = skylake_process_variation()
    binning = skylake_binning_policy()
    plan = ShardPlan(count=MILLION_DICE, shard_size=MILLION_SHARD_SIZE)

    # Warm the candidate-table caches outside the traced section.
    run_binning_shard(spec, model, MILLION_DICE, SEED, 0, MILLION_SHARD_SIZE, binning)

    result = {}

    def run() -> None:
        shards = [
            run_binning_shard(
                spec, model, MILLION_DICE, SEED, index, MILLION_SHARD_SIZE, binning
            )
            for index in range(plan.n_shards)
        ]
        result["binning"] = merge_binning_shards("darkgates", shards, MILLION_DICE)

    start = time.perf_counter()
    peak_mb = _traced_peak_mb(run)
    elapsed_s = time.perf_counter() - start
    binned = result["binning"]

    print()
    print(
        f"million-die binning: {plan.n_shards} shards x {MILLION_SHARD_SIZE} "
        f"dice in {elapsed_s:.1f} s, peak {peak_mb:.1f} MB"
    )

    assert binned.count == MILLION_DICE
    assert sum(binned.counts.values()) == MILLION_DICE
    assert math.isclose(sum(binned.yield_fractions.values()), 1.0)
    assert peak_mb <= MILLION_BUDGET_MB

    # Prefix determinism ties the million-die run to the common 4096-die
    # population: shard 0 of the million at shard_size 4096 must equal the
    # in-memory binning of sample(4096) on the same seed.
    prefix_counts = run_binning_shard(
        spec, model, MILLION_DICE, SEED, 0, 4096, binning
    )
    small = DiePopulationSampler(model).sample(4096, seed=SEED)
    assignments = binning.assign(die_metrics(build_engine(spec).pcode, small))
    for index, name in enumerate((*binning.bin_names, SCRAP_BIN)):
        selector = -1 if name == SCRAP_BIN else index
        assert prefix_counts[name] == int((assignments == selector).sum())

    _update_artifact(
        {
            "million_die_binning": {
                "dice": MILLION_DICE,
                "shard_size": MILLION_SHARD_SIZE,
                "n_shards": plan.n_shards,
                "elapsed_s": elapsed_s,
                "million_peak_mb": peak_mb,
                "bin_counts": binned.counts,
            }
        }
    )
