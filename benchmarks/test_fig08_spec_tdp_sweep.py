"""Fig. 8 — average SPEC CPU2006 gains across TDP levels (35/45/65/91 W).

Paper shape: both base (single-core) and rate (all-core) modes improve by
roughly 4-5.5 % at every TDP level.  (The paper's base gains fall slightly
and its rate gains rise slightly with TDP; our analytical model reproduces
the magnitudes and the everywhere-positive shape, see EXPERIMENTS.md for the
trend discussion.)
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig8_spec_tdp_sweep


def test_fig08_spec_tdp_sweep(benchmark):
    result = benchmark.pedantic(
        run_fig8_spec_tdp_sweep, rounds=1, iterations=1, warmup_rounds=0
    )

    print()
    print(result.as_text())

    assert result.tdp_levels_w == (35.0, 45.0, 65.0, 91.0)

    # DarkGates helps in both modes at every TDP level.
    for base, rate in zip(result.base_improvements, result.rate_improvements):
        assert base > 0.0
        assert rate > 0.0

    # Magnitudes stay in the few-percent band the paper reports (4.2-5.3 %),
    # allowing a generous modelling tolerance.
    for value in result.base_improvements + result.rate_improvements:
        assert 0.01 <= value <= 0.10

    # The overall average lands near the paper's ~4.7 % across the whole sweep.
    overall = sum(result.base_improvements + result.rate_improvements) / 8.0
    assert 0.03 <= overall <= 0.07

    # At 91 W the base-mode average matches the paper's 4.6 % within ~2 points.
    base_91 = result.base_improvements[-1]
    assert abs(base_91 - 0.046) <= 0.02
