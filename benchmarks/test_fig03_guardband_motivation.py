"""Fig. 3 — motivation: -100 mV guardband on a Broadwell-class system.

Paper shape: average SPEC CPU2006 performance rises by roughly 6-10 % across
all four groups (fp/int x base/rate) and TDP levels, and the rate-mode gain
is largest on the highest-TDP (95 W) configuration.
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig3_guardband_motivation


def test_fig03_guardband_motivation(benchmark):
    result = benchmark.pedantic(
        run_fig3_guardband_motivation, rounds=1, iterations=1, warmup_rounds=0
    )

    print()
    print(result.as_text())

    # Every group improves at every TDP when 100 mV of guardband is removed.
    for group, improvements in result.improvements.items():
        for value in improvements:
            assert 0.02 <= value <= 0.14, (group, value)

    # The paper's fifth observation: the rate-mode gain at the highest TDP is
    # at least as large as at the lowest TDP (Vmax-limited systems convert the
    # whole reduction into frequency).
    for group in ("SPECfp_rate", "SPECint_rate"):
        series = result.improvements[group]
        assert series[-1] >= series[0] - 1e-9

    # fp and int behave similarly (both are dominated by scalability).
    fp = result.improvements["SPECfp_base"]
    integer = result.improvements["SPECint_base"]
    for fp_value, int_value in zip(fp, integer):
        assert abs(fp_value - int_value) < 0.05
