"""Performance tracking: merge benchmark artifacts and guard the trajectory.

Every benchmark harness writes a JSON timing artifact to
``benchmarks/output/`` (``droop_benchmark.json``,
``dynamics_benchmark.json``).  This script merges them into one
``bench_summary.json`` — stamped with the commit SHA and a UTC timestamp so
CI can archive the perf trajectory across PRs — and compares each
benchmark's headline speedup against the numbers committed in
``benchmarks/baseline.json``, failing when a fast path regresses by more
than the allowed factor (2x by default).

Benchmarks can also gauge **peak memory**: an artifact key starting with
``peak_mb`` (the streaming population's tracemalloc gauge) is gated the
other way around — the run fails when current peak memory *grows* more
than the allowed factor above the baseline, guarding the O(shard) bounded
-memory guarantee the same way the speedup gate guards the fast paths.

Usage::

    # after running the benchmark harnesses:
    python benchmarks/perf_track.py                   # merge + regression check
    python benchmarks/perf_track.py --update-baseline # accept current numbers

Updating the baseline is an explicit, reviewed act (like regenerating the
golden test snapshots): run the harnesses on a quiet machine, pass
``--update-baseline``, and commit the ``benchmarks/baseline.json`` diff.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

BENCH_DIR = Path(__file__).parent
DEFAULT_OUTPUT_DIR = BENCH_DIR / "output"
DEFAULT_BASELINE = BENCH_DIR / "baseline.json"
DEFAULT_SUMMARY = DEFAULT_OUTPUT_DIR / "bench_summary.json"

#: A benchmark fails the gate when its speedup drops below
#: ``baseline / MAX_REGRESSION_FACTOR``.
MAX_REGRESSION_FACTOR = 2.0


def benchmark_name(path: Path) -> str:
    """Artifact file name -> benchmark key (``droop_benchmark`` -> ``droop``)."""
    stem = path.stem
    suffix = "_benchmark"
    return stem[: -len(suffix)] if stem.endswith(suffix) else stem


def headline_speedup(payload: Dict) -> Optional[float]:
    """The artifact's headline speedup: its first ``speedup*`` key."""
    for key in sorted(payload):
        if key.startswith("speedup"):
            return float(payload[key])
    return None


def headline_memory(payload: Dict) -> Optional[float]:
    """The artifact's memory gauge: its first ``peak_mb*`` key, in MB."""
    for key in sorted(payload):
        if key.startswith("peak_mb"):
            return float(payload[key])
    return None


def load_artifacts(output_dir: Path) -> Dict[str, Dict]:
    """Benchmark key -> artifact payload for every timing JSON in *output_dir*."""
    artifacts: Dict[str, Dict] = {}
    for path in sorted(output_dir.glob("*.json")):
        if path.name == DEFAULT_SUMMARY.name:
            continue
        artifacts[benchmark_name(path)] = json.loads(path.read_text())
    return artifacts


def commit_sha() -> str:
    """The commit under test: ``GITHUB_SHA`` in CI, ``git rev-parse`` locally."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=BENCH_DIR,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_summary(
    artifacts: Dict[str, Dict], commit: str, generated_at: str
) -> Dict:
    """One merged, commit-stamped payload for the whole benchmark suite."""
    return {
        "commit": commit,
        "generated_at": generated_at,
        "benchmarks": {
            name: {
                "speedup": headline_speedup(payload),
                "peak_mb": headline_memory(payload),
                "artifact": payload,
            }
            for name, payload in artifacts.items()
        },
    }


def check_regressions(
    summary: Dict,
    baseline: Dict[str, Dict],
    max_regression_factor: float = MAX_REGRESSION_FACTOR,
) -> List[str]:
    """Failure messages for every benchmark breaking its baseline gate."""
    failures: List[str] = []
    benchmarks = summary["benchmarks"]
    # Every artifact must be gated: a harness whose benchmark has no
    # baseline entry would otherwise pass green forever, regressions
    # included (mirror of the missing-artifact check below).
    for name in sorted(set(benchmarks) - set(baseline)):
        failures.append(
            f"{name}: artifact has no baseline entry, so it is not gated; "
            f"add it with --update-baseline"
        )
    for name, expected in sorted(baseline.items()):
        entry = benchmarks.get(name)
        if entry is None:
            failures.append(
                f"{name}: baseline expects this benchmark but no artifact was "
                f"produced (did its harness run?)"
            )
            continue
        speedup = entry["speedup"]
        floor = expected["speedup"] / max_regression_factor
        if speedup is None:
            failures.append(f"{name}: artifact carries no speedup metric")
        elif speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.1f}x regressed more than "
                f"{max_regression_factor:.0f}x below the baseline "
                f"{expected['speedup']:.1f}x (floor {floor:.1f}x)"
            )
        # Memory gauges gate in the opposite direction: growth is the
        # regression.  Only benchmarks whose baseline records a gauge are
        # gated, so timing-only harnesses stay unaffected.
        expected_peak = expected.get("peak_mb")
        if expected_peak is None:
            continue
        peak = entry.get("peak_mb")
        ceiling = expected_peak * max_regression_factor
        if peak is None:
            failures.append(
                f"{name}: baseline records a peak_mb memory gauge but the "
                f"artifact carries none (did the memory harness run?)"
            )
        elif peak > ceiling:
            failures.append(
                f"{name}: peak memory {peak:.1f} MB grew more than "
                f"{max_regression_factor:.0f}x above the baseline "
                f"{expected_peak:.1f} MB (ceiling {ceiling:.1f} MB)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=DEFAULT_OUTPUT_DIR,
        help="directory holding the per-benchmark timing artifacts",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_SUMMARY,
        help="where to write the merged bench_summary.json",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline speedups to gate against",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current artifacts instead of gating",
    )
    args = parser.parse_args(argv)

    artifacts = load_artifacts(args.output_dir)
    if not artifacts:
        print(f"no benchmark artifacts under {args.output_dir}", file=sys.stderr)
        return 2
    summary = build_summary(
        artifacts,
        commit=commit_sha(),
        generated_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(summary, indent=2) + "\n")
    for name, entry in sorted(summary["benchmarks"].items()):
        speedup = entry["speedup"]
        rendered = f"{speedup:.1f}x" if speedup is not None else "-"
        peak = entry.get("peak_mb")
        if peak is not None:
            rendered += f"  peak {peak:.1f} MB"
        print(f"{name:>12}: {rendered}")
    print(f"summary: {args.output}")

    if args.update_baseline:
        baseline = {}
        for name, entry in sorted(summary["benchmarks"].items()):
            if entry["speedup"] is None:
                continue
            record = {"speedup": entry["speedup"]}
            if entry.get("peak_mb") is not None:
                record["peak_mb"] = entry["peak_mb"]
            baseline[name] = record
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; create one with --update-baseline",
            file=sys.stderr,
        )
        return 2
    failures = check_regressions(summary, json.loads(args.baseline.read_text()))
    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    if not failures:
        print("no perf regressions vs baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
