"""Fleet-ensemble performance — batched lockstep execution versus per-scenario runs.

``FleetStudy`` compiles an ensemble of seeded fleet scenarios per profile
and rides the batched dynamics engine, so a 64-member ensemble costs one
lockstep sweep instead of 64 per-step Python loops.  This benchmark
compiles an ensemble-of-64 from a fleet profile, runs it through
``BatchedDynamicsSimulator.run_batch`` and through the per-scenario
``DynamicsSimulator`` reference, asserts bin-exact equivalence plus
identical QoS reports, and records the timings to
``benchmarks/output/fleet_benchmark.json`` so CI can track the perf
trajectory across PRs (see ``benchmarks/perf_track.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.spec import build_engine, get_spec
from repro.fleet import QosReport, ScenarioGenerator, fleet_profile
from repro.sim.dynamics import BatchedDynamicsSimulator

#: Where the timing artifact lands (overridable for local experiments).
OUTPUT_PATH = Path(
    os.environ.get(
        "FLEET_BENCH_OUT",
        Path(__file__).parent / "output" / "fleet_benchmark.json",
    )
)

#: CI-safe floor; the measured speedup on the 64-member ensemble is
#: typically well above the 5x acceptance bar, but shared runners are noisy.
MIN_SPEEDUP = 5.0

ENSEMBLE = 64
SEED = 11
SPEC_NAME = "darkgates"
PROFILE_NAME = "datacenter"


def _build_ensemble():
    profile = fleet_profile(PROFILE_NAME, time_step_s=0.05)
    scenarios = ScenarioGenerator(profile).ensemble(seed=SEED, count=ENSEMBLE)
    pcode = build_engine(get_spec(SPEC_NAME)).pcode
    return [(pcode, scenario) for scenario in scenarios]


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_fleet_ensemble_speedup(benchmark):
    pairs = _build_ensemble()
    simulator = BatchedDynamicsSimulator()

    # Warm shared caches (candidate tables, sustained points), then measure
    # steady-state stepping cost symmetrically: best of the same number of
    # rounds on each side.
    batched = simulator.run_batch(pairs)

    reference_s = min(
        _time(lambda: [simulator.simulator(pcode).run(s) for pcode, s in pairs])
        for _ in range(2)
    )
    batched_s = min(_time(lambda: simulator.run_batch(pairs)) for _ in range(2))
    benchmark.pedantic(
        lambda: simulator.run_batch(pairs), rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = reference_s / batched_s

    reference = [simulator.simulator(pcode).run(s) for pcode, s in pairs]
    bin_exact = all(
        r.frequencies_hz == b.frequencies_hz
        and r.limiting_factors == b.limiting_factors
        and r.package_cstates == b.package_cstates
        for r, b in zip(reference, batched)
    )
    qos_exact = all(
        QosReport.from_result(r) == QosReport.from_result(b)
        for r, b in zip(reference, batched)
    )
    max_dtemp_c = max(
        float(np.abs(np.array(r.temperatures_c) - np.array(b.temperatures_c)).max())
        for r, b in zip(reference, batched)
    )

    total_steps = sum(len(r.times_s) for r in reference)
    payload = {
        "ensemble": {
            "spec": SPEC_NAME,
            "profile": PROFILE_NAME,
            "members": ENSEMBLE,
            "seed": SEED,
        },
        "runs": len(pairs),
        "total_steps": total_steps,
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup_batched_vs_reference": speedup,
        "bin_exact": bin_exact,
        "qos_exact": qos_exact,
        "max_abs_dtemperature_c": max_dtemp_c,
    }
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2))

    print()
    print(f"ensemble: {len(pairs)} members, {total_steps} steps total")
    print(f"reference (per-scenario):  {reference_s * 1e3:8.1f} ms")
    print(f"batched (lockstep):        {batched_s * 1e3:8.1f} ms  ({speedup:.1f}x)")
    print(f"max |dT| vs reference:     {max_dtemp_c:.2e} C")
    print(f"timing artifact:           {OUTPUT_PATH}")

    assert len(pairs) == ENSEMBLE
    assert bin_exact, "batched path diverged from the reference frequency bins"
    assert qos_exact, "batched path produced different QoS reports"
    assert max_dtemp_c <= 1e-9
    assert speedup >= MIN_SPEEDUP
