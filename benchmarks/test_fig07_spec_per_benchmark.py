"""Fig. 7 — per-benchmark SPEC CPU2006 gains at 91 W.

Paper shape: up to ~8 % improvement (4.6 % on average); gains correlate with
each benchmark's frequency scalability — 416.gamess / 444.namd at the top,
410.bwaves / 433.milc near zero.
"""

from __future__ import annotations

import math

from repro.analysis.experiments import run_fig7_spec_per_benchmark


def _pearson(xs, ys):
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    return cov / math.sqrt(var_x * var_y)


def test_fig07_spec_per_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig7_spec_per_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )

    print()
    print(result.as_text())

    improvements = result.per_benchmark_improvement

    # Average in the band around the paper's 4.6 %; maximum near the paper's 8.1 %.
    assert 0.025 <= result.average_improvement <= 0.08
    assert 0.05 <= result.max_improvement <= 0.13

    # No benchmark regresses.
    assert min(improvements.values()) >= 0.0

    # Highly scalable benchmarks top the chart, memory-bound ones trail it.
    top = {result.best_benchmark()}
    assert top & {"416.gamess", "444.namd", "453.povray"}
    assert result.worst_benchmark() in {"410.bwaves", "433.milc", "462.libquantum", "429.mcf"}
    assert improvements["416.gamess"] > 4 * improvements["410.bwaves"]

    # Gains correlate strongly with frequency scalability (paper observation 2).
    names = list(improvements)
    correlation = _pearson(
        [result.scalability_by_benchmark[n] for n in names],
        [improvements[n] for n in names],
    )
    assert correlation > 0.9
