"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper's evaluation,
prints the same rows/series the paper reports, and asserts the qualitative
shape (who wins, by roughly what factor, where crossovers fall).  Absolute
values are recorded in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""
