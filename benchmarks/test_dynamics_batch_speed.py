"""Dynamics-sweep performance — batched lockstep engine versus the per-run loop.

The closed-loop dynamics engine originally resolved one scenario at a time
through a per-step Python loop, so ``Study.over_dynamics`` sweeps paid
interpreter overhead on every step of every grid cell.  The batched fast
path steps the whole grid in lockstep as numpy arrays.  This benchmark runs
a realistic sweep grid — specs x scenarios x TDP levels, every run a full
turbo/thermal/DVFS/C-state trajectory — through both engines, asserts
bin-exact trace equivalence, and records the timings to
``benchmarks/output/dynamics_benchmark.json`` so CI can track the perf
trajectory across PRs (see ``benchmarks/perf_track.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.spec import build_engine, get_spec
from repro.sim.dynamics import BatchedDynamicsSimulator
from repro.workloads.dynamics import (
    burst_scenario,
    sprint_and_rest_scenario,
    sustained_scenario,
)

#: Where the timing artifact lands (overridable for local experiments).
OUTPUT_PATH = Path(
    os.environ.get(
        "DYNAMICS_BENCH_OUT",
        Path(__file__).parent / "output" / "dynamics_benchmark.json",
    )
)

#: CI-safe floor; the measured speedup on the 192-run grid is typically
#: 12-15x (>= the 10x acceptance bar) but shared runners are noisy.
MIN_SPEEDUP = 5.0

#: The sweep grid: 2 specs x 6 scenarios x 16 TDP levels = 192 runs,
#: ~1800 steps each (>= the 32-run acceptance grid).
SPEC_NAMES = ("darkgates", "baseline")
TDP_LEVELS_W = tuple(float(t) for t in np.linspace(35.0, 91.0, 16))
SCENARIOS = (
    burst_scenario(
        idle_lead_s=10.0,
        burst_s=80.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.05,
    ),
    sprint_and_rest_scenario(sprint_s=20.0, rest_s=10.0, cycles=3, time_step_s=0.05),
    sustained_scenario(duration_s=90.0, time_step_s=0.05),
    burst_scenario(idle_lead_s=5.0, burst_s=85.0, active_cores=2, time_step_s=0.05),
    sprint_and_rest_scenario(
        sprint_s=10.0, rest_s=5.0, cycles=6, active_cores=1, time_step_s=0.05
    ),
    sustained_scenario(
        duration_s=90.0, active_cores=3, activity=0.8, time_step_s=0.05
    ),
)


def _build_grid():
    pairs = []
    for name in SPEC_NAMES:
        for tdp_w in TDP_LEVELS_W:
            pcode = build_engine(get_spec(name).variant(tdp_w=tdp_w)).pcode
            for scenario in SCENARIOS:
                pairs.append((pcode, scenario))
    return pairs


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_dynamics_batch_speedup(benchmark):
    pairs = _build_grid()
    simulator = BatchedDynamicsSimulator()

    # Warm every cache both paths share (candidate tables, sustained
    # points, engine builds), then measure steady-state stepping cost
    # symmetrically: best of the same number of rounds on each side.
    batched = simulator.run_batch(pairs)

    reference_s = min(
        _time(lambda: [simulator.simulator(pcode).run(s) for pcode, s in pairs])
        for _ in range(2)
    )
    batched_s = min(_time(lambda: simulator.run_batch(pairs)) for _ in range(2))
    benchmark.pedantic(
        lambda: simulator.run_batch(pairs), rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = reference_s / batched_s

    reference = [simulator.simulator(pcode).run(s) for pcode, s in pairs]
    bin_exact = all(
        r.frequencies_hz == b.frequencies_hz
        and r.limiting_factors == b.limiting_factors
        and r.package_cstates == b.package_cstates
        for r, b in zip(reference, batched)
    )
    max_dtemp_c = max(
        float(np.abs(np.array(r.temperatures_c) - np.array(b.temperatures_c)).max())
        for r, b in zip(reference, batched)
    )
    max_dpower_w = max(
        float(
            np.abs(
                np.array(r.package_powers_w) - np.array(b.package_powers_w)
            ).max()
        )
        for r, b in zip(reference, batched)
    )

    total_steps = sum(len(r.times_s) for r in reference)
    payload = {
        "grid": {
            "specs": list(SPEC_NAMES),
            "tdp_levels_w": list(TDP_LEVELS_W),
            "scenarios": [scenario.name for scenario in SCENARIOS],
        },
        "runs": len(pairs),
        "total_steps": total_steps,
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup_batched_vs_reference": speedup,
        "bin_exact": bin_exact,
        "max_abs_dtemperature_c": max_dtemp_c,
        "max_abs_dpower_w": max_dpower_w,
    }
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2))

    print()
    print(f"grid: {len(pairs)} runs, {total_steps} steps total")
    print(f"reference (per-run loop): {reference_s * 1e3:8.1f} ms")
    print(f"batched (lockstep):       {batched_s * 1e3:8.1f} ms  ({speedup:.1f}x)")
    print(f"max |dT| vs reference:    {max_dtemp_c:.2e} C")
    print(f"max |dP| vs reference:    {max_dpower_w:.2e} W")
    print(f"timing artifact:          {OUTPUT_PATH}")

    assert len(pairs) >= 32
    assert bin_exact, "batched path diverged from the reference frequency bins"
    assert max_dtemp_c <= 1e-9
    assert max_dpower_w <= 1e-9
    assert speedup >= MIN_SPEEDUP
