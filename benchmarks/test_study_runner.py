"""Study runner — the Fig. 8 sweep expressed as one declarative grid.

Benchmarks the unified sweep path: DarkGates and baseline specs x the four
evaluated TDP levels x SPEC CPU2006 base, executed through a Study, and
asserts the caching contract (a repeat run executes zero engine runs) plus
agreement with the ported Fig. 8 experiment.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig8_spec_tdp_sweep
from repro.analysis.study import Study
from repro.core.spec import get_spec
from repro.soc.skus import SKYLAKE_TDP_LEVELS_W
from repro.workloads.spec import spec_cpu2006_base_suite


def _run_sweep():
    suite = spec_cpu2006_base_suite()
    study = Study.over_tdp_levels(
        ("darkgates", "baseline"), SKYLAKE_TDP_LEVELS_W, suite, name="study-sweep"
    )
    result = study.run()
    return study, result, suite


def test_study_runner_tdp_sweep(benchmark):
    study, result, suite = benchmark.pedantic(
        _run_sweep, rounds=1, iterations=1, warmup_rounds=0
    )

    print()
    print(result.as_table(title="Study: SPEC base sweep (first rows)").splitlines()[0])

    # 2 specs x 4 TDP levels x full base suite, each executed exactly once.
    assert len(result.cells) == 2 * len(SKYLAKE_TDP_LEVELS_W) * len(suite)
    assert study.tasks_executed == len(result.cells)

    # Caching: a repeat invocation does zero engine re-runs.
    study.run()
    assert study.tasks_executed == len(result.cells)

    # The grid reduces to the same averages the Fig. 8 experiment reports.
    fig8 = run_fig8_spec_tdp_sweep()
    for index, tdp in enumerate(SKYLAKE_TDP_LEVELS_W):
        dark = get_spec("darkgates", tdp_w=tdp)
        base = get_spec("baseline", tdp_w=tdp)
        gains = [
            result.get(dark, w).improvement_over(result.get(base, w)) for w in suite
        ]
        average = sum(gains) / len(gains)
        assert average == pytest.approx(fig8.base_improvements[index])
        assert average > 0.0
