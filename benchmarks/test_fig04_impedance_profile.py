"""Fig. 4 — impedance-frequency profile with and without power-gates.

Paper shape: the gated PDN shows roughly twice the impedance of the bypassed
PDN across the 100 kHz - 200 MHz sweep, with anti-resonance peaks in the
MHz-to-tens-of-MHz range.
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig4_impedance_profiles


def test_fig04_impedance_profile(benchmark):
    result = benchmark.pedantic(
        run_fig4_impedance_profiles, rounds=1, iterations=1, warmup_rounds=0
    )

    print()
    print(result.as_text())
    print(f"geometric-mean impedance ratio (gated / bypassed): {result.mean_impedance_ratio:.2f}x")

    # Headline claim: approximately 2x impedance with power-gates.
    assert 1.5 <= result.mean_impedance_ratio <= 3.0

    # The worst-case peak is higher with the gates in the path.
    assert result.gated.peak_magnitude_ohm() > result.bypassed.peak_magnitude_ohm()

    # Both profiles show their peaks between 1 MHz and 100 MHz, as in Fig. 4.
    assert 1e6 <= result.gated.peak().frequency_hz <= 1.01e8
    assert 1e6 <= result.bypassed.peak().frequency_hz <= 1.01e8

    # Impedances stay in the milliohm range across the sweep.
    assert result.gated.peak_magnitude_ohm() < 0.05
    assert result.bypassed.magnitudes_ohm().min() > 1e-5

    # The gated curve is at (or above) the bypassed curve over most of the sweep.
    ratios = result.gated.ratio_to(result.bypassed)
    assert (ratios >= 1.0).mean() > 0.7
