"""Droop-solver performance — vectorized engine versus the seed per-stage RK4.

The transient rework replaced the per-step pure-Python RK4 (re-entering
Python loops four times per 0.5 ns step) with a precomputed state-space
propagator evaluated by a vectorized prefix scan.  This benchmark runs the
acceptance workload — a 4 us / 0.5 ns power-gated core-wake trace on the
gated Skylake ladder — through both engines, checks waveform equivalence,
and records the timings to ``benchmarks/output/droop_benchmark.json`` so CI
can archive the perf trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.pdn.droop import DroopSimulator
from repro.pdn.ladder import PdnConfiguration, SkylakePdnBuilder
from repro.pdn.transients import core_wake_trace

#: Where the timing artifact lands (overridable for local experiments).
OUTPUT_PATH = Path(
    os.environ.get(
        "DROOP_BENCH_OUT",
        Path(__file__).parent / "output" / "droop_benchmark.json",
    )
)

#: CI-safe floor; the measured speedup is typically 20-40x (>= the 10x
#: acceptance bar) but shared runners are noisy.
MIN_SPEEDUP = 5.0


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_droop_solver_speedup(benchmark):
    simulator = DroopSimulator(
        SkylakePdnBuilder(PdnConfiguration()).build_ladder(), nominal_voltage_v=1.0
    )
    trace = core_wake_trace(duration_s=4e-6)
    time_step_s = 0.5e-9

    def run(method: str):
        return simulator.simulate_profile(
            trace, trace.duration_s, time_step_s=time_step_s, method=method
        )

    reference_s = _time(lambda: run("reference"))
    # Warm the discretization caches, then measure steady-state cost.
    run("scan")
    scan_s = _time(lambda: run("scan"))
    matvec_s = _time(lambda: run("matvec"))
    exact_s = _time(lambda: run("exact"))

    vectorized = benchmark.pedantic(
        lambda: run("scan"), rounds=3, iterations=1, warmup_rounds=0
    )
    reference = run("reference")
    max_delta_v = float(
        np.abs(vectorized.load_voltage_v - reference.load_voltage_v).max()
    )
    speedup = reference_s / scan_s

    payload = {
        "trace": trace.name,
        "duration_s": trace.duration_s,
        "time_step_s": time_step_s,
        "steps": len(reference.time_s) - 1,
        "reference_s": reference_s,
        "scan_s": scan_s,
        "matvec_s": matvec_s,
        "exact_s": exact_s,
        "speedup_scan_vs_reference": speedup,
        "max_abs_delta_v": max_delta_v,
        "worst_droop_v": vectorized.worst_droop_v,
    }
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2))

    print()
    print(f"reference (seed RK4): {reference_s * 1e3:8.1f} ms")
    print(f"scan (vectorized):    {scan_s * 1e3:8.1f} ms  ({speedup:.1f}x)")
    print(f"matvec:               {matvec_s * 1e3:8.1f} ms")
    print(f"exact:                {exact_s * 1e3:8.1f} ms")
    print(f"max |dV| vs seed:     {max_delta_v:.2e} V")
    print(f"timing artifact:      {OUTPUT_PATH}")

    assert max_delta_v <= 1e-4
    assert speedup >= MIN_SPEEDUP
