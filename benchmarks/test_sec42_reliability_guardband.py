"""Section 4.2 — reliability guardband and electromigration effects.

Paper numbers: bypassing requires less than 5 mV / 20 mV of extra
reliability guardband at 91 W / 35 W (for ~5 degC of extra temperature),
while the merged voltage domain improves the electromigration picture.
"""

from __future__ import annotations

from repro.analysis.experiments import run_sec42_reliability_guardband
from repro.reliability.electromigration import BumpCurrentModel


def test_sec42_reliability_guardband(benchmark):
    result = benchmark(run_sec42_reliability_guardband)

    print()
    print(
        "reliability guardband: "
        f"91 W -> {result.high_tdp_guardband_v * 1e3:.1f} mV, "
        f"35 W -> {result.low_tdp_guardband_v * 1e3:.1f} mV"
    )

    # Paper: < 5 mV at 91 W (we allow a small modelling slack) and < 20 mV at 35 W.
    assert 0.0 < result.high_tdp_guardband_v <= 0.008
    assert 0.0 < result.low_tdp_guardband_v <= 0.020
    assert result.low_tdp_guardband_v > result.high_tdp_guardband_v

    # Electromigration: merging the domains lowers the worst-case bump current.
    em = BumpCurrentModel()
    gated_margin = em.em_margin_gated(30.0)
    bypassed_margin = em.em_margin_bypassed(30.0)
    print(f"EM margin: gated {gated_margin:.1f}x, bypassed {bypassed_margin:.1f}x")
    assert bypassed_margin > gated_margin
