"""Closed-loop dynamics — the TDP-limited turbo/throttle story over time.

Paper shape (Sections 2.1 and 2.4.1, and the TDP-limited results): a system
configured to a low TDP bursts above its sustained power behind PL2 while
the EWMA of package power has headroom, then throttles back to the
TDP-limited sustained frequency; a high-TDP desktop running the same
workload never exhausts its power budget and stays pinned at the
Vmax-limited frequency.  The closed-loop trajectory must also converge to
exactly the operating point the static DVFS resolver reports.
"""

from __future__ import annotations

from repro.analysis.study import Study
from repro.core.spec import build_engine, get_spec
from repro.pmu.dvfs import CpuDemand, LimitingFactor
from repro.workloads.dynamics import burst_scenario

TDP_LEVELS_W = (35.0, 45.0, 65.0, 91.0)

SCENARIO = burst_scenario(
    idle_lead_s=20.0,
    burst_s=100.0,
    thermal_capacitance_j_per_c=5.0,
    time_step_s=0.1,
)


def _run_sweep():
    study = Study.over_dynamics(
        ("baseline",), (SCENARIO,), tdp_levels_w=TDP_LEVELS_W, name="dynamics"
    )
    return study.run()


def test_dynamics_tdp_story(benchmark):
    grid = benchmark.pedantic(_run_sweep, rounds=1, iterations=1, warmup_rounds=0)
    baseline = get_spec("baseline")
    runs = {
        tdp: grid.get(baseline.variant(tdp_w=tdp), SCENARIO.name, suite="dynamics")
        for tdp in TDP_LEVELS_W
    }

    print()
    for tdp, run in runs.items():
        print(
            f"  {tdp:>4.0f} W: burst {run.peak_frequency_hz / 1e9:.1f} GHz -> "
            f"sustained {run.sustained_frequency_hz / 1e9:.1f} GHz "
            f"({run.final_limiting_factor}), peak Tj {run.peak_temperature_c:.1f} C"
        )

    # 35 W: PL2 burst decays to the TDP-limited sustained frequency.
    low = runs[35.0]
    assert low.throttled
    assert low.final_limiting_factor == LimitingFactor.TDP.value
    assert low.peak_frequency_hz >= low.sustained_frequency_hz + 3e8

    # 91 W: the same timeline stays Vmax-limited, no throttling.
    high = runs[91.0]
    assert not high.throttled
    assert high.final_limiting_factor == LimitingFactor.VMAX.value

    # Sustained frequency is monotone in TDP, and every trajectory converges
    # to the static resolver's operating point.
    sustained = [runs[tdp].sustained_frequency_hz for tdp in TDP_LEVELS_W]
    assert sustained == sorted(sustained)
    for tdp in TDP_LEVELS_W:
        static = build_engine(
            get_spec("baseline", tdp_w=tdp)
        ).pcode.resolve_cpu_operating_point(CpuDemand(active_cores=4))
        assert abs(runs[tdp].sustained_frequency_hz - static.frequency_hz) < 1e-3

    # The thermal loop never lets the junction cross Tjmax.
    for run in runs.values():
        assert run.peak_temperature_c <= 100.0 + 1e-6
