"""Table 1 — package C-states of the Skylake client architecture.

Regenerates the state list, entry conditions, and the per-state package
power of the baseline and DarkGates configurations (the quantity Fig. 10 is
built from).
"""

from __future__ import annotations

from repro.analysis.experiments import run_table1_package_cstates
from repro.analysis.reporting import format_table
from repro.core.spec import get_spec
from repro.pmu.cstates import PackageCState


def test_table1_package_cstates(benchmark):
    rows = benchmark(run_table1_package_cstates)

    darkgates = get_spec("darkgates", tdp_w=91.0).build()
    baseline = get_spec("baseline", tdp_w=91.0).build()
    power_rows = []
    for state in darkgates.cstate_model.idle_states():
        if state.depth > 8:
            continue
        power_rows.append(
            (
                state.value,
                f"{baseline.cstate_model.power_w(state):.2f} W",
                f"{darkgates.cstate_model.power_w(state):.2f} W",
            )
        )

    print()
    print(format_table(["state", "entry conditions"], rows, title="Table 1"))
    print()
    print(
        format_table(
            ["state", "baseline (gated)", "DarkGates (bypassed)"],
            power_rows,
            title="Package idle power by C-state",
        )
    )

    # The table covers C0 through C10 as in the paper.
    names = [name for name, _ in rows]
    assert names == ["C0", "C2", "C3", "C6", "C7", "C8", "C9", "C10"]

    # Entry-condition text captures the two structural facts DarkGates uses:
    # the core VR is on in C7 and off in C8.
    table = dict(rows)
    assert "ON" in table["C7"]
    assert "OFF" in table["C8"]

    # Idle power decreases monotonically with depth over the states each
    # configuration actually supports (the gated desktop baseline stops at
    # package C7; the VR-off wake-assist machinery of C8 only exists on
    # platforms validated for it).
    darkgates_values = [float(row[2].split()[0]) for row in power_rows]
    assert all(a >= b - 1e-9 for a, b in zip(darkgates_values, darkgates_values[1:]))
    baseline_values = [float(row[1].split()[0]) for row in power_rows if row[0] != "C8"]
    assert all(a >= b - 1e-9 for a, b in zip(baseline_values, baseline_values[1:]))
