"""Pcode: the firmware facade.

``Pcode`` ties the individual firmware pieces together the way the paper
describes the DarkGates firmware extensions (Section 4.2):

* it reads the fuse set to learn whether the part runs in bypass or normal
  mode and how deep its package C-states may go;
* it builds the guardbanded V/F curve for the part's power-delivery
  configuration (bypassed parts get the improved curve);
* it exposes DVFS resolution for CPU workloads, power-budget management for
  graphics workloads, and package-idle power for energy workloads.

One ``Pcode`` instance therefore fully describes "a system" in the
evaluation's sense: baseline mobile part, DarkGates desktop part, or the
ablation configurations (DarkGates limited to C7, non-DarkGates with C7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.variation.sampler import DieVariation
from repro.pdn.guardband import GuardbandModel
from repro.pdn.loadline import VirusLevelTable, default_virus_table
from repro.pmu.cstates import PackageCState, PackageCStateModel
from repro.pmu.dvfs import CpuDemand, DvfsPolicy, OperatingPoint
from repro.pmu.fuses import FuseSet
from repro.pmu.pbm import GraphicsDemand, GraphicsOperatingPoint, PowerBudgetManager
from repro.pmu.turbo import TurboTable
from repro.pmu.vf_curve import VfCurve
from repro.soc.processor import Processor


class Pcode:
    """Power-management firmware bound to one processor configuration.

    Parameters
    ----------
    processor:
        The hardware (die + package + TDP).
    fuses:
        Fused configuration (mode, deepest package C-state).  The fuse mode
        must be consistent with the package: bypass mode requires a package
        that actually shorts the domains.
    virus_table:
        Power-virus levels used for guardbanding; defaults to one level per
        active-core count.
    reliability_margin_v:
        Extra reliability guardband applied on top of the PDN guardband
        (Section 4.2; supplied by :mod:`repro.reliability` for bypass mode).
    guardband_model:
        Override of the guardband model.  Used by experiments that
        manipulate the guardband directly (for example the flat -100 mV
        reduction of the paper's Fig. 3); by default the model is derived
        from the package's PDN configuration.
    die_variation:
        Optional :class:`~repro.variation.sampler.DieVariation` describing
        the specific (non-nominal) die this firmware drives.  The DVFS
        policy and the package C-state model re-reference their models to
        the die; the thermal-resistance knob rides on the processor itself.
    """

    def __init__(
        self,
        processor: Processor,
        fuses: FuseSet,
        virus_table: Optional[VirusLevelTable] = None,
        reliability_margin_v: float = 0.0,
        guardband_model=None,
        die_variation: Optional["DieVariation"] = None,
    ) -> None:
        if fuses.bypass_enabled and not processor.package.bypass_power_gates:
            raise ConfigurationError(
                "bypass mode fused but the package does not bypass the power-gates"
            )
        if not fuses.bypass_enabled and processor.package.bypass_power_gates:
            raise ConfigurationError(
                "normal mode fused but the package has the power-gates bypassed"
            )
        self._processor = processor
        self._fuses = fuses
        self._virus_table = virus_table or default_virus_table(processor.core_count)
        self._guardband_model = guardband_model or GuardbandModel(
            configuration=processor.package.pdn,
            reliability_margin_v=reliability_margin_v,
        )
        self._vf_curve = VfCurve(
            silicon=processor.die.vf_character,
            guardband_model=self._guardband_model,
            virus_table=self._virus_table,
            frequency_grid=processor.die.core_frequency_grid,
            vmax_v=processor.die.vmax_v,
        )
        self._die_variation = die_variation
        self._dvfs = DvfsPolicy(
            processor=processor,
            vf_curve=self._vf_curve,
            bypass_mode=fuses.bypass_enabled,
            die_variation=die_variation,
        )
        self._pbm = PowerBudgetManager(
            processor=processor,
            vf_curve=self._vf_curve,
            bypass_mode=fuses.bypass_enabled,
        )
        self._cstates = PackageCStateModel(
            processor=processor,
            bypass_mode=fuses.bypass_enabled,
            die_variation=die_variation,
        )

    # -- identity -------------------------------------------------------------------------

    @property
    def processor(self) -> Processor:
        """The processor this firmware drives."""
        return self._processor

    @property
    def fuses(self) -> FuseSet:
        """The fuse set read at reset."""
        return self._fuses

    @property
    def bypass_mode(self) -> bool:
        """True when the part operates in DarkGates bypass mode."""
        return self._fuses.bypass_enabled

    @property
    def die_variation(self) -> Optional["DieVariation"]:
        """The specific die this firmware drives (``None`` == nominal)."""
        return self._die_variation

    @property
    def vf_curve(self) -> VfCurve:
        """The guardbanded V/F curve in use."""
        return self._vf_curve

    @property
    def guardband_model(self) -> GuardbandModel:
        """The guardband model in use."""
        return self._guardband_model

    @property
    def cstate_model(self) -> PackageCStateModel:
        """The package C-state power model in use."""
        return self._cstates

    @property
    def dvfs_policy(self) -> DvfsPolicy:
        """The DVFS (P-state) policy in use.

        Exposed for the closed-loop dynamics engine, which re-resolves
        operating points per time step against the policy's candidate
        tables rather than the sustained fixed point.
        """
        return self._dvfs

    # -- CPU workloads --------------------------------------------------------------------

    def resolve_cpu_operating_point(self, demand: CpuDemand) -> OperatingPoint:
        """Resolve the CPU frequency/voltage for a CPU-bound workload."""
        return self._dvfs.resolve(demand)

    def turbo_table(self) -> TurboTable:
        """Vmax-limited turbo table of this configuration."""
        return TurboTable.from_vf_curve(self._vf_curve, self._processor.core_count)

    # -- graphics workloads ------------------------------------------------------------------

    def resolve_graphics_operating_point(
        self, demand: GraphicsDemand
    ) -> GraphicsOperatingPoint:
        """Resolve the graphics frequency under the shared power budget."""
        return self._pbm.resolve(demand)

    # -- idle / energy workloads ----------------------------------------------------------------

    def deepest_package_cstate(self) -> PackageCState:
        """Deepest package C-state this platform may enter."""
        return PackageCState.from_name(self._fuses.deepest_package_cstate)

    def wake_rail_voltage_v(self, active_cores: int = 1) -> float:
        """Rail voltage during the low-frequency active bursts of idle scenarios.

        Idle-platform wakes run at the bottom of the frequency grid; the
        firmware programs the guardbanded voltage for that bin, and on a
        bypassed part this is the rail at which the dark cores leak while
        the woken cores service the burst.
        """
        if active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")
        grid = self._processor.die.core_frequency_grid
        return self._vf_curve.required_voltage_v(grid.min_hz, active_cores)

    def package_idle_power_w(self, state: Optional[PackageCState] = None) -> float:
        """Package power at an idle state (deepest supported by default)."""
        target = state or self.deepest_package_cstate()
        supported = self.deepest_package_cstate()
        if target.depth > supported.depth:
            raise ConfigurationError(
                f"platform supports at most package {supported.value}, "
                f"requested {target.value}"
            )
        return self._cstates.power_w(target)

    def describe(self) -> str:
        """One-line description of the configuration (for reports)."""
        mode = "bypass" if self.bypass_mode else "normal"
        return (
            f"{self._processor.describe()} | mode={mode} | "
            f"deepest package C-state={self._fuses.deepest_package_cstate}"
        )
