"""Multi-core turbo tables and the time-dependent turbo power budget.

Intel client parts publish a "turbo table": the maximum frequency the cores
may reach as a function of how many of them are active.  In this library the
table is derived from the guardbanded V/F curve — more active cores means a
higher power-virus level, a larger guardband, and therefore a lower
Vmax-limited frequency.  The DVFS policy applies TDP/Iccmax on top of it.

:class:`TurboBudgetManager` adds the *temporal* half of turbo (Section 2.1):
the PL1/PL2 limit pair with EWMA accounting that lets the package burst to
PL2 while the moving average of power has headroom below PL1, then squeezes
the budget back to the sustained (TDP) level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.pmu.vf_curve import VfCurve
from repro.power.budget import BatchedEwmaMeter, EwmaPowerMeter, TurboLimits


@dataclass(frozen=True)
class TurboTable:
    """Maximum (Vmax-limited) frequency per active-core count."""

    max_frequency_by_active_cores: Dict[int, float]

    def __post_init__(self) -> None:
        if not self.max_frequency_by_active_cores:
            raise ConfigurationError("turbo table must not be empty")
        counts = sorted(self.max_frequency_by_active_cores)
        if counts[0] < 1:
            raise ConfigurationError("active-core counts must start at 1")
        previous = float("inf")
        for count in counts:
            frequency = self.max_frequency_by_active_cores[count]
            if frequency > previous + 1e-6:
                raise ConfigurationError(
                    "turbo frequency must not increase with more active cores"
                )
            previous = frequency

    # -- queries -----------------------------------------------------------------------

    def max_frequency_hz(self, active_cores: int) -> float:
        """Turbo ceiling for *active_cores* active cores."""
        counts = sorted(self.max_frequency_by_active_cores)
        if active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")
        eligible = [c for c in counts if c >= active_cores]
        key = eligible[0] if eligible else counts[-1]
        return self.max_frequency_by_active_cores[key]

    def single_core_turbo_hz(self) -> float:
        """The 1-core turbo ceiling."""
        return self.max_frequency_hz(1)

    def all_core_turbo_hz(self) -> float:
        """The all-core turbo ceiling."""
        return self.max_frequency_by_active_cores[max(self.max_frequency_by_active_cores)]

    def rows(self) -> List[tuple[int, float]]:
        """(active cores, max frequency) rows for reporting."""
        return sorted(self.max_frequency_by_active_cores.items())

    # -- construction ---------------------------------------------------------------------

    @classmethod
    def from_vf_curve(cls, vf_curve: VfCurve, core_count: int) -> "TurboTable":
        """Derive the turbo table from a guardbanded V/F curve."""
        if core_count < 1:
            raise ConfigurationError("core_count must be >= 1")
        table = {
            active: vf_curve.fmax_hz(active) for active in range(1, core_count + 1)
        }
        # Enforce monotonicity against guardband-model noise.
        best = float("inf")
        for active in sorted(table):
            best = min(best, table[active])
            table[active] = best
        return cls(max_frequency_by_active_cores=table)


class TurboBudgetManager:
    """Stateful PL1/PL2 turbo budget with EWMA accounting.

    One manager tracks one closed-loop run: every simulation step asks for
    the instantaneous package power budget, resolves an operating point
    under it, and accounts the power actually drawn.  While the moving
    average sits well below PL1 the budget is the burst limit PL2; as
    sustained draw pulls the average up to PL1 the budget converges to PL1
    (the TDP), which is exactly the burst-then-throttle shape of the paper's
    TDP-limited systems.

    Parameters
    ----------
    limits:
        The PL1/PL2/tau configuration.
    initial_average_w:
        Starting EWMA of package power; zero models a fully banked budget.
    """

    def __init__(self, limits: TurboLimits, initial_average_w: float = 0.0) -> None:
        self._limits = limits
        self._meter = EwmaPowerMeter(
            tau_s=limits.tau_s, initial_average_w=initial_average_w
        )

    @property
    def limits(self) -> TurboLimits:
        """The PL1/PL2 configuration in force."""
        return self._limits

    @property
    def average_power_w(self) -> float:
        """Present EWMA of accounted package power."""
        return self._meter.average_w

    def power_budget_w(self, time_step_s: float) -> float:
        """Package power the next *time_step_s* may draw.

        The binding constraint is the tighter of the instantaneous PL2
        limit and the largest draw that keeps the EWMA at or below PL1.
        """
        pl1_bound = self._meter.max_power_keeping_average_w(
            self._limits.pl1_w, time_step_s
        )
        return min(self._limits.pl2_w, pl1_bound)

    def account(self, power_w: float, time_step_s: float) -> float:
        """Record *time_step_s* of constant *power_w*; returns the new average."""
        return self._meter.update(power_w, time_step_s)

    def headroom_w(self) -> float:
        """How far the moving average sits below PL1 (negative when over)."""
        return self._limits.pl1_w - self._meter.average_w


class BatchedTurboBudgetManager:
    """Vectorized :class:`TurboBudgetManager` over a batch of lockstep runs.

    One manager tracks one *grid* of closed-loop runs, each with its own
    PL1/PL2 pair, EWMA window and time step.  The arithmetic matches the
    scalar manager expression for expression, so batched budget/accounting
    trajectories are bit-identical to per-run stepping.

    Parameters
    ----------
    limits:
        One :class:`~repro.power.budget.TurboLimits` per run.
    time_step_s:
        Per-run (constant) simulation steps.
    initial_average_w:
        Per-run EWMA of package power at t=0.
    """

    def __init__(
        self,
        limits: Sequence[TurboLimits],
        time_step_s: Sequence[float],
        initial_average_w: Sequence[float],
    ) -> None:
        if not (len(limits) == len(time_step_s) == len(initial_average_w)):
            raise ConfigurationError(
                "limits, time_step_s and initial_average_w must align"
            )
        self._pl1_w = np.array([limit.pl1_w for limit in limits], dtype=float)
        self._pl2_w = np.array([limit.pl2_w for limit in limits], dtype=float)
        self._meter = BatchedEwmaMeter(
            tau_s=[limit.tau_s for limit in limits],
            time_step_s=time_step_s,
            initial_average_w=initial_average_w,
        )

    @property
    def pl1_w(self) -> np.ndarray:
        """Per-run sustained power limits."""
        return self._pl1_w

    @property
    def pl2_w(self) -> np.ndarray:
        """Per-run burst power limits."""
        return self._pl2_w

    @property
    def average_power_w(self) -> np.ndarray:
        """Present per-run EWMAs of accounted package power."""
        return self._meter.average_w

    def power_budget_w(self) -> np.ndarray:
        """Per-run package power the next step may draw (PL2-clamped)."""
        pl1_bound = self._meter.max_power_keeping_average_w(self._pl1_w)
        return np.minimum(self._pl2_w, pl1_bound)

    def account(
        self, power_w: np.ndarray, active: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Record one step of per-run *power_w*; returns the new averages."""
        return self._meter.update(power_w, active=active)
