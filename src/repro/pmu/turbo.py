"""Multi-core turbo tables.

Intel client parts publish a "turbo table": the maximum frequency the cores
may reach as a function of how many of them are active.  In this library the
table is derived from the guardbanded V/F curve — more active cores means a
higher power-virus level, a larger guardband, and therefore a lower
Vmax-limited frequency.  The DVFS policy applies TDP/Iccmax on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.pmu.vf_curve import VfCurve


@dataclass(frozen=True)
class TurboTable:
    """Maximum (Vmax-limited) frequency per active-core count."""

    max_frequency_by_active_cores: Dict[int, float]

    def __post_init__(self) -> None:
        if not self.max_frequency_by_active_cores:
            raise ConfigurationError("turbo table must not be empty")
        counts = sorted(self.max_frequency_by_active_cores)
        if counts[0] < 1:
            raise ConfigurationError("active-core counts must start at 1")
        previous = float("inf")
        for count in counts:
            frequency = self.max_frequency_by_active_cores[count]
            if frequency > previous + 1e-6:
                raise ConfigurationError(
                    "turbo frequency must not increase with more active cores"
                )
            previous = frequency

    # -- queries -----------------------------------------------------------------------

    def max_frequency_hz(self, active_cores: int) -> float:
        """Turbo ceiling for *active_cores* active cores."""
        counts = sorted(self.max_frequency_by_active_cores)
        if active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")
        eligible = [c for c in counts if c >= active_cores]
        key = eligible[0] if eligible else counts[-1]
        return self.max_frequency_by_active_cores[key]

    def single_core_turbo_hz(self) -> float:
        """The 1-core turbo ceiling."""
        return self.max_frequency_hz(1)

    def all_core_turbo_hz(self) -> float:
        """The all-core turbo ceiling."""
        return self.max_frequency_by_active_cores[max(self.max_frequency_by_active_cores)]

    def rows(self) -> List[tuple[int, float]]:
        """(active cores, max frequency) rows for reporting."""
        return sorted(self.max_frequency_by_active_cores.items())

    # -- construction ---------------------------------------------------------------------

    @classmethod
    def from_vf_curve(cls, vf_curve: VfCurve, core_count: int) -> "TurboTable":
        """Derive the turbo table from a guardbanded V/F curve."""
        if core_count < 1:
            raise ConfigurationError("core_count must be >= 1")
        table = {
            active: vf_curve.fmax_hz(active) for active in range(1, core_count + 1)
        }
        # Enforce monotonicity against guardband-model noise.
        best = float("inf")
        for active in sorted(table):
            best = min(best, table[active])
            table[active] = best
        return cls(max_frequency_by_active_cores=table)
