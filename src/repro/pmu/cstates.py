"""Package C-states (system idle power states).

Reproduces Table 1 of the paper: the package C-states of the Skylake client
architecture, the conditions to enter each, and — the part that matters for
the energy-efficiency evaluation of Fig. 10 — how much the package consumes
in each state for a gated (baseline) versus bypassed (DarkGates) part.

The key asymmetry: in package C7 the CPU core voltage regulator is still on.
A baseline part power-gates its idle cores, so C7 is cheap; a DarkGates part
cannot, so its cores keep leaking at the retention rail voltage and C7 power
rises by more than 3x (Section 4.3).  Package C8 turns the core VR off
entirely, which removes that leakage and is why DarkGates desktops must add
C8 support.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.common.errors import ConfigurationError
from repro.soc.processor import Processor

if TYPE_CHECKING:
    from repro.variation.sampler import DieVariation


class PackageCState(Enum):
    """Package C-states of the Skylake client architecture (Table 1)."""

    C0 = "C0"
    C2 = "C2"
    C3 = "C3"
    C6 = "C6"
    C7 = "C7"
    C8 = "C8"
    C9 = "C9"
    C10 = "C10"

    @property
    def depth(self) -> int:
        """Numeric depth used for ordering (deeper == larger)."""
        return int(self.value[1:])

    def is_deeper_than(self, other: "PackageCState") -> bool:
        """True when this state is deeper (lower power) than *other*."""
        return self.depth > other.depth

    @property
    def core_vr_on(self) -> bool:
        """Whether the CPU core voltage regulator is still on in this state.

        Table 1: the core VR is on up to and including package C7 and off
        from package C8 onwards.
        """
        return self.depth <= 7

    @classmethod
    def from_name(cls, name: str) -> "PackageCState":
        """Parse a state from a string such as ``"C8"`` (case-insensitive)."""
        try:
            return cls[name.strip().upper()]
        except (KeyError, AttributeError):
            valid = ", ".join(state.value for state in cls)
            raise ConfigurationError(
                f"unknown package C-state {name!r}; valid names "
                f"(case-insensitive): {valid}"
            ) from None


#: Break-even ladder of package C-state entry: (minimum idle-gap duration in
#: seconds, state entered), shallow to deep.  Entering a deep state costs
#: more transition energy than it saves below its break-even time, so very
#: short gaps only reach the shallow states.  Shared by the residency tracker
#: and the closed-loop dynamics engine.
CSTATE_BREAK_EVEN_LADDER: Tuple[Tuple[float, "PackageCState"], ...] = (
    (0.0, PackageCState.C2),
    (0.0005, PackageCState.C3),
    (0.002, PackageCState.C6),
    (0.008, PackageCState.C7),
    (0.030, PackageCState.C8),
)


def cstate_for_idle_duration(
    duration_s: float, deepest_supported: "PackageCState"
) -> "PackageCState":
    """Deepest package C-state reachable for an idle gap of *duration_s*.

    Walks :data:`CSTATE_BREAK_EVEN_LADDER` and clamps the result at the
    platform's *deepest_supported* state (set by the fuses).
    """
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    chosen = CSTATE_BREAK_EVEN_LADDER[0][1]
    for minimum_s, state in CSTATE_BREAK_EVEN_LADDER:
        if duration_s >= minimum_s:
            chosen = state
    if chosen.depth > deepest_supported.depth:
        return deepest_supported
    return chosen


#: Entry conditions of each package C-state, condensed from the paper's Table 1.
PACKAGE_CSTATE_TABLE: Dict[PackageCState, str] = {
    PackageCState.C0: (
        "One or more cores or the graphics engine executing instructions"
    ),
    PackageCState.C2: (
        "All cores in CC3 (clocks off) or deeper and graphics in RC6 "
        "(power-gated); DRAM active"
    ),
    PackageCState.C3: (
        "All cores in CC3 or deeper, graphics in RC6; LLC may be flushed and "
        "turned off, DRAM in self-refresh, most IO/memory clocks gated"
    ),
    PackageCState.C6: (
        "All cores in CC6 (power-gated) or deeper, graphics in RC6; DRAM in "
        "self-refresh, IO and memory clock generators off"
    ),
    PackageCState.C7: (
        "Same as package C6 with some IO and memory domain voltages "
        "power-gated; CPU core VR is ON"
    ),
    PackageCState.C8: (
        "Same as package C7 with additional power-gating in the IO and memory "
        "domains; CPU core VR is OFF"
    ),
    PackageCState.C9: (
        "Same as package C8 while all IPs must be off; most VR voltages "
        "reduced; display panel may be in panel self-refresh"
    ),
    PackageCState.C10: (
        "Same as package C9 while all SoC VRs except the always-on VR are "
        "off; display panel off"
    ),
}


@dataclass(frozen=True)
class CStatePowerBreakdown:
    """Power of the package at one idle state, split by contributor."""

    state: PackageCState
    cores_leakage_w: float
    uncore_w: float
    vr_overhead_w: float
    platform_floor_w: float

    @property
    def total_w(self) -> float:
        """Total package (processor-attributed) power in this state."""
        return (
            self.cores_leakage_w
            + self.uncore_w
            + self.vr_overhead_w
            + self.platform_floor_w
        )


class PackageCStateModel:
    """Package idle-power model for one processor configuration.

    Parameters
    ----------
    processor:
        Hardware configuration (the package decides whether cores can be
        gated when idle).
    bypass_mode:
        True for a DarkGates (bypassed) part; idle cores then leak whenever
        the core VR is on.
    retention_voltage_v:
        Rail voltage the core VR maintains in deep package C-states while it
        is still on (C6/C7): low, but enough to wake quickly.
    idle_temperature_c:
        Junction temperature during long idle periods.
    vr_on_overhead_w:
        Fixed conversion overhead of the core VR while it is enabled.
    vr_off_wake_assist_w:
        Power of the wake-assist machinery that VR-off states (C8 and
        deeper) require: CPU context preserved in DRAM, chipset-hosted wake
        timers, and the circuitry that sequences the core VR back on
        (paper Section 4.3 footnote on C8+/C10 platform support).
    platform_floor_w:
        Always-on power attributed to the processor in any idle state
        (always-on VR rail, wake logic).
    die_variation:
        Optional :class:`~repro.variation.sampler.DieVariation` of the
        specific die; when set, :meth:`power_w` routes through the varied
        leakage arithmetic (:meth:`varied_power_w`) so a die's leakage
        corner and ``kt`` shift show up in its idle power exactly as the
        population fast path computes them.
    """

    def __init__(
        self,
        processor: Processor,
        bypass_mode: bool,
        retention_voltage_v: float = 0.95,
        idle_temperature_c: float = 55.0,
        vr_on_overhead_w: float = 0.05,
        vr_off_wake_assist_w: float = 0.11,
        platform_floor_w: float = 0.07,
        die_variation: Optional["DieVariation"] = None,
    ) -> None:
        if retention_voltage_v <= 0:
            raise ConfigurationError("retention_voltage_v must be positive")
        self._processor = processor
        self._bypass_mode = bypass_mode
        self._retention_voltage_v = retention_voltage_v
        self._idle_temperature_c = idle_temperature_c
        self._vr_on_overhead_w = vr_on_overhead_w
        self._vr_off_wake_assist_w = vr_off_wake_assist_w
        self._platform_floor_w = platform_floor_w
        self._die_variation = die_variation

    # -- per-state power -----------------------------------------------------------------

    def breakdown(self, state: PackageCState) -> CStatePowerBreakdown:
        """Power breakdown of the package at idle *state*."""
        if state is PackageCState.C0:
            raise ConfigurationError(
                "package C0 is an active state; use the DVFS/PBM models for it"
            )
        cores_leakage = self._cores_leakage_w(state)
        uncore = self._processor.die.uncore.package_idle_power_w(state.value)
        vr_overhead = (
            self._vr_on_overhead_w if state.core_vr_on else self._vr_off_wake_assist_w
        )
        return CStatePowerBreakdown(
            state=state,
            cores_leakage_w=cores_leakage,
            uncore_w=uncore,
            vr_overhead_w=vr_overhead,
            platform_floor_w=self._platform_floor_w,
        )

    def power_w(self, state: PackageCState) -> float:
        """Total package power at idle *state*."""
        if self._die_variation is not None:
            return float(
                self.varied_power_w(
                    state,
                    self._die_variation.leakage_scale,
                    self._die_variation.leakage_kt_delta_per_c,
                )
            )
        return self.breakdown(state).total_w

    # -- die variation -----------------------------------------------------------------

    def varied_power_w(
        self,
        state: PackageCState,
        leakage_scale: Union[float, np.ndarray],
        kt_delta_per_c: Union[float, np.ndarray],
    ) -> Union[float, np.ndarray]:
        """Package power at idle *state* for one or many varied dice.

        The knobs may be scalars (one die) or arrays (a population): the
        same element-wise expressions evaluate either way, so the per-die
        reference path and the population fast path agree bit for bit.
        Only the core-leakage component varies; uncore, VR overhead and the
        platform floor are die-independent, and the summation order mirrors
        :meth:`CStatePowerBreakdown.total_w`.
        """
        if state is PackageCState.C0:
            raise ConfigurationError(
                "package C0 is an active state; use the DVFS/PBM models for it"
            )
        leakage = self._varied_cores_leakage_w(state, leakage_scale, kt_delta_per_c)
        uncore = self._processor.die.uncore.package_idle_power_w(state.value)
        vr_overhead = (
            self._vr_on_overhead_w if state.core_vr_on else self._vr_off_wake_assist_w
        )
        return leakage + uncore + vr_overhead + self._platform_floor_w

    def _varied_cores_leakage_w(
        self,
        state: PackageCState,
        leakage_scale: Union[float, np.ndarray],
        kt_delta_per_c: Union[float, np.ndarray],
    ) -> Union[float, np.ndarray]:
        if not state.core_vr_on:
            # Core VR off: unpowered cores leak nothing, whatever the die.
            return leakage_scale * 0.0
        total: Union[float, np.ndarray] = 0.0
        for core in self._processor.die.cores:
            contribution = core.leakage.base_power_w(
                self._retention_voltage_v
            ) * core.leakage.temperature_factor(
                self._idle_temperature_c, kt_delta_per_c
            )
            if not self._bypass_mode:
                contribution = contribution * core.power_gate.residual_leakage_fraction
            total = total + contribution
        return total * leakage_scale

    def _cores_leakage_w(self, state: PackageCState) -> float:
        if not state.core_vr_on:
            # Core VR off: the cores are unpowered regardless of gating.
            return 0.0
        die = self._processor.die
        if self._bypass_mode:
            # Bypassed: idle cores sit at the retention rail voltage and leak.
            return sum(
                core.leakage.power_w(self._retention_voltage_v, self._idle_temperature_c)
                for core in die.cores
            )
        # Gated: only the residual leakage through the off power-gates remains.
        return sum(
            core.idle_power_w(
                self._retention_voltage_v, gated=True, temperature_c=self._idle_temperature_c
            )
            for core in die.cores
        )

    # -- state selection ------------------------------------------------------------------

    def deepest_reachable(self, deepest_supported: PackageCState) -> PackageCState:
        """Deepest state the platform actually enters during long idle."""
        return deepest_supported

    def idle_states(self) -> List[PackageCState]:
        """All idle (non-C0) states, shallow to deep."""
        return [state for state in PackageCState if state is not PackageCState.C0]

    def power_ratio_to(
        self, other: "PackageCStateModel", state: PackageCState
    ) -> float:
        """Ratio of this configuration's power to *other*'s at *state*."""
        other_power = other.power_w(state)
        if other_power <= 0:
            raise ConfigurationError("reference configuration has zero power")
        return self.power_w(state) / other_power


def table1_rows() -> List[tuple[str, str]]:
    """(state, entry conditions) rows reproducing the paper's Table 1."""
    return [(state.value, PACKAGE_CSTATE_TABLE[state]) for state in PACKAGE_CSTATE_TABLE]
