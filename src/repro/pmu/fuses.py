"""Silicon fuse configuration read by the firmware at reset.

DarkGates' firmware selects its operating mode from a fuse (paper
Section 5): desktop parts are fused for *bypass mode* (use the improved V/F
curves, account for idle-core leakage, enable package C8), mobile parts for
*normal mode* (use the power-gates).  The fuse set also records the deepest
package C-state the platform supports, which is how the paper distinguishes
legacy desktops (C7), DarkGates desktops (C8), and mobiles (C10).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigurationError

#: Approximate size of the additional firmware code for the DarkGates flows
#: (paper Section 5: ~0.3 KB).
DARKGATES_FIRMWARE_BYTES = 300

#: Die area occupied by one byte of Pcode ROM/patch RAM, chosen so that the
#: paper's statement holds: 0.3 KB of extra firmware stays below 0.004 % of
#: the ~122 mm^2 Skylake die area.
FIRMWARE_BYTE_AREA_MM2 = 122.0 * 0.00003 / DARKGATES_FIRMWARE_BYTES


class PowerDeliveryMode(Enum):
    """Firmware power-delivery operating mode (paper Section 4.2/5)."""

    NORMAL = "normal"  # power-gates used to cut idle-core leakage
    BYPASS = "bypass"  # power-gates bypassed for better V/F curves


@dataclass(frozen=True)
class FuseSet:
    """Fuses the Pcode reads at reset.

    Parameters
    ----------
    power_delivery_mode:
        Bypass (desktop/DarkGates) or normal (mobile/baseline).
    deepest_package_cstate:
        Deepest package C-state the platform is validated for ("C7", "C8",
        or "C10").
    segment:
        Market segment string, informational only.
    """

    power_delivery_mode: PowerDeliveryMode
    deepest_package_cstate: str = "C7"
    segment: str = "desktop"

    _VALID_DEEPEST = ("C2", "C3", "C6", "C7", "C8", "C9", "C10")

    def __post_init__(self) -> None:
        # Normalize the stored name so fuse sets (and the specs built from
        # them) differing only in case compare, hash, and print identically.
        normalized = self.deepest_package_cstate.strip().upper()
        if normalized not in self._VALID_DEEPEST:
            raise ConfigurationError(
                f"unsupported deepest package C-state "
                f"{self.deepest_package_cstate!r}; valid names "
                f"(case-insensitive): {', '.join(self._VALID_DEEPEST)}"
            )
        object.__setattr__(self, "deepest_package_cstate", normalized)

    @property
    def bypass_enabled(self) -> bool:
        """True when this part is fused for bypass mode."""
        return self.power_delivery_mode is PowerDeliveryMode.BYPASS

    @classmethod
    def darkgates_desktop(cls) -> "FuseSet":
        """Fuses of a DarkGates desktop part: bypass mode, package C8."""
        return cls(
            power_delivery_mode=PowerDeliveryMode.BYPASS,
            deepest_package_cstate="C8",
            segment="desktop",
        )

    @classmethod
    def legacy_desktop(cls) -> "FuseSet":
        """Fuses of a pre-DarkGates desktop: normal mode, package C7."""
        return cls(
            power_delivery_mode=PowerDeliveryMode.NORMAL,
            deepest_package_cstate="C7",
            segment="desktop",
        )

    @classmethod
    def mobile(cls) -> "FuseSet":
        """Fuses of a mobile part: normal mode, package C10."""
        return cls(
            power_delivery_mode=PowerDeliveryMode.NORMAL,
            deepest_package_cstate="C10",
            segment="mobile",
        )


def firmware_area_overhead_fraction(die_area_mm2: float) -> float:
    """Die-area fraction of the extra DarkGates firmware (paper: <0.004 %)."""
    if die_area_mm2 <= 0:
        raise ConfigurationError("die_area_mm2 must be positive")
    return DARKGATES_FIRMWARE_BYTES * FIRMWARE_BYTE_AREA_MM2 / die_area_mm2
