"""DVFS (P-state) resolution.

The DVFS firmware picks the highest selectable CPU frequency that satisfies
every platform limit for the current demand:

* **Vmax** — nominal voltage plus guardband must not exceed the reliability
  voltage limit (this is what makes high-TDP systems "Fmax-constrained").
* **TDP**  — sustained package power must fit the thermal design power
  (this is what limits low-TDP systems).
* **Iccmax (EDC)** — worst-case instantaneous current must stay within the
  VR's electrical design current.

The resolution walks the 100 MHz frequency grid downwards, which reproduces
the granularity effects the paper calls out in Section 3 and Section 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range
from repro.pmu.vf_curve import VfCurve
from repro.soc.processor import Processor


class LimitingFactor(Enum):
    """Which limit stopped the frequency search."""

    VMAX = "vmax"
    TDP = "tdp"
    ICCMAX = "iccmax"
    FREQUENCY_GRID = "frequency_grid"
    NONE = "none"


@dataclass(frozen=True)
class CpuDemand:
    """What the running workload asks of the CPU cores.

    Parameters
    ----------
    active_cores:
        Number of cores executing instructions.
    activity:
        Cdyn fraction of the running code (1.0 == power-virus).
    memory_intensity:
        0..1 memory-traffic intensity; raises uncore power.
    graphics_active:
        True when the graphics engine is rendering concurrently (its power
        is then accounted by the PBM, not here).
    """

    active_cores: int
    activity: float = 0.62
    memory_intensity: float = 0.2
    graphics_active: bool = False

    def __post_init__(self) -> None:
        if self.active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")
        ensure_in_range(self.activity, 0.0, 1.0, "activity")
        ensure_in_range(self.memory_intensity, 0.0, 1.0, "memory_intensity")


@dataclass(frozen=True)
class OperatingPoint:
    """A resolved CPU operating point."""

    frequency_hz: float
    voltage_v: float
    package_power_w: float
    cores_power_w: float
    idle_cores_power_w: float
    uncore_power_w: float
    limiting_factor: LimitingFactor
    junction_temperature_c: float

    @property
    def frequency_ghz(self) -> float:
        """Operating frequency in GHz."""
        return self.frequency_hz / 1e9


class DvfsPolicy:
    """Resolves CPU operating points for a processor and V/F curve.

    Parameters
    ----------
    processor:
        The hardware configuration (die, package, TDP).
    vf_curve:
        Guardbanded V/F curve of the part's power-delivery configuration.
    bypass_mode:
        True when the firmware runs in bypass mode (idle cores cannot be
        power-gated and keep leaking at the shared rail voltage).
    graphics_idle_power_w:
        Power attributed to the (idle) graphics engine during CPU workloads.
    thermal_iterations:
        Fixed-point iterations of the power/temperature loop.
    """

    def __init__(
        self,
        processor: Processor,
        vf_curve: VfCurve,
        bypass_mode: bool,
        graphics_idle_power_w: float = 0.05,
        thermal_iterations: int = 3,
    ) -> None:
        if thermal_iterations < 1:
            raise ConfigurationError("thermal_iterations must be >= 1")
        self._processor = processor
        self._vf_curve = vf_curve
        self._bypass_mode = bypass_mode
        self._graphics_idle_power_w = graphics_idle_power_w
        self._thermal_iterations = thermal_iterations
        self._thermal_model = processor.thermal_model()

    # -- public API -----------------------------------------------------------------------

    @property
    def vf_curve(self) -> VfCurve:
        """The V/F curve this policy resolves against."""
        return self._vf_curve

    def resolve(self, demand: CpuDemand) -> OperatingPoint:
        """Highest-performance operating point satisfying every limit."""
        if demand.active_cores > self._processor.core_count:
            raise ConfigurationError(
                f"demand asks for {demand.active_cores} cores but the processor "
                f"has {self._processor.core_count}"
            )
        grid = self._vf_curve.frequency_grid
        chosen: Optional[OperatingPoint] = None
        limiting = LimitingFactor.FREQUENCY_GRID
        for frequency in grid.descending():
            verdict, point = self._evaluate(frequency, demand)
            if verdict is LimitingFactor.NONE:
                chosen = point
                break
            limiting = verdict
        if chosen is None:
            # Even the lowest bin violates a limit; report the lowest bin with
            # the limit that failed (real firmware would throttle below Pn,
            # but the evaluation never reaches that regime).
            _, point = self._evaluate(grid.min_hz, demand)
            return OperatingPoint(
                frequency_hz=point.frequency_hz,
                voltage_v=point.voltage_v,
                package_power_w=point.package_power_w,
                cores_power_w=point.cores_power_w,
                idle_cores_power_w=point.idle_cores_power_w,
                uncore_power_w=point.uncore_power_w,
                limiting_factor=limiting,
                junction_temperature_c=point.junction_temperature_c,
            )
        # Identify what stops the next bin up (more informative than NONE).
        if chosen.frequency_hz >= grid.max_hz:
            limiting = LimitingFactor.FREQUENCY_GRID
        else:
            next_frequency = grid.step_up(chosen.frequency_hz)
            verdict, _ = self._evaluate(next_frequency, demand)
            limiting = verdict if verdict is not LimitingFactor.NONE else LimitingFactor.NONE
        return OperatingPoint(
            frequency_hz=chosen.frequency_hz,
            voltage_v=chosen.voltage_v,
            package_power_w=chosen.package_power_w,
            cores_power_w=chosen.cores_power_w,
            idle_cores_power_w=chosen.idle_cores_power_w,
            uncore_power_w=chosen.uncore_power_w,
            limiting_factor=limiting,
            junction_temperature_c=chosen.junction_temperature_c,
        )

    def package_power_w(self, frequency_hz: float, demand: CpuDemand) -> float:
        """Sustained package power at a specific frequency for *demand*."""
        _, point = self._evaluate(frequency_hz, demand, enforce_limits=False)
        return point.package_power_w

    # -- internals -------------------------------------------------------------------------

    def _evaluate(
        self, frequency_hz: float, demand: CpuDemand, enforce_limits: bool = True
    ) -> tuple[LimitingFactor, OperatingPoint]:
        # The VR is programmed to the fully-guardbanded voltage (checked
        # against Vmax below); the power estimate uses the effective silicon
        # voltage for a typical workload.
        vr_voltage = self._vf_curve.required_voltage_v(frequency_hz, demand.active_cores)
        voltage = self._vf_curve.power_voltage_v(frequency_hz, demand.active_cores)
        temperature = 60.0
        cores_power = idle_power = uncore_power = package_power = 0.0
        for _ in range(self._thermal_iterations):
            cores_power = self._active_cores_power_w(
                frequency_hz, voltage, demand, temperature
            )
            idle_power = self._idle_cores_power_w(voltage, demand, temperature)
            uncore_power = self._processor.die.uncore.package_c0_power_w(
                demand.memory_intensity
            )
            package_power = (
                cores_power + idle_power + uncore_power + self._graphics_idle_power_w
            )
            temperature = min(
                self._processor.tjmax_c,
                self._thermal_model.junction_temperature_c(package_power),
            )
        point = OperatingPoint(
            frequency_hz=frequency_hz,
            voltage_v=vr_voltage,
            package_power_w=package_power,
            cores_power_w=cores_power,
            idle_cores_power_w=idle_power,
            uncore_power_w=uncore_power,
            limiting_factor=LimitingFactor.NONE,
            junction_temperature_c=temperature,
        )
        if not enforce_limits:
            return LimitingFactor.NONE, point
        if vr_voltage > self._vf_curve.vmax_v + 1e-9:
            return LimitingFactor.VMAX, point
        if package_power > self._processor.tdp_w + 1e-9:
            return LimitingFactor.TDP, point
        if self._virus_current_a(frequency_hz, vr_voltage, demand) > self._processor.die.iccmax_a:
            return LimitingFactor.ICCMAX, point
        return LimitingFactor.NONE, point

    def _active_cores_power_w(
        self, frequency_hz: float, voltage_v: float, demand: CpuDemand, temperature_c: float
    ) -> float:
        total = 0.0
        for core in self._processor.die.cores[: demand.active_cores]:
            total += core.active_power_w(
                frequency_hz, voltage_v, demand.activity, temperature_c
            )
        return total

    def _idle_cores_power_w(
        self, voltage_v: float, demand: CpuDemand, temperature_c: float
    ) -> float:
        idle_cores = self._processor.die.cores[demand.active_cores :]
        gated = not self._bypass_mode
        return sum(
            core.idle_power_w(voltage_v, gated=gated, temperature_c=temperature_c)
            for core in idle_cores
        )

    def _virus_current_a(
        self, frequency_hz: float, voltage_v: float, demand: CpuDemand
    ) -> float:
        per_core = self._processor.die.cores[0].virus_current_a(frequency_hz, voltage_v)
        uncore_current = 6.0  # uncore + graphics floor on the core rail's EDC budget
        return per_core * demand.active_cores + uncore_current
