"""DVFS (P-state) resolution.

The DVFS firmware picks the highest selectable CPU frequency that satisfies
every platform limit for the current demand:

* **Vmax** — nominal voltage plus guardband must not exceed the reliability
  voltage limit (this is what makes high-TDP systems "Fmax-constrained").
* **TDP**  — sustained package power must fit the thermal design power
  (this is what limits low-TDP systems).
* **Iccmax (EDC)** — worst-case instantaneous current must stay within the
  VR's electrical design current.

The resolution walks the 100 MHz frequency grid downwards, which reproduces
the granularity effects the paper calls out in Section 3 and Section 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range
from repro.pmu.vf_curve import VfCurve
from repro.soc.processor import Processor

if TYPE_CHECKING:
    from repro.variation.sampler import DieVariation


class LimitingFactor(Enum):
    """Which limit stopped the frequency search."""

    VMAX = "vmax"
    TDP = "tdp"
    ICCMAX = "iccmax"
    THERMAL = "thermal"
    FREQUENCY_GRID = "frequency_grid"
    NONE = "none"


#: Fixed enumeration order backing the integer codes the batched (lockstep)
#: resolution paths use in place of enum members; ``LIMITING_FACTOR_ORDER[code]``
#: recovers the member.  The two power-limited factors sit at the top so a
#: single ``code >= TDP`` comparison tests for them.
LIMITING_FACTOR_ORDER: Tuple[LimitingFactor, ...] = (
    LimitingFactor.VMAX,
    LimitingFactor.ICCMAX,
    LimitingFactor.FREQUENCY_GRID,
    LimitingFactor.NONE,
    LimitingFactor.TDP,
    LimitingFactor.THERMAL,
)

#: LimitingFactor -> integer code (the inverse of LIMITING_FACTOR_ORDER).
LIMITING_FACTOR_CODES: Dict[LimitingFactor, int] = {
    factor: code for code, factor in enumerate(LIMITING_FACTOR_ORDER)
}


@dataclass(frozen=True)
class CpuDemand:
    """What the running workload asks of the CPU cores.

    Parameters
    ----------
    active_cores:
        Number of cores executing instructions.
    activity:
        Cdyn fraction of the running code (1.0 == power-virus).
    memory_intensity:
        0..1 memory-traffic intensity; raises uncore power.
    graphics_active:
        True when the graphics engine is rendering concurrently (its power
        is then accounted by the PBM, not here).
    """

    active_cores: int
    activity: float = 0.62
    memory_intensity: float = 0.2
    graphics_active: bool = False

    def __post_init__(self) -> None:
        if self.active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")
        ensure_in_range(self.activity, 0.0, 1.0, "activity")
        ensure_in_range(self.memory_intensity, 0.0, 1.0, "memory_intensity")


@dataclass(frozen=True)
class OperatingPoint:
    """A resolved CPU operating point."""

    frequency_hz: float
    voltage_v: float
    package_power_w: float
    cores_power_w: float
    idle_cores_power_w: float
    uncore_power_w: float
    limiting_factor: LimitingFactor
    junction_temperature_c: float

    @property
    def frequency_ghz(self) -> float:
        """Operating frequency in GHz."""
        return self.frequency_hz / 1e9


#: Leakage contributions sharing one exponential law: (kt, reference
#: temperature, kv, per-bin leakage at the reference temperature).  The
#: voltage coefficient ``kv`` rides along so die variation can re-reference
#: the group to a shifted rail voltage without rebuilding it from models.
LeakageGroup = Tuple[float, float, float, np.ndarray]

#: Per-core current the power-gate IR-drop guardband is sized for (matches
#: the guardband model's ``per_core_virus_current_a`` default: the gate
#: carries only its own core's worst-case current).
POWER_GATE_GUARDBAND_CURRENT_A = 30.0

#: Scalar-or-array knob values: the same transforms serve one die (floats)
#: and a stacked population (arrays), element for element.
Knob = Union[float, np.ndarray]


def die_voltage_offsets(
    vf_offset_v: Knob,
    powergate_resistance_scale: Knob,
    gate_resistance_ohm: float,
    bypass_mode: bool,
) -> Tuple[Knob, Knob]:
    """Per-die voltage offsets ``(vr, power)`` implied by the silicon knobs.

    The V/F offset shifts both the VR programming voltage and the effective
    silicon voltage used for power.  On a gated part, power-gate resistance
    above nominal additionally costs IR-drop guardband on the VR side (the
    drop is dissipated in the gate, not seen by the silicon); a bypassed
    part has no gate in the supply path and is immune.

    Accepts scalars (one die) or arrays (a population) and evaluates the
    same expression either way, so both paths agree bit for bit.
    """
    if bypass_mode:
        return vf_offset_v, vf_offset_v
    extra = (
        (powergate_resistance_scale - 1.0) * gate_resistance_ohm
    ) * POWER_GATE_GUARDBAND_CURRENT_A
    return vf_offset_v + extra, vf_offset_v


def _varied_reference_w(
    reference_w: np.ndarray,
    voltage_ratio: np.ndarray,
    kv: float,
    power_offset_v: Knob,
    leakage_scale: Knob,
) -> np.ndarray:
    """One leakage group's reference power re-referenced to a varied die.

    The leakage law is ``P_ref * (V / V_ref) * exp(kv * (V - V_ref))`` (the
    temperature term is 1 at the group's reference temperature), so a rail
    shifted by ``dv`` scales the bin by ``(V' / V) * exp(kv * dv)``; the
    die's leakage corner multiplies on top.  Shared verbatim by the scalar
    (per-die) and stacked (population) paths.
    """
    return (reference_w * (voltage_ratio * np.exp(kv * power_offset_v))) * (
        leakage_scale
    )


@dataclass(frozen=True)
class CandidateTable:
    """Temperature-factored operating-point candidates over the whole grid.

    The closed-loop dynamics engine re-resolves DVFS every time step, so the
    per-bin quantities that do *not* depend on temperature (voltages, dynamic
    power, the Vmax/Iccmax verdicts) are evaluated once per demand and only
    the exponential leakage temperature terms are applied per step.  Leakage
    contributions are grouped by their ``(kt, T_ref)`` law, which keeps the
    per-step work at a handful of vectorized operations while reproducing
    :meth:`DvfsPolicy.resolve`'s power arithmetic exactly.
    """

    frequencies_hz: np.ndarray
    vr_voltages_v: np.ndarray
    power_voltages_v: np.ndarray
    active_dynamic_w: np.ndarray
    active_leakage_groups: Tuple[LeakageGroup, ...]
    idle_leakage_groups: Tuple[LeakageGroup, ...]
    uncore_power_w: float
    graphics_idle_power_w: float
    vmax_ok: np.ndarray
    iccmax_ok: np.ndarray
    vmax_v: float

    # -- temperature-dependent power ---------------------------------------------------

    @staticmethod
    def _groups_power_w(
        groups: Tuple[LeakageGroup, ...], temperature_c: Union[float, np.ndarray]
    ) -> np.ndarray:
        total = 0.0
        for kt, reference_c, _kv, reference_w in groups:
            total = total + reference_w * np.exp(kt * (temperature_c - reference_c))
        return total

    def active_cores_power_w(
        self, temperature_c: Union[float, np.ndarray]
    ) -> np.ndarray:
        """Per-bin power of the active cores at *temperature_c*."""
        return self.active_dynamic_w + self._groups_power_w(
            self.active_leakage_groups, temperature_c
        )

    def idle_cores_power_w(
        self, temperature_c: Union[float, np.ndarray]
    ) -> np.ndarray:
        """Per-bin power of the idle cores at *temperature_c*."""
        return np.zeros_like(self.frequencies_hz) + self._groups_power_w(
            self.idle_leakage_groups, temperature_c
        )

    def package_power_w(
        self, temperature_c: Union[float, np.ndarray]
    ) -> np.ndarray:
        """Per-bin package power at *temperature_c*.

        *temperature_c* may be a scalar or a per-bin array (the sustained
        fixed-point resolver evaluates each bin at its own temperature).
        """
        return (
            self.active_cores_power_w(temperature_c)
            + self.idle_cores_power_w(temperature_c)
            + self.uncore_power_w
            + self.graphics_idle_power_w
        )

    # -- die variation -----------------------------------------------------------------

    def varied(
        self,
        *,
        leakage_scale: float = 1.0,
        kt_delta_per_c: float = 0.0,
        vr_offset_v: float = 0.0,
        power_offset_v: float = 0.0,
    ) -> "CandidateTable":
        """This table re-referenced to one varied die.

        Every effect is an element-wise transform of the nominal arrays —
        voltage columns shift, dynamic power scales with the squared
        voltage ratio, leakage groups re-reference through
        :func:`_varied_reference_w` and shift their ``kt`` — using exactly
        the expressions :meth:`StackedCandidateTables.from_population`
        evaluates over a whole population, so a per-die table and a
        population row are bit-identical.  Iccmax verdicts are kept at the
        nominal silicon (the EDC limit is a VR property, not a die one).
        """
        power_voltages = self.power_voltages_v + power_offset_v
        voltage_ratio = power_voltages / self.power_voltages_v
        vr_voltages = self.vr_voltages_v + vr_offset_v

        def groups(
            nominal: Tuple[LeakageGroup, ...],
        ) -> Tuple[LeakageGroup, ...]:
            return tuple(
                (
                    kt + kt_delta_per_c,
                    reference_c,
                    kv,
                    _varied_reference_w(
                        reference_w, voltage_ratio, kv, power_offset_v,
                        leakage_scale,
                    ),
                )
                for kt, reference_c, kv, reference_w in nominal
            )

        return CandidateTable(
            frequencies_hz=self.frequencies_hz,
            vr_voltages_v=vr_voltages,
            power_voltages_v=power_voltages,
            active_dynamic_w=self.active_dynamic_w * (voltage_ratio * voltage_ratio),
            active_leakage_groups=groups(self.active_leakage_groups),
            idle_leakage_groups=groups(self.idle_leakage_groups),
            uncore_power_w=self.uncore_power_w,
            graphics_idle_power_w=self.graphics_idle_power_w,
            vmax_ok=vr_voltages <= self.vmax_v + 1e-9,
            iccmax_ok=self.iccmax_ok,
            vmax_v=self.vmax_v,
        )

    # -- selection ---------------------------------------------------------------------

    def select(
        self,
        power_limit_w: float,
        temperature_c: float,
        package_power_w: Optional[np.ndarray] = None,
    ) -> Tuple[int, LimitingFactor]:
        """Highest bin satisfying every limit at the instantaneous state.

        Returns the chosen bin index and the limit that stops the next bin
        up (mirroring :meth:`DvfsPolicy.resolve`'s reporting: the top bin
        reports ``FREQUENCY_GRID``; an infeasible grid reports the first
        limit the lowest bin violates, checked Vmax, then power, then
        Iccmax).  Callers that already hold this temperature's per-bin
        power vector may pass it as *package_power_w* to skip recomputing
        the leakage terms.
        """
        power = (
            self.package_power_w(temperature_c)
            if package_power_w is None
            else package_power_w
        )
        power_ok = power <= power_limit_w + 1e-9
        allowed = self.vmax_ok & self.iccmax_ok & power_ok
        if not allowed.any():
            return 0, self._blocking_limit(0, power_ok)
        index = int(np.max(np.nonzero(allowed)[0]))
        if index == len(self.frequencies_hz) - 1:
            return index, LimitingFactor.FREQUENCY_GRID
        return index, self._blocking_limit(index + 1, power_ok)

    def _blocking_limit(self, index: int, power_ok: np.ndarray) -> LimitingFactor:
        if not self.vmax_ok[index]:
            return LimitingFactor.VMAX
        if not power_ok[index]:
            return LimitingFactor.TDP
        if not self.iccmax_ok[index]:
            return LimitingFactor.ICCMAX
        return LimitingFactor.NONE

    def operating_point(
        self,
        index: int,
        temperature_c: float,
        limiting: LimitingFactor,
    ) -> OperatingPoint:
        """Materialise one bin as an :class:`OperatingPoint`."""
        active = float(self.active_cores_power_w(temperature_c)[index])
        idle = float(self.idle_cores_power_w(temperature_c)[index])
        return OperatingPoint(
            frequency_hz=float(self.frequencies_hz[index]),
            voltage_v=float(self.vr_voltages_v[index]),
            package_power_w=active
            + idle
            + self.uncore_power_w
            + self.graphics_idle_power_w,
            cores_power_w=active,
            idle_cores_power_w=idle,
            uncore_power_w=self.uncore_power_w,
            limiting_factor=limiting,
            junction_temperature_c=temperature_c,
        )


@dataclass(frozen=True)
class StackedCandidateTables:
    """Several :class:`CandidateTable` rows stacked for lockstep resolution.

    The batched dynamics engine steps a whole sweep grid at once, so every
    time step has to resolve a *vector* of runs, each against its own
    candidate table (different specs have different V/F curves, core counts
    and TDPs).  Stacking pads every table to a common bin count and leakage
    group count — padded bins are marked infeasible so a selection can never
    land on them, and padded leakage groups carry zero reference power so
    they contribute exactly ``0.0`` W — which turns per-step resolution of
    N runs into a handful of vectorized gathers.

    The arithmetic deliberately mirrors :class:`CandidateTable` operation by
    operation (same accumulation order, same tolerances), so a batched run
    reproduces the per-run path bin-for-bin.
    """

    #: [tables, bins] — padded bins hold 0 Hz and are never selectable.
    frequencies_hz: np.ndarray
    active_dynamic_w: np.ndarray
    uncore_power_w: np.ndarray  # [tables]
    graphics_idle_power_w: np.ndarray  # [tables]
    #: [tables, groups] / [tables, groups, bins] active-leakage laws; padded
    #: groups have kt == 0, T_ref == 0 and zero reference power.
    active_kt: np.ndarray
    active_reference_c: np.ndarray
    active_reference_w: np.ndarray
    idle_kt: np.ndarray
    idle_reference_c: np.ndarray
    idle_reference_w: np.ndarray
    vmax_ok: np.ndarray  # [tables, bins]; padded bins False
    iccmax_ok: np.ndarray  # [tables, bins]; padded bins False
    bin_counts: np.ndarray  # [tables] true (unpadded) bin count

    @classmethod
    def from_tables(cls, tables: Sequence[CandidateTable]) -> "StackedCandidateTables":
        """Stack *tables*, padding bins and leakage groups to common shapes."""
        if not tables:
            raise ConfigurationError("cannot stack an empty table sequence")
        count = len(tables)
        bins = max(len(table.frequencies_hz) for table in tables)
        active_groups = max(len(table.active_leakage_groups) for table in tables)
        idle_groups = max(len(table.idle_leakage_groups) for table in tables)

        def padded(rows: Sequence[np.ndarray], fill: float) -> np.ndarray:
            out = np.full((count, bins), fill, dtype=float)
            for i, row in enumerate(rows):
                out[i, : len(row)] = row
            return out

        def padded_groups(
            laws: Sequence[Tuple[LeakageGroup, ...]], capacity: int
        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            kt = np.zeros((count, capacity), dtype=float)
            reference_c = np.zeros((count, capacity), dtype=float)
            reference_w = np.zeros((count, capacity, bins), dtype=float)
            for i, groups in enumerate(laws):
                for g, (group_kt, group_ref_c, _kv, group_ref_w) in enumerate(
                    groups
                ):
                    kt[i, g] = group_kt
                    reference_c[i, g] = group_ref_c
                    reference_w[i, g, : len(group_ref_w)] = group_ref_w
            return kt, reference_c, reference_w

        def padded_mask(rows: Sequence[np.ndarray]) -> np.ndarray:
            out = np.zeros((count, bins), dtype=bool)
            for i, row in enumerate(rows):
                out[i, : len(row)] = row
            return out

        active_kt, active_ref_c, active_ref_w = padded_groups(
            [table.active_leakage_groups for table in tables], max(1, active_groups)
        )
        idle_kt, idle_ref_c, idle_ref_w = padded_groups(
            [table.idle_leakage_groups for table in tables], max(1, idle_groups)
        )
        return cls(
            frequencies_hz=padded([t.frequencies_hz for t in tables], 0.0),
            active_dynamic_w=padded([t.active_dynamic_w for t in tables], 0.0),
            uncore_power_w=np.array([t.uncore_power_w for t in tables], dtype=float),
            graphics_idle_power_w=np.array(
                [t.graphics_idle_power_w for t in tables], dtype=float
            ),
            active_kt=active_kt,
            active_reference_c=active_ref_c,
            active_reference_w=active_ref_w,
            idle_kt=idle_kt,
            idle_reference_c=idle_ref_c,
            idle_reference_w=idle_ref_w,
            vmax_ok=padded_mask([t.vmax_ok for t in tables]),
            iccmax_ok=padded_mask([t.iccmax_ok for t in tables]),
            bin_counts=np.array([len(t.frequencies_hz) for t in tables]),
        )

    @classmethod
    def from_population(
        cls,
        table: CandidateTable,
        *,
        leakage_scale: np.ndarray,
        kt_delta_per_c: np.ndarray,
        vr_offset_v: np.ndarray,
        power_offset_v: np.ndarray,
    ) -> "StackedCandidateTables":
        """One nominal table expanded to a population: one row per die.

        This is the fast-path injection point: the per-die knob arrays are
        applied as vectorized transforms of the nominal table's bin arrays
        — the same element-wise expressions :meth:`CandidateTable.varied`
        evaluates for one die — with no per-die Python objects.  Rows need
        no padding (every die shares the nominal bin count and leakage
        laws), so die ``i`` is exactly row ``i``.
        """
        count = len(np.asarray(leakage_scale))
        bins = len(table.frequencies_hz)
        scale = np.asarray(leakage_scale, dtype=float)[:, None]
        kt_delta = np.asarray(kt_delta_per_c, dtype=float)
        vr_offset = np.asarray(vr_offset_v, dtype=float)[:, None]
        power_offset = np.asarray(power_offset_v, dtype=float)[:, None]

        power_voltages = table.power_voltages_v + power_offset
        voltage_ratio = power_voltages / table.power_voltages_v
        vr_voltages = table.vr_voltages_v + vr_offset

        def stacked_groups(
            nominal: Tuple[LeakageGroup, ...],
        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            groups = max(1, len(nominal))
            kt = np.zeros((count, groups), dtype=float)
            reference_c = np.zeros((count, groups), dtype=float)
            reference_w = np.zeros((count, groups, bins), dtype=float)
            for g, (group_kt, group_ref_c, kv, group_ref_w) in enumerate(nominal):
                kt[:, g] = group_kt + kt_delta
                reference_c[:, g] = group_ref_c
                reference_w[:, g, :] = _varied_reference_w(
                    group_ref_w, voltage_ratio, kv, power_offset, scale
                )
            return kt, reference_c, reference_w

        active_kt, active_ref_c, active_ref_w = stacked_groups(
            table.active_leakage_groups
        )
        idle_kt, idle_ref_c, idle_ref_w = stacked_groups(table.idle_leakage_groups)
        return cls(
            frequencies_hz=np.broadcast_to(table.frequencies_hz, (count, bins)),
            active_dynamic_w=table.active_dynamic_w
            * (voltage_ratio * voltage_ratio),
            uncore_power_w=np.full(count, table.uncore_power_w),
            graphics_idle_power_w=np.full(count, table.graphics_idle_power_w),
            active_kt=active_kt,
            active_reference_c=active_ref_c,
            active_reference_w=active_ref_w,
            idle_kt=idle_kt,
            idle_reference_c=idle_ref_c,
            idle_reference_w=idle_ref_w,
            vmax_ok=vr_voltages <= table.vmax_v + 1e-9,
            iccmax_ok=np.broadcast_to(table.iccmax_ok, (count, bins)),
            bin_counts=np.full(count, bins),
        )

    def __len__(self) -> int:
        return len(self.bin_counts)

    def population_package_power_w(self, temperature_c: np.ndarray) -> np.ndarray:
        """Per-bin package power of every row at row-wise temperatures.

        *temperature_c* is ``(rows, bins)`` — each row's bins may sit at
        their own temperatures, which is what the sustained fixed-point
        resolver iterates.  Accumulation mirrors
        :meth:`CandidateTable.package_power_w` term for term.
        """
        t = temperature_c

        def groups_power(
            kt: np.ndarray, reference_c: np.ndarray, reference_w: np.ndarray
        ) -> np.ndarray:
            total = 0.0
            for g in range(reference_w.shape[1]):
                total = total + reference_w[:, g] * np.exp(
                    kt[:, g, None] * (t - reference_c[:, g, None])
                )
            return total

        active = self.active_dynamic_w + groups_power(
            self.active_kt, self.active_reference_c, self.active_reference_w
        )
        idle = np.zeros_like(self.frequencies_hz) + groups_power(
            self.idle_kt, self.idle_reference_c, self.idle_reference_w
        )
        return (
            active + idle + self.uncore_power_w[:, None]
            + self.graphics_idle_power_w[:, None]
        )

    # -- vectorized per-run power ------------------------------------------------------

    def _groups_power_w(
        self,
        kt: np.ndarray,
        reference_c: np.ndarray,
        reference_w: np.ndarray,
        rows: np.ndarray,
        temperatures_c: np.ndarray,
    ) -> np.ndarray:
        # Same accumulation order as CandidateTable._groups_power_w: groups
        # are summed first-to-last, so the result is bit-identical; padded
        # groups add an exact 0.0.
        total = np.zeros((len(rows), reference_w.shape[2]))
        scale = np.exp(kt[rows] * (temperatures_c[:, None] - reference_c[rows]))
        for g in range(reference_w.shape[1]):
            total = total + reference_w[rows, g] * scale[:, g, None]
        return total

    def package_power_w(
        self, rows: np.ndarray, temperatures_c: np.ndarray
    ) -> np.ndarray:
        """Per-bin package power of run *i* resolved against table ``rows[i]``.

        Reproduces :meth:`CandidateTable.package_power_w` term by term
        (active cores + idle cores + uncore + graphics, in that order) for a
        vector of runs at per-run junction temperatures.
        """
        active = self.active_dynamic_w[rows] + self._groups_power_w(
            self.active_kt, self.active_reference_c, self.active_reference_w,
            rows, temperatures_c,
        )
        idle = np.zeros_like(self.frequencies_hz[rows]) + self._groups_power_w(
            self.idle_kt, self.idle_reference_c, self.idle_reference_w,
            rows, temperatures_c,
        )
        return (
            active + idle + self.uncore_power_w[rows, None]
            + self.graphics_idle_power_w[rows, None]
        )

    # -- vectorized selection ----------------------------------------------------------

    def select(
        self,
        rows: np.ndarray,
        power_limits_w: np.ndarray,
        temperatures_c: np.ndarray,
        package_power_w: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`CandidateTable.select` over a batch of runs.

        Returns ``(bin indices, limiting-factor codes)`` where codes index
        :data:`LIMITING_FACTOR_ORDER`.  Semantics match the scalar path
        exactly: the highest feasible bin wins, the reported limit is
        whatever stops the next bin up (``FREQUENCY_GRID`` at the top of the
        grid; an infeasible grid reports bin 0 with the first limit it
        violates, checked Vmax, then power, then Iccmax).
        """
        power = (
            self.package_power_w(rows, temperatures_c)
            if package_power_w is None
            else package_power_w
        )
        power_ok = power <= (power_limits_w + 1e-9)[:, None]
        allowed = self.vmax_ok[rows] & self.iccmax_ok[rows] & power_ok
        any_allowed = allowed.any(axis=1)
        top = allowed.shape[1] - 1 - np.argmax(allowed[:, ::-1], axis=1)
        index = np.where(any_allowed, top, 0)
        last_bin = self.bin_counts[rows] - 1
        # The bin whose violated limit is reported: one above the selection
        # when a higher bin exists, bin 0 when nothing is feasible.
        probe = np.where(any_allowed, np.minimum(index + 1, last_bin), 0)
        run_axis = np.arange(len(rows))
        limiting = np.select(
            [
                ~self.vmax_ok[rows, probe],
                ~power_ok[run_axis, probe],
                ~self.iccmax_ok[rows, probe],
            ],
            [
                LIMITING_FACTOR_CODES[LimitingFactor.VMAX],
                LIMITING_FACTOR_CODES[LimitingFactor.TDP],
                LIMITING_FACTOR_CODES[LimitingFactor.ICCMAX],
            ],
            default=LIMITING_FACTOR_CODES[LimitingFactor.NONE],
        )
        limiting = np.where(
            any_allowed & (index == last_bin),
            LIMITING_FACTOR_CODES[LimitingFactor.FREQUENCY_GRID],
            limiting,
        )
        return index, limiting


def resolve_sustained_bins(
    package_power_at: Callable[[np.ndarray], np.ndarray],
    vmax_ok: np.ndarray,
    iccmax_ok: np.ndarray,
    tdp_w: float,
    resistance_c_per_w: Union[float, np.ndarray],
    ambient_c: float,
    tjmax_c: float,
    start_temperature_c: float = 60.0,
    iterations: int = 3,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sustained (TDP-table) bins of a ``(rows, bins)`` candidate grid.

    Replicates :meth:`DvfsPolicy.resolve`'s semantics on table arrays:
    every bin runs the power/temperature fixed point (``iterations`` steps
    from ``start_temperature_c``, the junction clamped at Tjmax), the
    highest bin satisfying Vmax, TDP and Iccmax at its own fixed point
    wins, and the reported limit is whatever stops the next bin up
    (``FREQUENCY_GRID`` at the top; an infeasible grid reports bin 0 with
    the first limit it violates, checked Vmax, then power, then Iccmax).

    Shared by the per-die reference path (one row) and the population fast
    path (one row per die): both feed the same element-wise arithmetic, so
    the sustained bins agree bit for bit.  Returns ``(bin index, limiting
    code, fixed-point power, fixed-point temperature)``; the latter two are
    per-bin arrays.
    """
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    temperature = np.full(vmax_ok.shape, start_temperature_c, dtype=float)
    for _ in range(iterations):
        power = package_power_at(temperature)
        temperature = np.minimum(tjmax_c, ambient_c + resistance_c_per_w * power)
    power_ok = power <= tdp_w + 1e-9
    allowed = vmax_ok & iccmax_ok & power_ok
    any_allowed = allowed.any(axis=-1)
    bins = allowed.shape[-1]
    top = bins - 1 - np.argmax(allowed[..., ::-1], axis=-1)
    index = np.where(any_allowed, top, 0)
    probe = np.where(any_allowed, np.minimum(index + 1, bins - 1), 0)

    def at_probe(mask: np.ndarray) -> np.ndarray:
        return np.take_along_axis(mask, probe[..., None], axis=-1)[..., 0]

    limiting = np.select(
        [~at_probe(vmax_ok), ~at_probe(power_ok), ~at_probe(iccmax_ok)],
        [
            LIMITING_FACTOR_CODES[LimitingFactor.VMAX],
            LIMITING_FACTOR_CODES[LimitingFactor.TDP],
            LIMITING_FACTOR_CODES[LimitingFactor.ICCMAX],
        ],
        default=LIMITING_FACTOR_CODES[LimitingFactor.NONE],
    )
    limiting = np.where(
        any_allowed & (index == bins - 1),
        LIMITING_FACTOR_CODES[LimitingFactor.FREQUENCY_GRID],
        limiting,
    )
    return index, limiting, power, temperature


class DvfsPolicy:
    """Resolves CPU operating points for a processor and V/F curve.

    Parameters
    ----------
    processor:
        The hardware configuration (die, package, TDP).
    vf_curve:
        Guardbanded V/F curve of the part's power-delivery configuration.
    bypass_mode:
        True when the firmware runs in bypass mode (idle cores cannot be
        power-gated and keep leaking at the shared rail voltage).
    graphics_idle_power_w:
        Power attributed to the (idle) graphics engine during CPU workloads.
    thermal_iterations:
        Fixed-point iterations of the power/temperature loop.
    die_variation:
        Optional :class:`~repro.variation.sampler.DieVariation` of the
        specific die this policy drives.  When set, candidate tables are
        built nominally and re-referenced through
        :meth:`CandidateTable.varied`, and :meth:`resolve` runs the
        table-based sustained fixed point — the exact arithmetic the
        population fast path vectorizes, so one varied die resolves
        identically whether it runs alone or inside a population.
    """

    def __init__(
        self,
        processor: Processor,
        vf_curve: VfCurve,
        bypass_mode: bool,
        graphics_idle_power_w: float = 0.05,
        thermal_iterations: int = 3,
        die_variation: Optional["DieVariation"] = None,
    ) -> None:
        if thermal_iterations < 1:
            raise ConfigurationError("thermal_iterations must be >= 1")
        self._processor = processor
        self._vf_curve = vf_curve
        self._bypass_mode = bypass_mode
        self._graphics_idle_power_w = graphics_idle_power_w
        self._thermal_iterations = thermal_iterations
        self._thermal_model = processor.thermal_model()
        self._die_variation = die_variation
        self._candidate_tables: Dict[CpuDemand, CandidateTable] = {}

    # -- public API -----------------------------------------------------------------------

    @property
    def vf_curve(self) -> VfCurve:
        """The V/F curve this policy resolves against."""
        return self._vf_curve

    @property
    def die_variation(self) -> Optional["DieVariation"]:
        """The die variation this policy is re-referenced to (if any)."""
        return self._die_variation

    @property
    def thermal_iterations(self) -> int:
        """Fixed-point iterations of the power/temperature loop."""
        return self._thermal_iterations

    def resolve(self, demand: CpuDemand) -> OperatingPoint:
        """Highest-performance operating point satisfying every limit."""
        if demand.active_cores > self._processor.core_count:
            raise ConfigurationError(
                f"demand asks for {demand.active_cores} cores but the processor "
                f"has {self._processor.core_count}"
            )
        if self._die_variation is not None:
            return self._resolve_varied(demand)
        grid = self._vf_curve.frequency_grid
        chosen: Optional[OperatingPoint] = None
        limiting = LimitingFactor.FREQUENCY_GRID
        for frequency in grid.descending():
            verdict, point = self._evaluate(frequency, demand)
            if verdict is LimitingFactor.NONE:
                chosen = point
                break
            limiting = verdict
        if chosen is None:
            # Even the lowest bin violates a limit; report the lowest bin with
            # the limit that failed (real firmware would throttle below Pn,
            # but the evaluation never reaches that regime).
            _, point = self._evaluate(grid.min_hz, demand)
            return OperatingPoint(
                frequency_hz=point.frequency_hz,
                voltage_v=point.voltage_v,
                package_power_w=point.package_power_w,
                cores_power_w=point.cores_power_w,
                idle_cores_power_w=point.idle_cores_power_w,
                uncore_power_w=point.uncore_power_w,
                limiting_factor=limiting,
                junction_temperature_c=point.junction_temperature_c,
            )
        # Identify what stops the next bin up (more informative than NONE).
        if chosen.frequency_hz >= grid.max_hz:
            limiting = LimitingFactor.FREQUENCY_GRID
        else:
            next_frequency = grid.step_up(chosen.frequency_hz)
            verdict, _ = self._evaluate(next_frequency, demand)
            limiting = verdict if verdict is not LimitingFactor.NONE else LimitingFactor.NONE
        return OperatingPoint(
            frequency_hz=chosen.frequency_hz,
            voltage_v=chosen.voltage_v,
            package_power_w=chosen.package_power_w,
            cores_power_w=chosen.cores_power_w,
            idle_cores_power_w=chosen.idle_cores_power_w,
            uncore_power_w=chosen.uncore_power_w,
            limiting_factor=limiting,
            junction_temperature_c=chosen.junction_temperature_c,
        )

    def package_power_w(self, frequency_hz: float, demand: CpuDemand) -> float:
        """Sustained package power at a specific frequency for *demand*."""
        _, point = self._evaluate(frequency_hz, demand, enforce_limits=False)
        return point.package_power_w

    # -- instantaneous (closed-loop) resolution --------------------------------------------

    def candidate_table(self, demand: CpuDemand) -> CandidateTable:
        """Temperature-factored candidate table for *demand* (cached).

        One table per demand supports the dynamics engine: voltages, dynamic
        power and the Vmax/Iccmax verdicts are fixed per bin, so a time step
        only has to apply the leakage temperature terms and pick a bin.
        """
        if demand.active_cores > self._processor.core_count:
            raise ConfigurationError(
                f"demand asks for {demand.active_cores} cores but the processor "
                f"has {self._processor.core_count}"
            )
        table = self._candidate_tables.get(demand)
        if table is None:
            table = self._build_candidate_table(demand)
            if self._die_variation is not None:
                variation = self._die_variation
                vr_offset, power_offset = die_voltage_offsets(
                    variation.vf_offset_v,
                    variation.powergate_resistance_scale,
                    self._processor.die.cores[0].power_gate.on_resistance_ohm,
                    self._bypass_mode,
                )
                table = table.varied(
                    leakage_scale=variation.leakage_scale,
                    kt_delta_per_c=variation.leakage_kt_delta_per_c,
                    vr_offset_v=vr_offset,
                    power_offset_v=power_offset,
                )
            self._candidate_tables[demand] = table
        return table

    def resolve_at(
        self,
        demand: CpuDemand,
        temperature_c: float,
        power_limit_w: Optional[float] = None,
    ) -> OperatingPoint:
        """Best operating point at a *pinned* temperature and power limit.

        Unlike :meth:`resolve`, which iterates power and temperature to their
        sustained fixed point, this treats the junction temperature as state
        (the dynamics engine owns it) and takes the instantaneous power limit
        from the turbo budget rather than the static TDP.
        """
        limit = self._processor.tdp_w if power_limit_w is None else power_limit_w
        table = self.candidate_table(demand)
        index, limiting = table.select(limit, temperature_c)
        return table.operating_point(index, temperature_c, limiting)

    def _resolve_varied(self, demand: CpuDemand) -> OperatingPoint:
        """Sustained operating point of a varied die, from its table.

        Runs the shared table-based fixed point
        (:func:`resolve_sustained_bins`) on the die's varied candidate
        table — one-row usage of the arithmetic the population fast path
        vectorizes.
        """
        table = self.candidate_table(demand)
        limits = self._thermal_model.limits
        index, code, power, temperature = resolve_sustained_bins(
            lambda t: table.package_power_w(t[0])[None, :],
            table.vmax_ok[None, :],
            table.iccmax_ok[None, :],
            self._processor.tdp_w,
            self._thermal_model.thermal_resistance_c_per_w,
            limits.ambient_c,
            limits.tjmax_c,
            iterations=self._thermal_iterations,
        )
        bin_index = int(index[0])
        return table.operating_point(
            bin_index,
            float(temperature[0, bin_index]),
            LIMITING_FACTOR_ORDER[int(code[0])],
        )

    def _build_candidate_table(self, demand: CpuDemand) -> CandidateTable:
        die = self._processor.die
        frequencies = np.array(self._vf_curve.frequency_grid.points())
        vr_voltages = np.array(
            [
                self._vf_curve.required_voltage_v(f, demand.active_cores)
                for f in frequencies
            ]
        )
        power_voltages = np.array(
            [
                self._vf_curve.power_voltage_v(f, demand.active_cores)
                for f in frequencies
            ]
        )
        active_cores = die.cores[: demand.active_cores]
        idle_cores = die.cores[demand.active_cores :]
        active_dynamic = np.array(
            [
                sum(
                    core.dynamic.power_w(voltage, frequency, demand.activity)
                    for core in active_cores
                )
                for frequency, voltage in zip(frequencies, power_voltages)
            ]
        )
        gated = not self._bypass_mode
        active_groups: Dict[Tuple[float, float, float], np.ndarray] = {}
        idle_groups: Dict[Tuple[float, float, float], np.ndarray] = {}
        for core in active_cores:
            law = (
                core.leakage.temperature_sensitivity_per_c,
                core.leakage.reference_temperature_c,
                core.leakage.voltage_sensitivity_per_v,
            )
            reference = np.array(
                [core.leakage.power_w(voltage, law[1]) for voltage in power_voltages]
            )
            active_groups[law] = active_groups.get(law, 0.0) + reference
        for core in idle_cores:
            law = (
                core.leakage.temperature_sensitivity_per_c,
                core.leakage.reference_temperature_c,
                core.leakage.voltage_sensitivity_per_v,
            )
            reference = np.array(
                [
                    core.idle_power_w(voltage, gated=gated, temperature_c=law[1])
                    for voltage in power_voltages
                ]
            )
            idle_groups[law] = idle_groups.get(law, 0.0) + reference
        virus_current = np.array(
            [
                self._virus_current_a(frequency, voltage, demand)
                for frequency, voltage in zip(frequencies, vr_voltages)
            ]
        )
        return CandidateTable(
            frequencies_hz=frequencies,
            vr_voltages_v=vr_voltages,
            power_voltages_v=power_voltages,
            active_dynamic_w=active_dynamic,
            active_leakage_groups=tuple(
                (kt, ref_c, kv, power)
                for (kt, ref_c, kv), power in active_groups.items()
            ),
            idle_leakage_groups=tuple(
                (kt, ref_c, kv, power)
                for (kt, ref_c, kv), power in idle_groups.items()
            ),
            uncore_power_w=die.uncore.package_c0_power_w(demand.memory_intensity),
            graphics_idle_power_w=self._graphics_idle_power_w,
            vmax_ok=vr_voltages <= self._vf_curve.vmax_v + 1e-9,
            iccmax_ok=virus_current <= die.iccmax_a,
            vmax_v=self._vf_curve.vmax_v,
        )

    # -- internals -------------------------------------------------------------------------

    def _evaluate(
        self, frequency_hz: float, demand: CpuDemand, enforce_limits: bool = True
    ) -> tuple[LimitingFactor, OperatingPoint]:
        # The VR is programmed to the fully-guardbanded voltage (checked
        # against Vmax below); the power estimate uses the effective silicon
        # voltage for a typical workload.
        vr_voltage = self._vf_curve.required_voltage_v(frequency_hz, demand.active_cores)
        voltage = self._vf_curve.power_voltage_v(frequency_hz, demand.active_cores)
        temperature = 60.0
        cores_power = idle_power = uncore_power = package_power = 0.0
        for _ in range(self._thermal_iterations):
            cores_power = self._active_cores_power_w(
                frequency_hz, voltage, demand, temperature
            )
            idle_power = self._idle_cores_power_w(voltage, demand, temperature)
            uncore_power = self._processor.die.uncore.package_c0_power_w(
                demand.memory_intensity
            )
            package_power = (
                cores_power + idle_power + uncore_power + self._graphics_idle_power_w
            )
            temperature = min(
                self._processor.tjmax_c,
                self._thermal_model.junction_temperature_c(package_power),
            )
        point = OperatingPoint(
            frequency_hz=frequency_hz,
            voltage_v=vr_voltage,
            package_power_w=package_power,
            cores_power_w=cores_power,
            idle_cores_power_w=idle_power,
            uncore_power_w=uncore_power,
            limiting_factor=LimitingFactor.NONE,
            junction_temperature_c=temperature,
        )
        if not enforce_limits:
            return LimitingFactor.NONE, point
        if vr_voltage > self._vf_curve.vmax_v + 1e-9:
            return LimitingFactor.VMAX, point
        if package_power > self._processor.tdp_w + 1e-9:
            return LimitingFactor.TDP, point
        if self._virus_current_a(frequency_hz, vr_voltage, demand) > self._processor.die.iccmax_a:
            return LimitingFactor.ICCMAX, point
        return LimitingFactor.NONE, point

    def _active_cores_power_w(
        self, frequency_hz: float, voltage_v: float, demand: CpuDemand, temperature_c: float
    ) -> float:
        total = 0.0
        for core in self._processor.die.cores[: demand.active_cores]:
            total += core.active_power_w(
                frequency_hz, voltage_v, demand.activity, temperature_c
            )
        return total

    def _idle_cores_power_w(
        self, voltage_v: float, demand: CpuDemand, temperature_c: float
    ) -> float:
        idle_cores = self._processor.die.cores[demand.active_cores :]
        gated = not self._bypass_mode
        return sum(
            core.idle_power_w(voltage_v, gated=gated, temperature_c=temperature_c)
            for core in idle_cores
        )

    def _virus_current_a(
        self, frequency_hz: float, voltage_v: float, demand: CpuDemand
    ) -> float:
        per_core = self._processor.die.cores[0].virus_current_a(frequency_hz, voltage_v)
        uncore_current = 6.0  # uncore + graphics floor on the core rail's EDC budget
        return per_core * demand.active_cores + uncore_current
