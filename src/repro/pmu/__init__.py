"""Power-management-unit (Pcode) firmware substrate.

Models the firmware behaviours the paper extends for DarkGates (Section 4.2):

* :mod:`repro.pmu.vf_curve` — guardbanded voltage/frequency curves and the
  Vmax-limited maximum frequency (Fmax).
* :mod:`repro.pmu.fuses` — the silicon fuses that select bypass vs. normal
  mode and the deepest package C-state.
* :mod:`repro.pmu.dvfs` — P-state resolution: the highest 100 MHz bin that
  satisfies the TDP, Vmax and Iccmax limits for a given workload demand.
* :mod:`repro.pmu.turbo` — multi-core turbo tables derived from the V/F
  curves.
* :mod:`repro.pmu.pbm` — power-budget management between CPU cores and the
  graphics engine.
* :mod:`repro.pmu.cstates` — package C-states (Table 1) and their power.
* :mod:`repro.pmu.pcode` — the firmware facade tying it all together.
"""

from repro.pmu.cstates import PACKAGE_CSTATE_TABLE, PackageCState, PackageCStateModel
from repro.pmu.dvfs import (
    CandidateTable,
    CpuDemand,
    DvfsPolicy,
    LimitingFactor,
    OperatingPoint,
)
from repro.pmu.fuses import FuseSet, PowerDeliveryMode
from repro.pmu.pbm import GraphicsOperatingPoint, PowerBudgetManager
from repro.pmu.pcode import Pcode
from repro.pmu.turbo import TurboBudgetManager, TurboTable
from repro.pmu.vf_curve import VfCurve

__all__ = [
    "PackageCState",
    "PackageCStateModel",
    "PACKAGE_CSTATE_TABLE",
    "DvfsPolicy",
    "OperatingPoint",
    "LimitingFactor",
    "CpuDemand",
    "FuseSet",
    "PowerDeliveryMode",
    "GraphicsOperatingPoint",
    "PowerBudgetManager",
    "Pcode",
    "CandidateTable",
    "TurboBudgetManager",
    "TurboTable",
    "VfCurve",
]
