"""Power-budget management (PBM) between CPU cores and the graphics engine.

During a graphics workload the graphics engine gets most of the compute
domain's power budget while one CPU core runs the graphics driver at its
most efficient frequency (paper Section 7.2).  DarkGates changes the
arithmetic in one way: the idle CPU cores can no longer be power-gated, so
their leakage is subtracted from the budget before the graphics engine gets
the remainder.  On a thermally-limited (35 W) system that is enough to cost
the graphics engine a frequency bin or two; on higher-TDP systems the budget
is not the binding constraint and nothing changes — which is exactly the
shape of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range
from repro.pmu.vf_curve import VfCurve
from repro.soc.processor import Processor


@dataclass(frozen=True)
class GraphicsDemand:
    """What a graphics workload asks of the SoC."""

    graphics_activity: float = 0.9
    driver_cores: int = 1
    driver_activity: float = 0.45
    memory_intensity: float = 0.5

    def __post_init__(self) -> None:
        ensure_in_range(self.graphics_activity, 0.0, 1.0, "graphics_activity")
        ensure_in_range(self.driver_activity, 0.0, 1.0, "driver_activity")
        ensure_in_range(self.memory_intensity, 0.0, 1.0, "memory_intensity")
        if self.driver_cores < 1:
            raise ConfigurationError("driver_cores must be >= 1")


@dataclass(frozen=True)
class GraphicsOperatingPoint:
    """Resolved graphics operating point and the budget split behind it."""

    graphics_frequency_hz: float
    graphics_power_w: float
    graphics_budget_w: float
    cpu_power_w: float
    idle_cores_power_w: float
    uncore_power_w: float
    package_power_w: float

    @property
    def graphics_frequency_mhz(self) -> float:
        """Graphics frequency in MHz."""
        return self.graphics_frequency_hz / 1e6


class PowerBudgetManager:
    """Splits the TDP budget between CPU cores and the graphics engine.

    Parameters
    ----------
    processor:
        Hardware configuration.
    vf_curve:
        Guardbanded core V/F curve (used to cost the driver core and the
        idle cores' rail voltage).
    bypass_mode:
        True when idle cores cannot be power-gated (DarkGates bypass mode).
    """

    def __init__(
        self, processor: Processor, vf_curve: VfCurve, bypass_mode: bool
    ) -> None:
        self._processor = processor
        self._vf_curve = vf_curve
        self._bypass_mode = bypass_mode
        self._thermal_model = processor.thermal_model()

    def resolve(self, demand: GraphicsDemand) -> GraphicsOperatingPoint:
        """Resolve the graphics frequency under the shared budget.

        The power/temperature coupling is resolved with a short fixed-point
        iteration: a thermally-limited (e.g. 35 W) system running a graphics
        workload sits near Tjmax, which inflates the leakage of the un-gated
        idle cores and is exactly what shrinks the graphics budget in bypass
        mode (Fig. 9).
        """
        die = self._processor.die
        if demand.driver_cores > die.core_count:
            raise ConfigurationError("driver_cores exceeds the processor's core count")

        # The driver core runs at the most efficient frequency Pn (grid
        # minimum) — graphics workloads are not CPU-frequency bound.
        driver_frequency = self._vf_curve.frequency_grid.min_hz
        rail_voltage = self._vf_curve.power_voltage_v(
            driver_frequency, demand.driver_cores
        )
        thermal = self._thermal_model
        temperature = 75.0
        cpu_power = idle_power = uncore_power = 0.0
        graphics_frequency = die.graphics.frequency_grid.min_hz
        graphics_power = 0.0
        budget = 0.0
        for _ in range(3):
            cpu_power = sum(
                core.active_power_w(
                    driver_frequency, rail_voltage, demand.driver_activity, temperature
                )
                for core in die.cores[: demand.driver_cores]
            )
            idle_cores = die.cores[demand.driver_cores :]
            idle_power = sum(
                core.idle_power_w(
                    rail_voltage, gated=not self._bypass_mode, temperature_c=temperature
                )
                for core in idle_cores
            )
            uncore_power = die.uncore.package_c0_power_w(demand.memory_intensity)
            budget = max(
                0.0, self._processor.tdp_w - cpu_power - idle_power - uncore_power
            )
            graphics_frequency = die.graphics.max_frequency_within_power(
                budget, activity=demand.graphics_activity, temperature_c=temperature
            )
            graphics_power = die.graphics.active_power_w(
                graphics_frequency, demand.graphics_activity, temperature_c=temperature
            )
            package_power = cpu_power + idle_power + uncore_power + graphics_power
            temperature = min(
                self._processor.tjmax_c,
                thermal.junction_temperature_c(package_power),
            )
        package_power = cpu_power + idle_power + uncore_power + graphics_power
        return GraphicsOperatingPoint(
            graphics_frequency_hz=graphics_frequency,
            graphics_power_w=graphics_power,
            graphics_budget_w=budget,
            cpu_power_w=cpu_power,
            idle_cores_power_w=idle_power,
            uncore_power_w=uncore_power,
            package_power_w=package_power,
        )
