"""Guardbanded voltage/frequency curves.

The silicon's nominal V/F requirement (:class:`SiliconVfCharacter`) is what
the transistors need; what the VR must actually be programmed to is that
nominal voltage *plus* the voltage guardband of the current power-delivery
configuration and power-virus level.  Because the total may not exceed the
reliability limit Vmax, the guardband directly determines the maximum
attainable frequency Fmax — the central mechanism of the paper.

DarkGates improves the V/F curve (Section 4.1/4.2) by halving the
PDN-dependent part of the guardband, which both raises Fmax and lowers the
voltage needed at any given frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.grid import FrequencyGrid
from repro.pdn.guardband import GuardbandModel
from repro.pdn.loadline import PowerVirusLevel, VirusLevelTable
from repro.soc.die import SiliconVfCharacter


@dataclass(frozen=True)
class VfPoint:
    """One resolved point of a guardbanded V/F curve."""

    frequency_hz: float
    nominal_voltage_v: float
    guardband_v: float

    @property
    def required_voltage_v(self) -> float:
        """Voltage the VR must deliver for this frequency."""
        return self.nominal_voltage_v + self.guardband_v


class VfCurve:
    """A guardbanded V/F curve for one PDN configuration.

    Parameters
    ----------
    silicon:
        Nominal V/F characteristic of the die.
    guardband_model:
        Guardband model of the part's power-delivery configuration (gated or
        bypassed).
    virus_table:
        Power-virus levels used to size the guardband per active-core count.
    frequency_grid:
        Selectable core frequencies.
    vmax_v:
        Maximum operational voltage of the part.
    guardband_power_coupling:
        Fraction of the guardband that shows up as *excess voltage at the
        silicon* for a typical (non-virus) workload, and therefore as extra
        switching/leakage power.  The remainder of the guardband is consumed
        by real voltage drop along the delivery path and dissipated there
        instead.  1.0 would treat the whole guardband as excess voltage
        (overestimating the power cost of guardbands); 0.0 would ignore the
        power benefit of guardband reduction entirely.
    """

    def __init__(
        self,
        silicon: SiliconVfCharacter,
        guardband_model: GuardbandModel,
        virus_table: VirusLevelTable,
        frequency_grid: FrequencyGrid,
        vmax_v: float,
        guardband_power_coupling: float = 0.75,
    ) -> None:
        if vmax_v <= 0:
            raise ConfigurationError("vmax_v must be positive")
        if not 0.0 <= guardband_power_coupling <= 1.0:
            raise ConfigurationError("guardband_power_coupling must be in [0, 1]")
        self._silicon = silicon
        self._guardband_model = guardband_model
        self._virus_table = virus_table
        self._frequency_grid = frequency_grid
        self._vmax_v = vmax_v
        self._guardband_power_coupling = guardband_power_coupling
        self._guardband_cache: dict[str, float] = {}

    # -- basic lookups -----------------------------------------------------------------

    @property
    def vmax_v(self) -> float:
        """Maximum operational voltage used for Fmax resolution."""
        return self._vmax_v

    @property
    def frequency_grid(self) -> FrequencyGrid:
        """Frequency grid this curve is resolved on."""
        return self._frequency_grid

    @property
    def guardband_model(self) -> GuardbandModel:
        """The guardband model backing this curve."""
        return self._guardband_model

    def virus_level_for(self, active_cores: int) -> PowerVirusLevel:
        """Virus level covering *active_cores* active cores."""
        return self._virus_table.level_for_active_cores(active_cores)

    def guardband_v(self, active_cores: int) -> float:
        """Total guardband applied for *active_cores* active cores (cached)."""
        level = self.virus_level_for(active_cores)
        if level.name not in self._guardband_cache:
            self._guardband_cache[level.name] = self._guardband_model.total_guardband_v(level)
        return self._guardband_cache[level.name]

    # -- curve evaluation ---------------------------------------------------------------

    def point(self, frequency_hz: float, active_cores: int) -> VfPoint:
        """Resolve the curve at one frequency for a given active-core count."""
        return VfPoint(
            frequency_hz=frequency_hz,
            nominal_voltage_v=self._silicon.nominal_voltage_v(frequency_hz),
            guardband_v=self.guardband_v(active_cores),
        )

    def required_voltage_v(self, frequency_hz: float, active_cores: int) -> float:
        """Voltage the VR must deliver to run *active_cores* at *frequency_hz*."""
        return self.point(frequency_hz, active_cores).required_voltage_v

    def power_voltage_v(self, frequency_hz: float, active_cores: int) -> float:
        """Effective silicon voltage used for power estimation.

        A typical workload does not pull the full virus current, so the
        silicon sees the nominal voltage plus only part of the guardband
        (``guardband_power_coupling``); the rest of the guardband is consumed
        by genuine IR/droop along the delivery path.
        """
        point = self.point(frequency_hz, active_cores)
        return (
            point.nominal_voltage_v
            + self._guardband_power_coupling * point.guardband_v
        )

    def fmax_hz(
        self,
        active_cores: int,
        vmax_v: Optional[float] = None,
        voltage_offset_v: float = 0.0,
    ) -> float:
        """Maximum attainable frequency for *active_cores* active cores.

        This is the Vmax-limited Fmax of Section 2.4.2: the largest grid
        frequency whose nominal voltage plus guardband stays at or below the
        reliability limit.  The TDP and Iccmax limits are applied separately
        by the DVFS policy.

        *voltage_offset_v* is the process-variation hook: a die whose V/F
        requirement sits ``dv`` above nominal (a slow corner, or extra
        power-gate IR guardband) loses exactly that much Vmax headroom.
        """
        limit = self._vmax_v if vmax_v is None else vmax_v
        guardband = self.guardband_v(active_cores)
        headroom = limit - guardband - voltage_offset_v
        if headroom <= 0:
            return self._frequency_grid.min_hz
        unconstrained = self._silicon.max_frequency_for_voltage(headroom)
        return self._frequency_grid.floor(unconstrained)

    def headroom_v(self, frequency_hz: float, active_cores: int) -> float:
        """Voltage headroom below Vmax at an operating point (can be negative)."""
        return self._vmax_v - self.required_voltage_v(frequency_hz, active_cores)

    def curve_points(self, active_cores: int) -> list[VfPoint]:
        """The full guardbanded curve across the frequency grid."""
        return [self.point(f, active_cores) for f in self._frequency_grid]
