"""Dynamic-capacitance (Cdyn) descriptors for workload activity levels.

The adaptive-guardband scheme of Fig. 2(c) defines power-virus levels in
terms of the maximum dynamic capacitance a system state can draw.  Ordinary
workloads draw a fraction of that maximum.  This module provides a small
table type that maps named activity classes (idle, typical integer code,
AVX-heavy code, power-virus) to Cdyn fractions, so workloads and the PMU
share one vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range


@dataclass(frozen=True)
class ActivityCdyn:
    """A named activity level expressed as a fraction of the virus Cdyn."""

    name: str
    cdyn_fraction: float

    def __post_init__(self) -> None:
        ensure_in_range(self.cdyn_fraction, 0.0, 1.0, "cdyn_fraction")


@dataclass
class CdynTable:
    """A registry of activity levels keyed by name."""

    levels: Dict[str, ActivityCdyn] = field(default_factory=dict)

    def add(self, level: ActivityCdyn) -> None:
        """Register an activity level; duplicate names are rejected."""
        if level.name in self.levels:
            raise ConfigurationError(f"duplicate activity level {level.name!r}")
        self.levels[level.name] = level

    def fraction(self, name: str) -> float:
        """Cdyn fraction of the named activity level."""
        try:
            return self.levels[name].cdyn_fraction
        except KeyError as exc:
            raise ConfigurationError(f"unknown activity level {name!r}") from exc

    def names(self) -> List[str]:
        """Registered activity-level names, in insertion order."""
        return list(self.levels)

    @classmethod
    def client_default(cls) -> "CdynTable":
        """Activity levels representative of client CPU cores.

        ``power_virus`` is by definition 1.0.  Typical SPEC-class code sits
        around 55-75 % of virus Cdyn; memory-bound code lower because the
        core stalls; the TDP-sizing workload ("maximum theoretical load, but
        not a power-virus") around 80 %.
        """
        table = cls()
        for level in (
            ActivityCdyn("idle", 0.02),
            ActivityCdyn("memory_bound", 0.42),
            ActivityCdyn("typical", 0.62),
            ActivityCdyn("compute_bound", 0.74),
            ActivityCdyn("tdp_workload", 0.80),
            ActivityCdyn("avx_heavy", 0.92),
            ActivityCdyn("power_virus", 1.0),
        ):
            table.add(level)
        return table
