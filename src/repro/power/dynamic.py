"""Dynamic (switching) power model.

Dynamic power of CMOS logic is ``P = Cdyn * V^2 * f`` where ``Cdyn`` is the
*effective* dynamic capacitance: the physical switched capacitance scaled by
the activity factor of the running code.  The paper uses Cdyn as the knob
that distinguishes power-virus levels from typical applications (Fig. 2), and
the power-budget-management firmware uses it to predict the power cost of a
frequency/voltage operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class DynamicPowerModel:
    """Dynamic power of one component (a core, the graphics engine, ...).

    Parameters
    ----------
    cdyn_max_f:
        Effective dynamic capacitance, in farads, when running a power-virus
        (activity factor 1.0).  Client CPU cores are in the low nanofarad
        range; integrated graphics engines somewhat higher.
    """

    cdyn_max_f: float

    def __post_init__(self) -> None:
        ensure_positive(self.cdyn_max_f, "cdyn_max_f")

    def power_w(
        self, voltage_v: float, frequency_hz: float, activity: float = 1.0
    ) -> float:
        """Dynamic power at the given operating point.

        Parameters
        ----------
        voltage_v:
            Supply voltage at the load.
        frequency_hz:
            Clock frequency.
        activity:
            Activity factor in [0, 1]; 1.0 corresponds to the power-virus.
        """
        ensure_non_negative(voltage_v, "voltage_v")
        ensure_non_negative(frequency_hz, "frequency_hz")
        ensure_non_negative(activity, "activity")
        return self.cdyn_max_f * activity * voltage_v * voltage_v * frequency_hz

    def current_a(
        self, voltage_v: float, frequency_hz: float, activity: float = 1.0
    ) -> float:
        """Dynamic supply current at the given operating point."""
        if voltage_v <= 0:
            return 0.0
        return self.power_w(voltage_v, frequency_hz, activity) / voltage_v

    def virus_current_a(self, voltage_v: float, frequency_hz: float) -> float:
        """Worst-case (power-virus) current at the given voltage/frequency."""
        return self.current_a(voltage_v, frequency_hz, activity=1.0)

    def scaled(self, factor: float) -> "DynamicPowerModel":
        """A model with Cdyn scaled by *factor* (e.g. a wider core)."""
        ensure_positive(factor, "factor")
        return DynamicPowerModel(cdyn_max_f=self.cdyn_max_f * factor)
