"""Power and thermal modelling substrate.

This package provides the component power models the rest of the library is
built on:

* :mod:`repro.power.dynamic` — switching (dynamic) power from effective
  dynamic capacitance, voltage and frequency.
* :mod:`repro.power.leakage` — leakage power with voltage and temperature
  dependence, plus the effect of power-gating.
* :mod:`repro.power.cdyn` — per-activity dynamic-capacitance descriptors and
  power-virus levels.
* :mod:`repro.power.thermal` — a lumped thermal model linking package power
  to junction temperature, and the TDP/Tjmax design limits.
* :mod:`repro.power.budget` — bookkeeping of a shared power budget between
  SoC domains (CPU cores vs. graphics), used by the PBM firmware model.
"""

from repro.power.budget import DomainPower, EwmaPowerMeter, PowerBudget, TurboLimits
from repro.power.cdyn import ActivityCdyn, CdynTable
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import NOMINAL_SILICON_TEMPERATURE_C, LeakagePowerModel
from repro.power.thermal import ThermalLimits, ThermalModel, TransientThermalModel

__all__ = [
    "DomainPower",
    "EwmaPowerMeter",
    "PowerBudget",
    "TurboLimits",
    "ActivityCdyn",
    "CdynTable",
    "DynamicPowerModel",
    "LeakagePowerModel",
    "NOMINAL_SILICON_TEMPERATURE_C",
    "ThermalLimits",
    "ThermalModel",
    "TransientThermalModel",
]
