"""Shared power-budget bookkeeping.

The SoC's compute domain (CPU cores plus graphics engine) shares one power
budget, distributed at runtime by the power-budget-management (PBM)
algorithm of the PMU (paper Section 2.1).  This module provides the simple
accounting objects PBM operates on; the allocation *policy* lives in
:mod:`repro.pmu.pbm`.

It also provides the *time-dependent* budget objects behind the turbo
behaviour of Section 2.1: the PL1/PL2 power-limit pair and the exponentially
weighted moving-average (EWMA) accounting the firmware uses to decide how
far above TDP a burst may go and for how long.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError, ConstraintViolation
from repro.common.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class DomainPower:
    """Power attributed to one SoC domain."""

    domain: str
    dynamic_w: float
    leakage_w: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.dynamic_w, "dynamic_w")
        ensure_non_negative(self.leakage_w, "leakage_w")

    @property
    def total_w(self) -> float:
        """Total (dynamic plus leakage) power of the domain."""
        return self.dynamic_w + self.leakage_w


@dataclass
class PowerBudget:
    """A fixed total budget being split across named domains.

    Parameters
    ----------
    total_w:
        The budget ceiling (normally the configuration's TDP).
    """

    total_w: float
    allocations: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ensure_positive(self.total_w, "total_w")

    # -- allocation ----------------------------------------------------------------

    def allocate(self, domain: str, power_w: float) -> None:
        """Reserve *power_w* of the budget for *domain*.

        Raises :class:`~repro.common.errors.ConstraintViolation` when the
        reservation would exceed the total budget.
        """
        ensure_non_negative(power_w, "power_w")
        self._reject_reallocation(domain, power_w)
        if self.allocated_w() + power_w > self.total_w + 1e-9:
            raise ConstraintViolation(
                "power budget", self.allocated_w() + power_w, self.total_w
            )
        self.allocations[domain] = power_w

    def allocate_remainder(self, domain: str) -> float:
        """Give *domain* whatever budget is left and return that amount."""
        remainder = self.remaining_w()
        self._reject_reallocation(domain, remainder)
        self.allocations[domain] = remainder
        return remainder

    def _reject_reallocation(self, domain: str, requested_w: float) -> None:
        # Re-allocating a domain would silently drop its earlier reservation
        # from the accounting, so it is treated as a hard budget violation
        # rather than a configuration mistake the caller might swallow.
        if domain in self.allocations:
            raise ConstraintViolation(
                f"power budget domain {domain!r} re-allocation",
                requested_w,
                self.allocations[domain],
            )

    # -- queries -------------------------------------------------------------------

    def allocated_w(self) -> float:
        """Total power already reserved."""
        return sum(self.allocations.values())

    def remaining_w(self) -> float:
        """Budget not yet reserved (never negative)."""
        return max(0.0, self.total_w - self.allocated_w())

    def allocation_for(self, domain: str) -> float:
        """Budget reserved for *domain* (zero if none)."""
        return self.allocations.get(domain, 0.0)

    def domains(self) -> List[str]:
        """Domains that currently hold an allocation."""
        return list(self.allocations)

    def utilisation(self) -> float:
        """Fraction of the total budget that has been reserved."""
        return self.allocated_w() / self.total_w


# -- turbo power limits ----------------------------------------------------------------


@dataclass(frozen=True)
class TurboLimits:
    """The PL1/PL2 power-limit pair of the turbo algorithm (Section 2.1).

    Parameters
    ----------
    pl1_w:
        Sustained power limit; equals the TDP the cooling solution is sized
        for, and is what the EWMA of package power must stay under.
    pl2_w:
        Instantaneous (burst) power limit the package may draw while the
        EWMA has headroom.
    tau_s:
        Time constant of the EWMA accounting window: roughly how long a
        PL2 burst may last before the average reaches PL1.
    """

    pl1_w: float
    pl2_w: float
    tau_s: float = 10.0

    def __post_init__(self) -> None:
        ensure_positive(self.pl1_w, "pl1_w")
        ensure_positive(self.pl2_w, "pl2_w")
        ensure_positive(self.tau_s, "tau_s")
        if self.pl2_w < self.pl1_w:
            raise ConfigurationError("pl2_w must be >= pl1_w")

    @classmethod
    def from_tdp(
        cls, tdp_w: float, pl2_ratio: float = 1.25, tau_s: float = 10.0
    ) -> "TurboLimits":
        """The conventional client configuration: PL1 = TDP, PL2 = ratio x TDP."""
        ensure_positive(tdp_w, "tdp_w")
        if pl2_ratio < 1.0:
            raise ConfigurationError("pl2_ratio must be >= 1.0")
        return cls(pl1_w=tdp_w, pl2_w=tdp_w * pl2_ratio, tau_s=tau_s)


class EwmaPowerMeter:
    """Exponentially weighted moving average of package power.

    This is the running-average-power accounting behind PL1: after each
    simulation step of constant power ``P`` the average relaxes toward ``P``
    with the window time constant.  The inverse question — "how much power
    may the next step draw without pushing the average past a limit?" — is
    what converts the EWMA state into an instantaneous budget.

    Parameters
    ----------
    tau_s:
        Averaging-window time constant.
    initial_average_w:
        Average at t=0.  Zero (the default) models a package that has been
        idle long enough to bank its full turbo budget.
    """

    def __init__(self, tau_s: float, initial_average_w: float = 0.0) -> None:
        ensure_positive(tau_s, "tau_s")
        ensure_non_negative(initial_average_w, "initial_average_w")
        self._tau_s = tau_s
        self._average_w = initial_average_w

    @property
    def average_w(self) -> float:
        """Present value of the moving average."""
        return self._average_w

    @property
    def tau_s(self) -> float:
        """Averaging-window time constant."""
        return self._tau_s

    def decay(self, time_step_s: float) -> float:
        """EWMA retention factor ``exp(-dt / tau)`` for one step."""
        ensure_positive(time_step_s, "time_step_s")
        return math.exp(-time_step_s / self._tau_s)

    def update(self, power_w: float, time_step_s: float) -> float:
        """Account *time_step_s* of constant *power_w* and return the average."""
        ensure_non_negative(power_w, "power_w")
        keep = self.decay(time_step_s)
        self._average_w = self._average_w * keep + power_w * (1.0 - keep)
        return self._average_w

    def max_power_keeping_average_w(
        self, limit_w: float, time_step_s: float
    ) -> float:
        """Largest next-step power that keeps the updated average <= *limit_w*.

        Inverts :meth:`update` for ``average' == limit_w``; never negative
        (an average already above the limit simply forbids any draw until it
        decays back below).
        """
        ensure_non_negative(limit_w, "limit_w")
        keep = self.decay(time_step_s)
        return max(0.0, (limit_w - self._average_w * keep) / (1.0 - keep))


class BatchedEwmaMeter:
    """Vectorized :class:`EwmaPowerMeter` over a batch of lockstep runs.

    Each run keeps its own time step and averaging window, so the per-run
    retention factor is a constant of the run; it is precomputed with the
    same ``math.exp(-dt / tau)`` expression the scalar meter evaluates every
    step, which keeps a batched trajectory bit-identical to stepping each
    run through its own :class:`EwmaPowerMeter`.

    Parameters
    ----------
    tau_s:
        Per-run averaging-window time constants.
    time_step_s:
        Per-run (constant) simulation steps.
    initial_average_w:
        Per-run averages at t=0.
    """

    def __init__(
        self,
        tau_s: Sequence[float],
        time_step_s: Sequence[float],
        initial_average_w: Sequence[float],
    ) -> None:
        taus = np.asarray(tau_s, dtype=float)
        steps = np.asarray(time_step_s, dtype=float)
        averages = np.asarray(initial_average_w, dtype=float)
        if not (taus.shape == steps.shape == averages.shape):
            raise ConfigurationError("batched EWMA inputs must share one shape")
        if (taus <= 0).any() or (steps <= 0).any():
            raise ConfigurationError("tau_s and time_step_s must be positive")
        if (averages < 0).any():
            raise ConfigurationError("initial_average_w must be >= 0")
        self._keep = np.array(
            [math.exp(-dt / tau) for dt, tau in zip(steps, taus)], dtype=float
        )
        self._average_w = averages.copy()

    @property
    def average_w(self) -> np.ndarray:
        """Present per-run moving averages (a live view; do not mutate)."""
        return self._average_w

    def update(
        self, power_w: np.ndarray, active: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Account one step of per-run constant *power_w*; returns the averages.

        Runs where *active* is False (already past the end of their
        timeline) keep their average untouched.
        """
        keep = self._keep
        updated = self._average_w * keep + power_w * (1.0 - keep)
        if active is not None:
            updated = np.where(active, updated, self._average_w)
        self._average_w = updated
        return updated

    def max_power_keeping_average_w(self, limit_w: np.ndarray) -> np.ndarray:
        """Per-run largest next-step power keeping the average <= *limit_w*."""
        keep = self._keep
        return np.maximum(
            0.0, (limit_w - self._average_w * keep) / (1.0 - keep)
        )
