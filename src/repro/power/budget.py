"""Shared power-budget bookkeeping.

The SoC's compute domain (CPU cores plus graphics engine) shares one power
budget, distributed at runtime by the power-budget-management (PBM)
algorithm of the PMU (paper Section 2.1).  This module provides the simple
accounting objects PBM operates on; the allocation *policy* lives in
:mod:`repro.pmu.pbm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ConfigurationError, ConstraintViolation
from repro.common.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class DomainPower:
    """Power attributed to one SoC domain."""

    domain: str
    dynamic_w: float
    leakage_w: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.dynamic_w, "dynamic_w")
        ensure_non_negative(self.leakage_w, "leakage_w")

    @property
    def total_w(self) -> float:
        """Total (dynamic plus leakage) power of the domain."""
        return self.dynamic_w + self.leakage_w


@dataclass
class PowerBudget:
    """A fixed total budget being split across named domains.

    Parameters
    ----------
    total_w:
        The budget ceiling (normally the configuration's TDP).
    """

    total_w: float
    allocations: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ensure_positive(self.total_w, "total_w")

    # -- allocation ----------------------------------------------------------------

    def allocate(self, domain: str, power_w: float) -> None:
        """Reserve *power_w* of the budget for *domain*.

        Raises :class:`~repro.common.errors.ConstraintViolation` when the
        reservation would exceed the total budget.
        """
        ensure_non_negative(power_w, "power_w")
        if domain in self.allocations:
            raise ConfigurationError(f"domain {domain!r} already allocated")
        if self.allocated_w() + power_w > self.total_w + 1e-9:
            raise ConstraintViolation(
                "power budget", self.allocated_w() + power_w, self.total_w
            )
        self.allocations[domain] = power_w

    def allocate_remainder(self, domain: str) -> float:
        """Give *domain* whatever budget is left and return that amount."""
        remainder = self.remaining_w()
        if domain in self.allocations:
            raise ConfigurationError(f"domain {domain!r} already allocated")
        self.allocations[domain] = remainder
        return remainder

    # -- queries -------------------------------------------------------------------

    def allocated_w(self) -> float:
        """Total power already reserved."""
        return sum(self.allocations.values())

    def remaining_w(self) -> float:
        """Budget not yet reserved (never negative)."""
        return max(0.0, self.total_w - self.allocated_w())

    def allocation_for(self, domain: str) -> float:
        """Budget reserved for *domain* (zero if none)."""
        return self.allocations.get(domain, 0.0)

    def domains(self) -> List[str]:
        """Domains that currently hold an allocation."""
        return list(self.allocations)

    def utilisation(self) -> float:
        """Fraction of the total budget that has been reserved."""
        return self.allocated_w() / self.total_w
