"""Leakage power model.

Leakage is the power a powered-on circuit burns even when its clocks are
gated.  It grows super-linearly with supply voltage and exponentially with
temperature.  Leakage is the whole reason per-core power-gates exist, and the
whole cost of bypassing them: in DarkGates' bypass mode idle cores keep
leaking, which

* shrinks the power budget available to the graphics engine (Fig. 9),
* more than triples package-C7 idle power (Section 4.3), and
* adds a small amount of reliability stress (Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.common.validation import ensure_non_negative, ensure_positive

#: Nominal silicon temperature (deg C) at which leakage is characterised.
#: Shared by the leakage reference point and the simulation engine's
#: idle-platform wake phases, whose short bursts never heat the die far from
#: this point.
NOMINAL_SILICON_TEMPERATURE_C = 60.0


@dataclass(frozen=True)
class LeakagePowerModel:
    """Leakage power of one component with V/T dependence.

    The model is the standard compact form used in architectural studies:

    ``P_leak(V, T) = P_ref * (V / V_ref) * exp(kv * (V - V_ref))
                           * exp(kt * (T - T_ref))``

    Parameters
    ----------
    reference_power_w:
        Leakage power at the reference voltage and temperature.
    reference_voltage_v:
        Voltage at which ``reference_power_w`` was characterised.
    reference_temperature_c:
        Temperature (deg C) at which ``reference_power_w`` was characterised.
    voltage_sensitivity_per_v:
        Exponential voltage coefficient ``kv`` (1/V).  A value around 3
        roughly doubles leakage for a 230 mV increase.
    temperature_sensitivity_per_c:
        Exponential temperature coefficient ``kt`` (1/degC).  A value around
        0.017 doubles leakage for a ~40 degC increase.
    """

    reference_power_w: float
    reference_voltage_v: float = 1.0
    reference_temperature_c: float = NOMINAL_SILICON_TEMPERATURE_C
    voltage_sensitivity_per_v: float = 3.0
    temperature_sensitivity_per_c: float = 0.017

    def __post_init__(self) -> None:
        ensure_non_negative(self.reference_power_w, "reference_power_w")
        ensure_positive(self.reference_voltage_v, "reference_voltage_v")
        ensure_non_negative(self.voltage_sensitivity_per_v, "voltage_sensitivity_per_v")
        ensure_non_negative(
            self.temperature_sensitivity_per_c, "temperature_sensitivity_per_c"
        )

    def power_w(self, voltage_v: float, temperature_c: float = 60.0) -> float:
        """Leakage power at the given voltage and temperature.

        Zero voltage (a power-gated or unpowered circuit) gives zero leakage.
        """
        ensure_non_negative(voltage_v, "voltage_v")
        if voltage_v == 0.0 or self.reference_power_w == 0.0:
            return 0.0
        voltage_ratio = voltage_v / self.reference_voltage_v
        voltage_term = math.exp(
            self.voltage_sensitivity_per_v * (voltage_v - self.reference_voltage_v)
        )
        temperature_term = math.exp(
            self.temperature_sensitivity_per_c
            * (temperature_c - self.reference_temperature_c)
        )
        return self.reference_power_w * voltage_ratio * voltage_term * temperature_term

    # -- die-variation hooks -----------------------------------------------------------

    def base_power_w(self, voltage_v: float) -> float:
        """Leakage at *voltage_v* and the reference temperature.

        This is the temperature-independent factor of the leakage law (the
        temperature term is exactly 1 at ``reference_temperature_c``); the
        process-variation paths scale it and re-apply their own temperature
        factor so a die's leakage corner and ``kt`` shift compose without
        rebuilding the model.
        """
        return self.power_w(voltage_v, self.reference_temperature_c)

    def temperature_factor(
        self,
        temperature_c: float,
        kt_delta_per_c: Union[float, np.ndarray] = 0.0,
    ) -> Union[float, np.ndarray]:
        """Exponential temperature term at *temperature_c*.

        *kt_delta_per_c* shifts the temperature coefficient die to die; it
        may be a scalar (one die) or an array (a population) — the same
        ``np.exp`` expression evaluates either way, which keeps per-die and
        population arithmetic bit-identical.
        """
        return np.exp(
            (self.temperature_sensitivity_per_c + kt_delta_per_c)
            * (temperature_c - self.reference_temperature_c)
        )

    def current_a(self, voltage_v: float, temperature_c: float = 60.0) -> float:
        """Leakage current at the given voltage and temperature."""
        if voltage_v <= 0:
            return 0.0
        return self.power_w(voltage_v, temperature_c) / voltage_v

    def gated_power_w(
        self,
        voltage_v: float,
        temperature_c: float = 60.0,
        residual_fraction: float = 0.02,
    ) -> float:
        """Leakage when the component sits behind an *off* power-gate.

        Only the sleep transistors' sub-threshold leakage remains, modelled
        as a small fraction of the ungated leakage.
        """
        ensure_non_negative(residual_fraction, "residual_fraction")
        return self.power_w(voltage_v, temperature_c) * residual_fraction

    def scaled(self, factor: float) -> "LeakagePowerModel":
        """A model with the reference leakage scaled by *factor*."""
        ensure_positive(factor, "factor")
        return LeakagePowerModel(
            reference_power_w=self.reference_power_w * factor,
            reference_voltage_v=self.reference_voltage_v,
            reference_temperature_c=self.reference_temperature_c,
            voltage_sensitivity_per_v=self.voltage_sensitivity_per_v,
            temperature_sensitivity_per_c=self.temperature_sensitivity_per_c,
        )
