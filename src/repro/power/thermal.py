"""Thermal limits and a lumped thermal model.

The paper's Section 2.4.1 describes the two thermal design limits that
matter for the evaluation:

* **Tjmax** — the junction temperature must never exceed the maximum rated
  value; the PMU throttles (or ultimately shuts down) to enforce this.
* **TDP** — the sustained power the cooling solution is sized for.  A system
  configured to a lower TDP has a weaker cooling solution, so it reaches
  Tjmax at a lower sustained power.

The lumped model here ties the two together: the cooling solution's thermal
resistance is chosen such that dissipating exactly TDP watts at the maximum
ambient temperature lands the junction exactly at Tjmax.  Sustained power at
or below TDP is therefore thermally safe, and the "thermally limited"
frequency of a configuration is the highest frequency whose sustained power
stays under TDP — which is how the evaluation's 35 W systems end up slower
than the 91 W ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive


@dataclass(frozen=True)
class ThermalLimits:
    """Thermal design limits of one system configuration."""

    tdp_w: float
    tjmax_c: float = 100.0
    ambient_c: float = 35.0

    def __post_init__(self) -> None:
        ensure_positive(self.tdp_w, "tdp_w")
        ensure_positive(self.tjmax_c, "tjmax_c")
        if self.ambient_c >= self.tjmax_c:
            raise ConfigurationError("ambient_c must be below tjmax_c")


@dataclass(frozen=True)
class ThermalModel:
    """Steady-state lumped thermal model of a processor plus cooling solution.

    Parameters
    ----------
    limits:
        Thermal limits of the configuration (TDP, Tjmax, ambient).
    resistance_scale:
        Die-to-die multiplier on the co-designed thermal resistance
        (die-attach / TIM quality variation); 1.0 is the nominal part.
    """

    limits: ThermalLimits
    resistance_scale: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.resistance_scale, "resistance_scale")

    @property
    def thermal_resistance_c_per_w(self) -> float:
        """Junction-to-ambient thermal resistance of the cooling solution.

        Sized so that dissipating exactly TDP at the design ambient reaches
        exactly Tjmax — the standard way TDP and the cooler are co-designed —
        then scaled by the die's ``resistance_scale``.
        """
        return (
            (self.limits.tjmax_c - self.limits.ambient_c) / self.limits.tdp_w
        ) * self.resistance_scale

    def junction_temperature_c(self, sustained_power_w: float) -> float:
        """Steady-state junction temperature at *sustained_power_w*."""
        if sustained_power_w < 0:
            raise ConfigurationError("sustained_power_w must be >= 0")
        return self.limits.ambient_c + self.thermal_resistance_c_per_w * sustained_power_w

    def is_thermally_safe(self, sustained_power_w: float) -> bool:
        """True when the sustained power keeps the junction at or below Tjmax."""
        return self.junction_temperature_c(sustained_power_w) <= self.limits.tjmax_c + 1e-9

    def max_sustained_power_w(self) -> float:
        """Largest sustained power the cooling solution can remove (== TDP)."""
        return self.limits.tdp_w

    def headroom_w(self, sustained_power_w: float) -> float:
        """Power headroom left before the thermal limit (negative if over)."""
        return self.limits.tdp_w - sustained_power_w

    def temperature_rise_c(self, extra_power_w: float) -> float:
        """Additional junction temperature caused by *extra_power_w*.

        Used by the reliability model to estimate the ~5 degC rise the paper
        attributes to keeping idle cores powered in bypass mode.
        """
        if extra_power_w < 0:
            raise ConfigurationError("extra_power_w must be >= 0")
        return self.thermal_resistance_c_per_w * extra_power_w


@dataclass(frozen=True)
class TransientThermalModel:
    """First-order (lumped RC) transient extension of :class:`ThermalModel`.

    The steady-state model fixes the thermal resistance R from the TDP /
    Tjmax co-design; adding a thermal capacitance C gives the junction the
    exponential step response that makes turbo possible in the first place
    (paper Section 2.4.1): a burst above TDP heats the die toward an
    over-Tjmax steady state but only *reaches* Tjmax after a few time
    constants, which is the window PL2 exploits.

    Parameters
    ----------
    steady_state:
        The co-designed steady-state model (provides R and the limits).
    capacitance_j_per_c:
        Lumped thermal capacitance of die plus cooling solution.  The time
        constant is ``tau = R * C``.
    """

    steady_state: ThermalModel
    capacitance_j_per_c: float = 60.0

    def __post_init__(self) -> None:
        ensure_positive(self.capacitance_j_per_c, "capacitance_j_per_c")

    @property
    def limits(self) -> ThermalLimits:
        """Thermal design limits of the configuration."""
        return self.steady_state.limits

    @property
    def time_constant_s(self) -> float:
        """Thermal time constant ``tau = R * C`` of the lumped model."""
        return (
            self.steady_state.thermal_resistance_c_per_w * self.capacitance_j_per_c
        )

    def steady_temperature_c(self, power_w: float) -> float:
        """Temperature the junction would settle at under constant *power_w*."""
        return self.steady_state.junction_temperature_c(power_w)

    def step(self, temperature_c: float, power_w: float, time_step_s: float) -> float:
        """Junction temperature after *time_step_s* of constant *power_w*.

        Exact solution of ``C dT/dt = P - (T - Tamb)/R`` over the step:
        the temperature relaxes exponentially toward the steady state of the
        applied power.
        """
        ensure_positive(time_step_s, "time_step_s")
        target = self.steady_temperature_c(power_w)
        decay = math.exp(-time_step_s / self.time_constant_s)
        return target + (temperature_c - target) * decay

    def settling_time_s(self, tolerance_c: float = 0.1, swing_c: float = 65.0) -> float:
        """Time for a *swing_c* temperature step to settle within *tolerance_c*."""
        ensure_positive(tolerance_c, "tolerance_c")
        ensure_positive(swing_c, "swing_c")
        return self.time_constant_s * math.log(swing_c / tolerance_c)

    def max_power_keeping_tjmax_w(
        self, temperature_c: float, time_step_s: float
    ) -> float:
        """Largest constant power over the next step that keeps T <= Tjmax.

        Inverts :meth:`step` for ``T(t + dt) == Tjmax``: this is the thermal
        throttle the firmware applies when a turbo burst has driven the
        junction to the limit.  Very large while the die is cool (a short
        step cannot reach Tjmax), approaching the TDP as T approaches Tjmax.
        """
        ensure_positive(time_step_s, "time_step_s")
        decay = math.exp(-time_step_s / self.time_constant_s)
        limits = self.limits
        target_ceiling = (limits.tjmax_c - temperature_c * decay) / (1.0 - decay)
        power = (
            target_ceiling - limits.ambient_c
        ) / self.steady_state.thermal_resistance_c_per_w
        return max(0.0, power)


class BatchedThermalModel:
    """Vectorized :class:`TransientThermalModel` over a batch of lockstep runs.

    Each run has its own (constant) time step, thermal resistance and
    capacitance, so the per-run exponential decay factor is a constant; it
    is precomputed with the same ``math.exp(-dt / tau)`` the scalar model
    evaluates every step, which keeps a batched trajectory bit-identical to
    stepping each run through its own :class:`TransientThermalModel`.

    Parameters
    ----------
    models:
        One transient model per run (carries R, C and the limits).
    time_step_s:
        Per-run (constant) simulation steps.
    """

    def __init__(
        self, models: Sequence[TransientThermalModel], time_step_s: Sequence[float]
    ) -> None:
        steps = np.asarray(time_step_s, dtype=float)
        if len(models) != len(steps):
            raise ConfigurationError("one time step per thermal model required")
        if (steps <= 0).any():
            raise ConfigurationError("time_step_s must be positive")
        self._ambient_c = np.array(
            [model.limits.ambient_c for model in models], dtype=float
        )
        self._tjmax_c = np.array(
            [model.limits.tjmax_c for model in models], dtype=float
        )
        self._resistance_c_per_w = np.array(
            [model.steady_state.thermal_resistance_c_per_w for model in models],
            dtype=float,
        )
        self._decay = np.array(
            [
                math.exp(-dt / model.time_constant_s)
                for model, dt in zip(models, steps)
            ],
            dtype=float,
        )

    @classmethod
    def from_parameters(
        cls,
        *,
        ambient_c: float,
        tjmax_c: float,
        resistance_c_per_w: np.ndarray,
        capacitance_j_per_c: float,
        time_step_s: float,
    ) -> "BatchedThermalModel":
        """A batch sharing one design but with per-run thermal resistances.

        This is the population fast path's injection point: per-die
        resistances arrive as one array, with no per-die
        :class:`TransientThermalModel` objects.  The decay factor of run
        ``i`` is computed with the same ``math.exp(-dt / (R_i * C))``
        expression the scalar model evaluates, so a population run matches
        per-die stepping bit for bit.
        """
        ensure_positive(capacitance_j_per_c, "capacitance_j_per_c")
        ensure_positive(time_step_s, "time_step_s")
        resistance = np.asarray(resistance_c_per_w, dtype=float)
        if (resistance <= 0).any():
            raise ConfigurationError("resistance_c_per_w must be positive")
        batch = cls.__new__(cls)
        batch._ambient_c = np.full(resistance.shape, ambient_c, dtype=float)
        batch._tjmax_c = np.full(resistance.shape, tjmax_c, dtype=float)
        batch._resistance_c_per_w = resistance
        batch._decay = np.array(
            [
                math.exp(-time_step_s / (r * capacitance_j_per_c))
                for r in resistance
            ],
            dtype=float,
        )
        return batch

    @property
    def ambient_c(self) -> np.ndarray:
        """Per-run design ambient temperatures."""
        return self._ambient_c

    def step(
        self,
        temperature_c: np.ndarray,
        power_w: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-run junction temperature after one step of constant *power_w*.

        Runs where *active* is False keep their temperature untouched.
        """
        target = self._ambient_c + self._resistance_c_per_w * power_w
        updated = target + (temperature_c - target) * self._decay
        if active is not None:
            updated = np.where(active, updated, temperature_c)
        return updated

    def max_power_keeping_tjmax_w(self, temperature_c: np.ndarray) -> np.ndarray:
        """Per-run largest next-step power that keeps T <= Tjmax."""
        decay = self._decay
        target_ceiling = (self._tjmax_c - temperature_c * decay) / (1.0 - decay)
        power = (target_ceiling - self._ambient_c) / self._resistance_c_per_w
        return np.maximum(0.0, power)
