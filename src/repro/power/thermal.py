"""Thermal limits and a lumped thermal model.

The paper's Section 2.4.1 describes the two thermal design limits that
matter for the evaluation:

* **Tjmax** — the junction temperature must never exceed the maximum rated
  value; the PMU throttles (or ultimately shuts down) to enforce this.
* **TDP** — the sustained power the cooling solution is sized for.  A system
  configured to a lower TDP has a weaker cooling solution, so it reaches
  Tjmax at a lower sustained power.

The lumped model here ties the two together: the cooling solution's thermal
resistance is chosen such that dissipating exactly TDP watts at the maximum
ambient temperature lands the junction exactly at Tjmax.  Sustained power at
or below TDP is therefore thermally safe, and the "thermally limited"
frequency of a configuration is the highest frequency whose sustained power
stays under TDP — which is how the evaluation's 35 W systems end up slower
than the 91 W ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive


@dataclass(frozen=True)
class ThermalLimits:
    """Thermal design limits of one system configuration."""

    tdp_w: float
    tjmax_c: float = 100.0
    ambient_c: float = 35.0

    def __post_init__(self) -> None:
        ensure_positive(self.tdp_w, "tdp_w")
        ensure_positive(self.tjmax_c, "tjmax_c")
        if self.ambient_c >= self.tjmax_c:
            raise ConfigurationError("ambient_c must be below tjmax_c")


@dataclass(frozen=True)
class ThermalModel:
    """Steady-state lumped thermal model of a processor plus cooling solution.

    Parameters
    ----------
    limits:
        Thermal limits of the configuration (TDP, Tjmax, ambient).
    """

    limits: ThermalLimits

    @property
    def thermal_resistance_c_per_w(self) -> float:
        """Junction-to-ambient thermal resistance of the cooling solution.

        Sized so that dissipating exactly TDP at the design ambient reaches
        exactly Tjmax — the standard way TDP and the cooler are co-designed.
        """
        return (self.limits.tjmax_c - self.limits.ambient_c) / self.limits.tdp_w

    def junction_temperature_c(self, sustained_power_w: float) -> float:
        """Steady-state junction temperature at *sustained_power_w*."""
        if sustained_power_w < 0:
            raise ConfigurationError("sustained_power_w must be >= 0")
        return self.limits.ambient_c + self.thermal_resistance_c_per_w * sustained_power_w

    def is_thermally_safe(self, sustained_power_w: float) -> bool:
        """True when the sustained power keeps the junction at or below Tjmax."""
        return self.junction_temperature_c(sustained_power_w) <= self.limits.tjmax_c + 1e-9

    def max_sustained_power_w(self) -> float:
        """Largest sustained power the cooling solution can remove (== TDP)."""
        return self.limits.tdp_w

    def headroom_w(self, sustained_power_w: float) -> float:
        """Power headroom left before the thermal limit (negative if over)."""
        return self.limits.tdp_w - sustained_power_w

    def temperature_rise_c(self, extra_power_w: float) -> float:
        """Additional junction temperature caused by *extra_power_w*.

        Used by the reliability model to estimate the ~5 degC rise the paper
        attributes to keeping idle cores powered in bypass mode.
        """
        if extra_power_w < 0:
            raise ConfigurationError("extra_power_w must be >= 0")
        return self.thermal_resistance_c_per_w * extra_power_w
