"""The import-layering contract checker (RPR008/RPR009).

Builds the *runtime* module-level import graph of the package — imports
inside ``if TYPE_CHECKING:`` blocks and inside function bodies do not
execute at import time, so they are exempt — then checks two properties:

* every edge points at the importer's own layer or lower, per the
  ``layers`` declaration in pyproject.toml (RPR008);
* the graph is acyclic (RPR009), reported per strongly-connected
  component so one cycle produces one coherent set of findings.

The package root modules (``repro/__init__.py``, ``repro/__main__.py``)
are the public facade re-exporting every layer and are exempt from the
order check (they still participate in cycle detection).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.rules import Finding


def module_name_for(path: Path, package: str) -> Optional[str]:
    """Resolve *path* to its dotted module under *package*, or ``None``.

    The module root is the **last** path segment equal to *package* (so a
    checkout at ``/home/repro/src/repro/...`` resolves correctly).
    """
    parts = path.parts
    indices = [i for i, part in enumerate(parts) if part == package]
    if not indices:
        return None
    tail = parts[indices[-1]:]
    if not tail[-1].endswith(".py"):
        return None
    segments = list(tail[:-1]) + [tail[-1][: -len(".py")]]
    if segments[-1] == "__init__":
        segments.pop()
    return ".".join(segments)


@dataclass
class ModuleImports:
    """Runtime module-level imports of one module."""

    module: str
    path: str
    #: imported module -> first line importing it
    edges: Dict[str, int] = field(default_factory=dict)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_relative(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute target of a relative ``from . import x`` inside *module*."""
    base = module.split(".")
    # level=1 is the containing package: the module itself if this is an
    # __init__.py, its parent otherwise.
    drop = node.level - 1 if is_package else node.level
    if drop > len(base):
        return None
    prefix = base[: len(base) - drop] if drop else base
    if node.module:
        prefix = prefix + node.module.split(".")
    return ".".join(prefix) if prefix else None


def collect_runtime_imports(
    tree: ast.Module,
    module: str,
    path: str,
    package: str,
    *,
    is_package: bool = False,
) -> ModuleImports:
    """Module-level runtime imports of *tree* that stay inside *package*."""
    imports = ModuleImports(module=module, path=path)
    prefix = package + "."

    def record(target: Optional[str], line: int) -> None:
        if target is None:
            return
        if target == package or target.startswith(prefix):
            imports.edges.setdefault(target, line)

    def walk(statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    record(alias.name, statement.lineno)
            elif isinstance(statement, ast.ImportFrom):
                if statement.level:
                    record(
                        _resolve_relative(module, is_package, statement),
                        statement.lineno,
                    )
                else:
                    record(statement.module, statement.lineno)
            elif isinstance(statement, ast.If):
                if not _is_type_checking_test(statement.test):
                    walk(statement.body)
                walk(statement.orelse)
            elif isinstance(statement, ast.Try):
                walk(statement.body)
                for handler in statement.handlers:
                    walk(handler.body)
                walk(statement.orelse)
                walk(statement.finalbody)
            elif isinstance(statement, (ast.With, ast.For, ast.While)):
                walk(statement.body)
                walk(getattr(statement, "orelse", []))
            elif isinstance(statement, ast.ClassDef):
                # Class bodies execute at import time; function bodies do not.
                walk(statement.body)
    walk(tree.body)
    return imports


def _top_subpackage(module: str, package: str) -> Optional[str]:
    """``repro.pmu.dvfs`` -> ``pmu``; the root itself -> ``None``."""
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != package:
        return None
    if parts[1] == "__main__":
        return None
    return parts[1]


def _strongly_connected(
    graph: Dict[str, Set[str]]
) -> List[List[str]]:
    """Tarjan SCC (iterative); returns components with a real cycle."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            successors = sorted(graph.get(node, ()))
            advanced = False
            for position in range(edge_index, len(successors)):
                successor = successors[position]
                if successor not in graph:
                    continue
                if successor not in index:
                    work[-1] = (node, position + 1)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


def check_layering(
    modules: Sequence[ModuleImports], config: LintConfig
) -> Dict[str, List[Finding]]:
    """RPR008/RPR009 over the collected module graph: path -> findings."""
    findings: Dict[str, List[Finding]] = {}
    if not config.layers:
        return findings
    package = config.package
    by_name = {entry.module: entry for entry in modules}
    reported_packages: Set[str] = set()

    for entry in modules:
        importer_pkg = _top_subpackage(entry.module, package)
        if importer_pkg is None:
            continue  # the root facade is exempt from the order check
        importer_layer = config.layer_of(importer_pkg)
        if importer_layer is None:
            if importer_pkg not in reported_packages:
                reported_packages.add(importer_pkg)
                findings.setdefault(entry.path, []).append(
                    Finding(
                        1,
                        0,
                        "RPR008",
                        f"package {importer_pkg!r} is not assigned a layer "
                        "in [tool.repro-lint].layers",
                    )
                )
            continue
        for target, line in sorted(entry.edges.items()):
            target_pkg = _top_subpackage(target, package)
            if target_pkg is None:
                if target == package:
                    # Importing the facade from inside pulls in every layer.
                    findings.setdefault(entry.path, []).append(
                        Finding(
                            line,
                            0,
                            "RPR008",
                            f"module {entry.module} imports the package "
                            f"root {package!r}, which re-exports every "
                            "layer; import the concrete module instead",
                        )
                    )
                continue
            target_layer = config.layer_of(target_pkg)
            if target_layer is None:
                continue  # reported once via the importer check above
            if target_layer > importer_layer:
                findings.setdefault(entry.path, []).append(
                    Finding(
                        line,
                        0,
                        "RPR008",
                        f"{entry.module} (layer {importer_layer}: "
                        f"{importer_pkg!r}) imports {target} (layer "
                        f"{target_layer}: {target_pkg!r}); declared order "
                        f"is {config.layer_order_text()}",
                    )
                )

    graph: Dict[str, Set[str]] = {
        entry.module: {
            target for target in entry.edges if target in by_name
        }
        for entry in modules
    }
    for component in _strongly_connected(graph):
        cycle_text = " -> ".join(component + [component[0]])
        for member in component:
            entry = by_name[member]
            lines = [
                entry.edges[target]
                for target in graph[member]
                if target in component and target in entry.edges
            ]
            findings.setdefault(entry.path, []).append(
                Finding(
                    min(lines) if lines else 1,
                    0,
                    "RPR009",
                    f"import cycle: {cycle_text}",
                )
            )
    return findings
