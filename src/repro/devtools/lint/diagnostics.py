"""Diagnostic records emitted by the analyzer.

A diagnostic pins one finding to a ``path:line:column`` location with its
stable rule code.  Codes never change meaning between releases: tooling
(CI annotations, suppression comments, ``--explain``) keys on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

#: Version of the machine-readable (JSON) report layout.
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule code anchored to a source location."""

    path: str
    line: int
    column: int
    code: str
    message: str

    def format(self) -> str:
        """The human-readable one-liner, ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload of this diagnostic."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class LintReport:
    """The outcome of one analyzer invocation."""

    diagnostics: Sequence[Diagnostic]
    files_scanned: int

    @property
    def clean(self) -> bool:
        """True when no diagnostic fired."""
        return not self.diagnostics

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (uploaded as the CI lint artifact)."""
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "finding_count": len(self.diagnostics),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def format_text(self) -> str:
        """The human-readable report: one line per finding plus a summary."""
        lines: List[str] = [d.format() for d in self.diagnostics]
        noun = "file" if self.files_scanned == 1 else "files"
        if self.diagnostics:
            lines.append(
                f"{len(self.diagnostics)} finding(s) in "
                f"{self.files_scanned} {noun}"
            )
        else:
            lines.append(f"clean: {self.files_scanned} {noun}, 0 findings")
        return "\n".join(lines)
