"""Line suppressions: ``# repro-lint: disable=RPRnnn -- rationale``.

A suppression silences named rule codes *on its own line only* and must
carry a rationale after ``--`` — the comment is the audit record of why a
finding is acceptable.  Comments are discovered with :mod:`tokenize`, so
string literals that merely contain the marker text never parse as
suppressions.  Malformed, unknown-code, and unused suppressions are
themselves findings (RPR000).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.devtools.lint.diagnostics import Diagnostic
from repro.devtools.lint.registry import RULES

#: Leading marker of a suppression comment.
MARKER = "repro-lint:"

_DIRECTIVE = re.compile(
    r"^#\s*repro-lint:\s*disable=(?P<codes>[^-]*?)\s*(?:--\s*(?P<rationale>.*))?$"
)

_CODE = re.compile(r"^RPR\d{3}$")


@dataclass
class SuppressionSet:
    """The parsed suppressions of one file."""

    #: (line, code) pairs that silence a diagnostic.
    active: Set[Tuple[int, str]] = field(default_factory=set)
    #: Findings about the suppression comments themselves.
    problems: List[Tuple[int, int, str]] = field(default_factory=list)
    #: (line, code) -> was consumed by at least one diagnostic.
    used: Dict[Tuple[int, str], bool] = field(default_factory=dict)

    def suppresses(self, line: int, code: str) -> bool:
        """Consume a suppression for (*line*, *code*) if one is active.

        RPR000 findings are never suppressible: they report problems with
        the suppression mechanism itself.
        """
        if code == "RPR000":
            return False
        key = (line, code)
        if key in self.active:
            self.used[key] = True
            return True
        return False

    def unused(self) -> List[Tuple[int, str]]:
        """Suppressions that silenced nothing, sorted by line."""
        return sorted(key for key, consumed in self.used.items() if not consumed)


def scan_suppressions(source: str) -> SuppressionSet:
    """Parse every suppression comment of *source*."""
    suppressions = SuppressionSet()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The caller reports the parse failure; nothing to scan here.
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT or MARKER not in token.string:
            continue
        line, column = token.start
        match = _DIRECTIVE.match(token.string.strip())
        if match is None:
            suppressions.problems.append(
                (
                    line,
                    column,
                    "malformed suppression comment; expected "
                    "'# repro-lint: disable=RPRnnn -- rationale'",
                )
            )
            continue
        rationale = (match.group("rationale") or "").strip()
        if not rationale:
            suppressions.problems.append(
                (
                    line,
                    column,
                    "suppression is missing its rationale; append "
                    "'-- <why this finding is acceptable>'",
                )
            )
            continue
        codes = [code.strip() for code in match.group("codes").split(",")]
        valid: List[str] = []
        for code in codes:
            if not _CODE.match(code) or code not in RULES:
                suppressions.problems.append(
                    (
                        line,
                        column,
                        f"suppression names unknown rule code {code!r}; "
                        f"known: {', '.join(sorted(RULES))}",
                    )
                )
            elif code == "RPR000":
                suppressions.problems.append(
                    (line, column, "RPR000 (suppression hygiene) cannot be suppressed")
                )
            else:
                valid.append(code)
        for code in valid:
            suppressions.active.add((line, code))
            suppressions.used[(line, code)] = False
    return suppressions


def apply_suppressions(
    path: str,
    diagnostics: List[Diagnostic],
    suppressions: SuppressionSet,
) -> List[Diagnostic]:
    """Filter *diagnostics* through *suppressions* and report hygiene issues.

    Returns the surviving diagnostics plus one RPR000 per malformed or
    unused suppression.
    """
    survivors = [
        diagnostic
        for diagnostic in diagnostics
        if not suppressions.suppresses(diagnostic.line, diagnostic.code)
    ]
    for line, column, message in suppressions.problems:
        survivors.append(Diagnostic(path, line, column, "RPR000", message))
    for line, code in suppressions.unused():
        survivors.append(
            Diagnostic(
                path,
                line,
                0,
                "RPR000",
                f"unused suppression: no {code} finding fires on this line",
            )
        )
    return survivors
