"""The AST rule implementations (RPR001-RPR007).

Per-file rules run in a single :class:`ast.NodeVisitor` pass over each
source file; :func:`check_canonical_fields` (RPR004) is a project-level
pass because fingerprint reachability spans files.  All checks are
name-based — the analyzer resolves dotted attribute chains textually
(``np.random.seed``), not through imports, which keeps it fast and
dependency-free; the rule explanations document that aliasing a module
(``import numpy.random as nr``) is out of scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.registry import RULES

#: numpy global-RNG entry points (module-level state shared by all callers).
NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "normal",
        "uniform",
        "standard_normal",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "get_state",
        "set_state",
    }
)

#: Dotted calls that read wall-clock time or harvest OS entropy.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.choice",
    }
)

#: Builtin exceptions that must not be raised directly by library code.
FORBIDDEN_RAISES = frozenset(
    {
        "ArithmeticError",
        "AttributeError",
        "BaseException",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: Annotation names that canonical hashing rejects outright.
UNCANONICAL_ANNOTATIONS = frozenset(
    {"set", "Set", "MutableSet", "AbstractSet", "frozenset", "FrozenSet"}
)

#: Mapping-like annotation heads whose key type must be ``str``.
MAPPING_ANNOTATIONS = frozenset({"dict", "Dict", "Mapping", "MutableMapping"})

#: ``default_factory`` callables that produce mutable values.
MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render an ``a.b.c`` attribute chain as a string (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class Finding:
    """One pre-suppression finding inside a single file."""

    line: int
    column: int
    code: str
    message: str


class FileChecker(ast.NodeVisitor):
    """Runs every per-file rule whose scope matches the file."""

    def __init__(self, module: Optional[str], scope: str, config: LintConfig) -> None:
        self.module = module
        self.scope = scope
        self.config = config
        self.findings: List[Finding] = []

    # -- plumbing ----------------------------------------------------------------------

    def _enabled(self, code: str) -> bool:
        return self.scope in RULES[code].scopes

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if self._enabled(code):
            self.findings.append(
                Finding(node.lineno, node.col_offset, code, message)
            )

    # -- RPR001 / RPR006: imports ------------------------------------------------------

    def _check_import_name(self, node: ast.AST, name: str) -> None:
        if name == "random" or name.startswith("random."):
            self._report(
                node,
                "RPR001",
                "stdlib 'random' draws from hidden global state; use "
                "numpy.random.default_rng(seed) with a recorded seed",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_import_name(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            self._check_import_name(node, node.module)
        allowed = self.module in self.config.factory_allowlist
        if not allowed:
            for alias in node.names:
                if alias.name in self.config.deprecated_factories:
                    self._report(
                        node,
                        "RPR006",
                        f"import of deprecated factory shim "
                        f"{alias.name!r}; build through "
                        "get_spec(...).variant(...).build() instead",
                    )
        self.generic_visit(node)

    # -- RPR001 / RPR002 / RPR003: calls -----------------------------------------------

    def _check_rng_call(self, node: ast.Call, dotted: Optional[str]) -> None:
        tail = dotted.rsplit(".", 2) if dotted else []
        if len(tail) == 3 and tail[1] == "random" and tail[2] in NUMPY_GLOBAL_RNG:
            self._report(
                node,
                "RPR001",
                f"call to numpy global RNG '{dotted}'; draw from an "
                "explicitly seeded numpy.random.default_rng(seed) instead",
            )
            return
        callee = dotted.rsplit(".", 1)[-1] if dotted else None
        if callee == "default_rng":
            seeded = bool(node.args) and not (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            seeded = seeded or any(
                keyword.arg == "seed" for keyword in node.keywords
            )
            if not seeded:
                self._report(
                    node,
                    "RPR001",
                    "default_rng() without an explicit seed harvests OS "
                    "entropy; pass a seed that is recorded in the result",
                )
        elif callee == "SeedSequence":
            if not node.args and not any(
                keyword.arg == "entropy" for keyword in node.keywords
            ):
                self._report(
                    node,
                    "RPR001",
                    "SeedSequence() without entropy harvests OS entropy; "
                    "pass the recorded seed explicitly",
                )

    def _check_wall_clock(self, node: ast.Call, dotted: Optional[str]) -> None:
        if dotted in WALL_CLOCK_CALLS:
            self._report(
                node,
                "RPR002",
                f"nondeterministic call '{dotted}()'; results and "
                "fingerprints must not depend on wall clock or OS entropy",
            )

    def _check_id_feeds_hash(self, node: ast.Call, dotted: Optional[str]) -> None:
        is_hash = dotted == "hash" or (
            dotted is not None and dotted.startswith("hashlib.")
        )
        if not is_hash:
            return
        for argument in (*node.args, *(kw.value for kw in node.keywords)):
            for inner in ast.walk(argument):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "id"
                ):
                    self._report(
                        inner,
                        "RPR002",
                        "id() feeding a hash; CPython ids are "
                        "address-derived and differ across processes",
                    )

    def _check_json_dumps(self, node: ast.Call, dotted: Optional[str]) -> None:
        if dotted not in ("json.dumps", "json.dump"):
            return
        if any(keyword.arg is None for keyword in node.keywords):
            return  # **kwargs — cannot see the values statically
        keywords = {
            keyword.arg: keyword.value
            for keyword in node.keywords
            if keyword.arg is not None
        }
        missing: List[str] = []
        sort_keys = keywords.get("sort_keys")
        if not (isinstance(sort_keys, ast.Constant) and sort_keys.value is True):
            missing.append("sort_keys=True")
        allow_nan = keywords.get("allow_nan")
        if not (isinstance(allow_nan, ast.Constant) and allow_nan.value is False):
            missing.append("allow_nan=False")
        if missing:
            self._report(
                node,
                "RPR003",
                f"{dotted}() without {' and '.join(missing)}; persisted or "
                "hashed JSON must serialize canonically",
            )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        self._check_rng_call(node, dotted)
        self._check_wall_clock(node, dotted)
        self._check_id_feeds_hash(node, dotted)
        self._check_json_dumps(node, dotted)
        self.generic_visit(node)

    # -- RPR005: raises ----------------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in FORBIDDEN_RAISES:
            self._report(
                node,
                "RPR005",
                f"raise of builtin {exc.id}; library errors must derive "
                "from repro.common.errors.ReproError",
            )
        self.generic_visit(node)

    # -- RPR007: schema discipline -----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.endswith(("Result", "Manifest")):
            for statement in node.body:
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == "to_dict"
                ):
                    self._check_to_dict(node, statement)
        self.generic_visit(node)

    def _check_to_dict(self, cls: ast.ClassDef, fn: ast.FunctionDef) -> None:
        class_name = cls.name
        mentions_schema = any(
            isinstance(inner, ast.Constant) and inner.value == "schema_version"
            for inner in ast.walk(fn)
        )
        if mentions_schema:
            return
        # asdict(self) emits every field, so a schema_version *field*
        # satisfies the rule too.
        has_schema_field = any(
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "schema_version"
            for statement in cls.body
        )
        calls_asdict = any(
            isinstance(inner, ast.Call)
            and dotted_name(inner.func) in ("asdict", "dataclasses.asdict")
            for inner in ast.walk(fn)
        )
        if has_schema_field and calls_asdict:
            return
        only_abstract = all(
            isinstance(statement, (ast.Raise, ast.Expr, ast.Pass))
            for statement in fn.body
        ) and any(
            isinstance(statement, ast.Raise)
            and dotted_name(
                statement.exc.func
                if isinstance(statement.exc, ast.Call)
                else (statement.exc or ast.Name(id="", ctx=ast.Load()))
            )
            == "NotImplementedError"
            for statement in fn.body
        )
        if only_abstract:
            return
        self._report(
            fn,
            "RPR007",
            f"{class_name}.to_dict() payload never emits 'schema_version'; "
            "persisted result payloads must be schema-versioned",
        )


def check_file(
    tree: ast.Module, module: Optional[str], scope: str, config: LintConfig
) -> List[Finding]:
    """Run every per-file rule over one parsed source file."""
    checker = FileChecker(module, scope, config)
    checker.visit(tree)
    return checker.findings


# -- RPR004: canonical fields of fingerprint-reachable frozen dataclasses --------------


@dataclass
class DataclassInfo:
    """One dataclass definition found anywhere in the linted tree."""

    name: str
    path: str
    frozen: bool
    node: ast.ClassDef
    fields: List[ast.AnnAssign]
    referenced: Set[str]


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if dotted_name(target) in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    return any(
        keyword.arg == "frozen"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in decorator.keywords
    )


def collect_dataclasses(
    parsed: Sequence[Tuple[str, ast.Module]]
) -> Dict[str, DataclassInfo]:
    """Index every dataclass definition across *parsed* (path, tree) pairs."""
    table: Dict[str, DataclassInfo] = {}
    for path, tree in parsed:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            annotated = [
                statement
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            ]
            referenced: Set[str] = set()
            for statement in annotated:
                for inner in ast.walk(statement.annotation):
                    if isinstance(inner, ast.Name):
                        referenced.add(inner.id)
                    elif isinstance(inner, ast.Constant) and isinstance(
                        inner.value, str
                    ):
                        # Forward references: 'SystemSpec' in quotes.
                        referenced.update(
                            part
                            for part in inner.value.replace("[", " ")
                            .replace("]", " ")
                            .replace(",", " ")
                            .split()
                        )
            # First definition wins; duplicated names across fixture trees
            # are out of scope for reachability.
            table.setdefault(
                node.name,
                DataclassInfo(
                    name=node.name,
                    path=path,
                    frozen=_is_frozen(decorator),
                    node=node,
                    fields=annotated,
                    referenced=referenced,
                ),
            )
    return table


def _reachable(
    table: Dict[str, DataclassInfo], roots: Iterable[str]
) -> Set[str]:
    frontier = [name for name in roots if name in table]
    reached: Set[str] = set(frontier)
    while frontier:
        info = table[frontier.pop()]
        for name in info.referenced:
            if name in table and name not in reached:
                reached.add(name)
                frontier.append(name)
    return reached


def _annotation_problems(annotation: ast.expr) -> List[Tuple[ast.AST, str]]:
    problems: List[Tuple[ast.AST, str]] = []
    for inner in ast.walk(annotation):
        if isinstance(inner, ast.Name) and inner.id in UNCANONICAL_ANNOTATIONS:
            problems.append(
                (
                    inner,
                    f"annotation uses {inner.id!r}: sets are unordered and "
                    "cannot be rendered canonically; use a sorted tuple",
                )
            )
        if isinstance(inner, ast.Subscript):
            head = dotted_name(inner.value)
            head_tail = head.rsplit(".", 1)[-1] if head else None
            if head_tail in MAPPING_ANNOTATIONS:
                key = inner.slice
                if isinstance(key, ast.Tuple) and key.elts:
                    key = key.elts[0]
                key_name = dotted_name(key)
                if key_name is not None and key_name.rsplit(".", 1)[-1] != "str":
                    problems.append(
                        (
                            inner,
                            f"mapping key type {key_name!r} is not 'str': "
                            "canonical JSON objects only have string keys",
                        )
                    )
    return problems


def _default_problems(value: Optional[ast.expr]) -> List[Tuple[ast.AST, str]]:
    if value is None:
        return []
    problems: List[Tuple[ast.AST, str]] = []
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        problems.append(
            (value, "mutable default value; frozen hashed specs must not alias")
        )
    if isinstance(value, ast.Call) and dotted_name(value.func) in (
        "field",
        "dataclasses.field",
    ):
        for keyword in value.keywords:
            if keyword.arg != "default_factory":
                continue
            factory = dotted_name(keyword.value)
            if factory in MUTABLE_FACTORIES:
                problems.append(
                    (
                        keyword.value,
                        f"default_factory={factory} builds a mutable "
                        "default; use an immutable default (e.g. a tuple)",
                    )
                )
    return problems


def check_canonical_fields(
    parsed: Sequence[Tuple[str, ast.Module]], config: LintConfig
) -> Dict[str, List[Finding]]:
    """RPR004 over the whole tree: path -> findings.

    Walks the dataclass-reference graph from ``fingerprint-roots`` and
    checks the canonicality of every reachable *frozen* dataclass.
    """
    if not config.fingerprint_roots:
        return {}
    table = collect_dataclasses(parsed)
    findings: Dict[str, List[Finding]] = {}
    for name in sorted(_reachable(table, config.fingerprint_roots)):
        info = table[name]
        if not info.frozen:
            continue
        for statement in info.fields:
            assert isinstance(statement.target, ast.Name)
            problems = _annotation_problems(statement.annotation)
            problems.extend(_default_problems(statement.value))
            for node, detail in problems:
                findings.setdefault(info.path, []).append(
                    Finding(
                        getattr(node, "lineno", statement.lineno),
                        getattr(node, "col_offset", statement.col_offset),
                        "RPR004",
                        f"field {statement.target.id!r} of fingerprinted "
                        f"frozen dataclass {name!r}: {detail}",
                    )
                )
    return findings
