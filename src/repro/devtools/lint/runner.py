"""Analyzer driver: gather files, run rules, apply suppressions.

Each file is read and parsed exactly once; per-file rules, the project-wide
canonical-fields pass (RPR004), and the layering checker (RPR008/RPR009)
all share the parse.  Findings funnel through the file's suppression set
before becoming :class:`~repro.devtools.lint.diagnostics.Diagnostic`s, so
a suppressed finding still marks its suppression as used.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.devtools.lint.config import LintConfig, discover_config
from repro.devtools.lint.diagnostics import Diagnostic, LintReport
from repro.devtools.lint.layering import (
    ModuleImports,
    check_layering,
    collect_runtime_imports,
    module_name_for,
)
from repro.devtools.lint.rules import (
    Finding,
    check_canonical_fields,
    check_file,
)
from repro.devtools.lint.suppressions import (
    SuppressionSet,
    apply_suppressions,
    scan_suppressions,
)

PathLike = Union[str, Path]


def gather_files(
    paths: Sequence[PathLike], exclude: Sequence[str] = ()
) -> List[Path]:
    """Expand *paths* into a sorted list of ``.py`` files.

    Directory arguments are walked recursively, skipping ``__pycache__``
    and any directory named in *exclude* (fixture corpora of
    deliberately-bad snippets).  File arguments are always included, so
    the fixture tests can still lint excluded files explicitly.
    """
    skip = {"__pycache__", *exclude}
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in path.rglob("*.py")
                if not skip.intersection(candidate.parts)
            )
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    unique: Dict[Path, None] = {}
    for file in files:
        unique.setdefault(file.resolve(), None)
    return sorted(unique)


class _SourceFile:
    """One parsed input file plus its per-file analysis state."""

    def __init__(self, path: Path, display: str, module: Optional[str], scope: str):
        self.path = path
        self.display = display
        self.module = module
        self.scope = scope
        self.tree: Optional[ast.Module] = None
        self.findings: List[Finding] = []
        self.suppressions = SuppressionSet()


def lint_paths(
    paths: Sequence[PathLike],
    *,
    config: Optional[LintConfig] = None,
    scope: str = "auto",
    relative_to: Optional[PathLike] = None,
) -> LintReport:
    """Run the full analysis over *paths* and return the report.

    Parameters
    ----------
    paths:
        Files and/or directories to analyze.
    config:
        Explicit contract; defaults to discovering the nearest
        pyproject.toml above the first path.
    scope:
        ``"auto"`` classifies each file (library when it resolves to a
        module under the configured package, tests otherwise); pass
        ``"library"`` or ``"tests"`` to force one classification — the
        fixture tests use this to run library rules on snippet files.
    relative_to:
        Base directory diagnostics paths are printed relative to
        (defaults to the current directory when possible).
    """
    if scope not in ("auto", "library", "tests"):
        raise ConfigurationError(
            f"scope must be 'auto', 'library' or 'tests', got {scope!r}"
        )
    if not paths:
        raise ConfigurationError("no Python files to lint under the given paths")
    if config is None:
        config = discover_config(Path(paths[0]))
    files = gather_files(paths, exclude=config.exclude)
    if not files:
        raise ConfigurationError("no Python files to lint under the given paths")
    base = Path(relative_to).resolve() if relative_to is not None else Path.cwd()

    sources: List[_SourceFile] = []
    diagnostics: List[Diagnostic] = []
    for path in files:
        try:
            display = str(path.relative_to(base))
        except ValueError:
            display = str(path)
        module = module_name_for(path, config.package)
        file_scope = scope
        if scope == "auto":
            file_scope = "library" if module is not None else "tests"
        sources.append(_SourceFile(path, display, module, file_scope))

    modules: List[ModuleImports] = []
    parsed_library: List[tuple] = []
    for source in sources:
        text = source.path.read_text()
        try:
            source.tree = ast.parse(text, filename=source.display)
        except SyntaxError as error:
            diagnostics.append(
                Diagnostic(
                    source.display,
                    error.lineno or 1,
                    (error.offset or 1) - 1,
                    "RPR000",
                    f"cannot parse file: {error.msg}",
                )
            )
            continue
        source.findings = check_file(
            source.tree, source.module, source.scope, config
        )
        if source.scope == "library":
            parsed_library.append((source.display, source.tree))
            if source.module is not None:
                modules.append(
                    collect_runtime_imports(
                        source.tree,
                        source.module,
                        source.display,
                        config.package,
                        is_package=source.path.name == "__init__.py",
                    )
                )
        source.suppressions = scan_suppressions(text)

    for project_findings in (
        check_canonical_fields(parsed_library, config),
        check_layering(modules, config),
    ):
        by_display = {source.display: source for source in sources}
        for display, findings in project_findings.items():
            target = by_display.get(display)
            if target is not None:
                target.findings.extend(findings)

    for source in sources:
        if source.tree is None:
            continue
        file_diagnostics = [
            Diagnostic(source.display, f.line, f.column, f.code, f.message)
            for f in source.findings
        ]
        diagnostics.extend(
            apply_suppressions(
                source.display, file_diagnostics, source.suppressions
            )
        )

    return LintReport(
        diagnostics=tuple(sorted(diagnostics)), files_scanned=len(sources)
    )
