"""``repro.devtools.lint`` — determinism/invariant static analysis.

An AST-based analyzer that machine-checks the invariants the run store's
bit-identical-replay promise rests on: seed discipline, wall-clock and
entropy hygiene, canonical JSON, canonicalizable fingerprint dataclasses,
the ``ReproError`` contract, deprecation discipline, schema versioning,
and the import-layering contract declared in pyproject.toml.

Run it as ``python -m repro lint [paths]``; see ``--list-rules`` for the
catalog and ``--explain RPRnnn`` for any rule's full rationale.  Findings
are suppressed per line with ``# repro-lint: disable=RPRnnn -- rationale``.
"""

from repro.devtools.lint.config import LintConfig, discover_config, load_config
from repro.devtools.lint.diagnostics import Diagnostic, LintReport
from repro.devtools.lint.registry import RULES, Rule, get_rule
from repro.devtools.lint.runner import lint_paths

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "discover_config",
    "get_rule",
    "lint_paths",
    "load_config",
]
