"""Analyzer configuration, read from ``[tool.repro-lint]`` in pyproject.toml.

The contract lives next to the ruff/mypy configuration so that one file
declares every gate the tree must pass.  On Python 3.11+ the section is
parsed with :mod:`tomllib`; on 3.10 (still in the CI matrix) a minimal
fallback parser handles the subset this section uses — string scalars and
(nested) arrays of strings — so the analyzer works on every supported
interpreter without adding a dependency.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.common.errors import ConfigurationError

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

#: The pyproject table holding the analyzer configuration.
CONFIG_TABLE = ("tool", "repro-lint")


@dataclass(frozen=True)
class LintConfig:
    """Parsed ``[tool.repro-lint]`` contract.

    Parameters
    ----------
    package:
        Root package name the layering contract governs (``"repro"``).
    layers:
        Declared layer order, lowest first; each entry lists the top-level
        sub-packages of that layer.  A module may import its own layer or
        lower.
    fingerprint_roots:
        Dataclass names whose reachable frozen dataclasses must have
        canonicalizable fields (RPR004).
    deprecated_factories:
        Names of the deprecated factory shims internal modules must not
        import (RPR006).
    factory_allowlist:
        Modules allowed to import the shims: the shim module itself and
        the public re-export facades.
    exclude:
        Directory names skipped when a directory argument is expanded
        (fixture corpora of deliberately-bad snippets).  Files named
        directly on the command line are always linted.
    """

    package: str = "repro"
    layers: Tuple[Tuple[str, ...], ...] = ()
    fingerprint_roots: Tuple[str, ...] = ()
    deprecated_factories: Tuple[str, ...] = ()
    factory_allowlist: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def layer_of(self, subpackage: str) -> Optional[int]:
        """The layer index of a top-level sub-package, or ``None``."""
        for index, layer in enumerate(self.layers):
            if subpackage in layer:
                return index
        return None

    def layer_order_text(self) -> str:
        """The declared order as a one-line arrow diagram."""
        return " -> ".join("/".join(layer) for layer in self.layers)


#: Contract used when no pyproject.toml declares one (fixture trees).
DEFAULT_CONFIG = LintConfig()


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse the ``[tool.repro-lint]`` table from *text* without tomllib.

    Handles exactly the subset the contract uses: a ``[tool.repro-lint]``
    header followed by ``key = <value>`` lines where ``<value>`` is a
    string or a (possibly multi-line, possibly nested) array of strings.
    TOML's syntax for those values is also valid Python literal syntax,
    so each balanced right-hand side funnels through ``ast.literal_eval``.
    """
    table: Dict[str, Any] = {}
    in_section = False
    pending_key: Optional[str] = None
    pending_value = ""

    def flush() -> None:
        nonlocal pending_key, pending_value
        if pending_key is None:
            return
        try:
            table[pending_key] = ast.literal_eval(pending_value.strip())
        except (SyntaxError, ValueError) as error:
            raise ConfigurationError(
                f"cannot parse [tool.repro-lint] value for {pending_key!r}: "
                f"{error}"
            ) from None
        pending_key, pending_value = None, ""

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line.startswith("[") and pending_key is None:
            in_section = line == "[tool.repro-lint]"
            continue
        if not in_section:
            continue
        if pending_key is not None:
            pending_value += " " + line
        else:
            if not line or line.startswith("#"):
                continue
            key, separator, value = line.partition("=")
            if not separator:
                raise ConfigurationError(
                    f"cannot parse [tool.repro-lint] line {raw_line!r}"
                )
            pending_key = key.strip()
            pending_value = value.strip()
        if pending_value.count("[") == pending_value.count("]"):
            flush()
    flush()
    return table


def _load_table(path: Path) -> Dict[str, Any]:
    text = path.read_text()
    if tomllib is not None:
        data: Dict[str, Any] = tomllib.loads(text)
        for key in CONFIG_TABLE:
            data = data.get(key, {})
            if not isinstance(data, dict):
                return {}
        return data
    return _parse_toml_subset(text)


def _string_tuple(value: Any, key: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigurationError(
            f"[tool.repro-lint] {key} must be an array of strings"
        )
    return tuple(value)


def load_config(pyproject: Union[str, Path]) -> LintConfig:
    """Load the analyzer contract from a pyproject.toml file."""
    path = Path(pyproject)
    if not path.is_file():
        raise ConfigurationError(f"no pyproject.toml at {path}")
    table = _load_table(path)
    layers_raw = table.get("layers", [])
    if not isinstance(layers_raw, list):
        raise ConfigurationError(
            "[tool.repro-lint] layers must be an array of arrays of strings"
        )
    layers = tuple(
        _string_tuple(layer, f"layers[{index}]")
        for index, layer in enumerate(layers_raw)
    )
    seen: Dict[str, int] = {}
    for index, layer in enumerate(layers):
        for name in layer:
            if name in seen:
                raise ConfigurationError(
                    f"[tool.repro-lint] package {name!r} appears in both "
                    f"layer {seen[name]} and layer {index}"
                )
            seen[name] = index
    package = table.get("package", "repro")
    if not isinstance(package, str) or not package:
        raise ConfigurationError(
            "[tool.repro-lint] package must be a non-empty string"
        )
    return LintConfig(
        package=package,
        layers=layers,
        fingerprint_roots=_string_tuple(
            table.get("fingerprint-roots", []), "fingerprint-roots"
        ),
        deprecated_factories=_string_tuple(
            table.get("deprecated-factories", []), "deprecated-factories"
        ),
        factory_allowlist=_string_tuple(
            table.get("factory-allowlist", []), "factory-allowlist"
        ),
        exclude=_string_tuple(table.get("exclude", []), "exclude"),
    )


def discover_config(start: Union[str, Path]) -> LintConfig:
    """Find and load the nearest pyproject.toml at or above *start*.

    Falls back to :data:`DEFAULT_CONFIG` when no ancestor declares one, so
    the analyzer still runs (with layering/fingerprint checks inert) on a
    bare directory of snippets.
    """
    directory = Path(start).resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate_dir in (directory, *directory.parents):
        candidate = candidate_dir / "pyproject.toml"
        if candidate.is_file():
            return load_config(candidate)
    return DEFAULT_CONFIG
