"""``python -m repro.devtools.lint`` — standalone analyzer entry point."""

import sys

from repro.devtools.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
