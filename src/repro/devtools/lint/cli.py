"""The ``python -m repro lint`` front end.

Exit codes: ``0`` clean, ``1`` findings, ``2`` configuration error (the
shared :mod:`repro.store.cli` entry point maps :class:`ReproError` to 2).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.devtools.lint.config import load_config
from repro.devtools.lint.registry import RULES, get_rule
from repro.devtools.lint.runner import lint_paths


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments to *parser* (shared with ``-m repro``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--json-report",
        default=None,
        metavar="PATH",
        help="also write the machine-readable report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="CODE",
        help="print the full rationale of one rule code and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule code with its one-line summary and exit",
    )
    parser.add_argument(
        "--pyproject",
        default=None,
        metavar="PATH",
        help="contract file (default: nearest pyproject.toml above the paths)",
    )
    parser.add_argument(
        "--scope",
        choices=("auto", "library", "tests"),
        default="auto",
        help=(
            "rule scope: auto classifies per file, library/tests force one "
            "(default: auto)"
        ),
    )


def _explain(code: str) -> int:
    rule = get_rule(code)
    print(f"{rule.code} ({rule.name}) — {rule.summary}")
    print()
    print(rule.explanation)
    print()
    print(
        f"Suppress on one line with: # repro-lint: disable={rule.code} "
        "-- <rationale>"
    )
    return 0


def _list_rules() -> int:
    for code in sorted(RULES):
        rule = RULES[code]
        scopes = "+".join(sorted(rule.scopes))
        print(f"{code}  [{scopes:13s}]  {rule.summary}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the exit code."""
    if args.explain is not None:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()
    config = None
    if args.pyproject is not None:
        config = load_config(args.pyproject)
    report = lint_paths(args.paths, config=config, scope=args.scope)
    if args.json_report is not None:
        _write_json(Path(args.json_report), report)
    if args.format == "json":
        print(_render_json(report))
    else:
        print(report.format_text())
    return 0 if report.clean else 1


def _render_json(report) -> str:
    import json

    return json.dumps(
        report.to_dict(), indent=2, sort_keys=True, allow_nan=False
    )


def _write_json(path: Path, report) -> None:
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_render_json(report) + "\n")


def main(argv: Optional[list] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.lint``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Determinism/invariant static analysis for the repro tree.",
    )
    add_arguments(parser)
    try:
        return run(parser.parse_args(argv))
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
