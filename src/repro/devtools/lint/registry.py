"""The rule catalog: stable codes, one-line summaries, ``--explain`` texts.

Every code is permanent once shipped — retired rules keep their number and
are never reused, so a suppression comment or a CI annotation written today
still means the same thing in two years.

Rules carry a *scope* set deciding where they apply:

* ``"library"`` — files that resolve to a module under the ``repro``
  package (i.e. the shipped source tree).
* ``"tests"`` — everything else handed to the analyzer (the test suite,
  fixture snippets).  Only replay-critical rules apply there: a test that
  draws from global RNG state is as unreproducible as library code that
  does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.common.errors import ConfigurationError

LIBRARY = frozenset({"library"})
EVERYWHERE = frozenset({"library", "tests"})


@dataclass(frozen=True)
class Rule:
    """Metadata of one analyzer rule."""

    code: str
    name: str
    summary: str
    explanation: str
    scopes: FrozenSet[str]


def _rule(code: str, name: str, summary: str, explanation: str, scopes=LIBRARY) -> Rule:
    return Rule(
        code=code,
        name=name,
        summary=summary,
        explanation=explanation.strip(),
        scopes=scopes,
    )


RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        _rule(
            "RPR000",
            "suppression-hygiene",
            "suppression comments must parse, carry a rationale, and be used",
            """
Suppressions are part of the audit trail: `# repro-lint: disable=RPRnnn --
<why>` records *who decided this finding is acceptable and why*.  RPR000
fires when a suppression comment is malformed, names an unknown rule code,
omits the `-- rationale` tail, or suppresses a code that does not actually
fire on its line (a stale suppression hides future regressions).  It also
reports files the analyzer cannot parse.  RPR000 itself cannot be
suppressed.
""",
            EVERYWHERE,
        ),
        _rule(
            "RPR001",
            "seed-discipline",
            "no stdlib random, no numpy global RNG, no entropy-seeded generators",
            """
Every stochastic draw in this codebase must flow from an explicit,
recorded seed — that is what makes seeded sweeps bit-identical on replay
and keeps content-addressed run IDs meaningful.  RPR001 flags: importing
the stdlib `random` module; calls through numpy's *global* RNG state
(`np.random.seed`, `np.random.normal`, `np.random.rand`, ...), which any
other caller can silently reseed; `np.random.default_rng()` called without
an explicit seed argument; and `np.random.SeedSequence()` called without
entropy, which harvests OS entropy.  Use `np.random.default_rng(seed)`
with a seed that is recorded in the result payload.  This rule also
applies to tests: a test drawing from global RNG state is order-dependent.
""",
            EVERYWHERE,
        ),
        _rule(
            "RPR002",
            "nondeterminism-hazard",
            "no wall-clock reads, OS entropy, or id()-fed hashes in library code",
            """
Run identity is `sha256(spec x workload x seed x engine version)` — nothing
time- or process-dependent may leak into results or fingerprints.  RPR002
flags wall-clock reads (`time.time`, `time.monotonic`, `time.perf_counter`,
`datetime.now`, `datetime.utcnow`, `date.today`), OS entropy
(`os.urandom`, `uuid.uuid1`, `uuid.uuid4`, `secrets.*`), and `id(...)`
feeding `hash()` or a `hashlib` digest (CPython ids are address-derived
and differ between processes).  Legitimate uses — timestamping a manifest
*as metadata*, naming a temp file — must carry a suppression whose
rationale states why the value can never reach a fingerprint.
""",
        ),
        _rule(
            "RPR003",
            "json-canonicality",
            "json.dumps/json.dump must pass sort_keys=True and allow_nan=False",
            """
Stored artifacts and hashed payloads must serialize canonically: key order
fixed by sorting, and NaN/Infinity rejected (their JSON spelling is not
valid JSON, round-trips asymmetrically, and NaN breaks equality checks on
replay).  RPR003 fires on any `json.dumps`/`json.dump` call in library
code that does not pass both `sort_keys=True` and `allow_nan=False` as
literal keyword arguments.  A dumps whose output is provably never
persisted or hashed may be suppressed with a rationale saying so.
""",
        ),
        _rule(
            "RPR004",
            "canonical-fields",
            "fingerprinted frozen dataclasses must have canonicalizable fields",
            """
The run store renders frozen spec/workload dataclasses to canonical JSON
field-by-field (`repro.store.hashing.canonical_payload`).  That rendering
rejects sets (unordered — iteration order would leak into the hash),
mappings with non-string keys (JSON objects only have string keys), and
cannot protect mutable defaults (`field(default_factory=list)` & friends)
from post-construction aliasing.  RPR004 walks the dataclass-reference
graph from the configured fingerprint roots (`SystemSpec`, the workload
descriptors) and flags any reachable frozen dataclass whose field
annotations mention `set`/`frozenset`, whose `Dict`/`Mapping` keys are not
`str`, or whose defaults are built by a mutable factory.
""",
        ),
        _rule(
            "RPR005",
            "error-discipline",
            "library raises must derive from ReproError",
            """
Callers are promised they can `except ReproError` around any library call
without swallowing unrelated bugs — a bare `ValueError` raised by a model
breaks that contract and escapes study executors' error accounting.
RPR005 flags `raise` statements whose exception is a builtin
(`ValueError`, `TypeError`, `KeyError`, `RuntimeError`, ...).  Use
`ConfigurationError`, `ConstraintViolation`, `SimulationError`,
`StoreError`, or a new `ReproError` subclass.  `NotImplementedError` (an
abstractness marker, not an error signal) is always allowed; protocol
obligations such as `KeyError` from a `MutableMapping.__getitem__` must be
suppressed with a rationale naming the protocol.
""",
        ),
        _rule(
            "RPR006",
            "deprecation-discipline",
            "internal modules may not import the deprecated factory shims",
            """
The factory trio (`darkgates_system`, `baseline_system`,
`darkgates_c7_limited_system`) survives only as warning shims over
`get_spec(...).variant(...).build()`.  An internal module importing a shim
would either warn on every library call or — worse — motivate someone to
remove the warning.  RPR006 flags imports of the configured deprecated
names anywhere except the shim module itself and the public re-export
facades listed in the `factory-allowlist` pyproject key.
""",
        ),
        _rule(
            "RPR007",
            "schema-discipline",
            "result/manifest to_dict payloads must emit schema_version",
            """
Persisted payloads are validated on read against the schema version they
were written with; a `to_dict` that omits `schema_version` produces
artifacts that a future reader cannot safely reject.  RPR007 fires on any
`to_dict` method of a class whose name ends in `Result` or `Manifest`
that never mentions a `"schema_version"` key (abstract `to_dict`s that
only raise `NotImplementedError` are exempt — their overriders are
checked instead).
""",
        ),
        _rule(
            "RPR008",
            "layering-contract",
            "imports must respect the declared layer order of pyproject.toml",
            """
The package layering (`[tool.repro-lint].layers` in pyproject.toml)
declares the order common -> devtools/power/pdn/soc/reliability/pmu/
workloads -> sim -> core/variation/analysis -> store: a module may
import its own layer or lower, never higher.  RPR008 fires on a module-level runtime import that points
up the stack, and on any package the contract does not assign a layer.
Imports inside `if TYPE_CHECKING:` blocks and inside function bodies are
exempt — they do not execute at import time, which is the graph the
contract constrains.  The package root (`repro/__init__.py`,
`repro/__main__.py`) is the public facade and re-exports every layer.
""",
        ),
        _rule(
            "RPR009",
            "import-cycle",
            "the runtime import graph must be acyclic",
            """
An import cycle makes module initialisation order-dependent: which names
exist when a module body runs depends on who imported whom first, and the
failure mode (`ImportError: partially initialized module`) appears only
under specific entry points.  RPR009 reports every module participating
in a strongly-connected component of the module-level runtime import
graph.  Break cycles by moving shared types down a layer, deferring the
import into the function that needs it, or gating it behind
`if TYPE_CHECKING:`.
""",
        ),
    )
}


def get_rule(code: str) -> Rule:
    """Look a rule up by code (raises :class:`ConfigurationError` if unknown)."""
    normalized = code.strip().upper()
    try:
        return RULES[normalized]
    except KeyError:
        raise ConfigurationError(
            f"unknown rule code {code!r}; known: {', '.join(sorted(RULES))}"
        ) from None
