"""Developer tooling for the repro codebase.

Unlike every other package in the library, :mod:`repro.devtools` operates on
the *source tree* rather than on models: it hosts the static-analysis pass
(:mod:`repro.devtools.lint`) that machine-checks the determinism and
layering invariants the run store depends on.  It may import
:mod:`repro.common` and nothing else, so that linting never drags the
numeric stack (or numpy) into the process.
"""

from repro.devtools.lint import Diagnostic, LintReport, lint_paths

__all__ = ["Diagnostic", "LintReport", "lint_paths"]
