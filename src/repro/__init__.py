"""DarkGates reproduction library.

A Python model of *DarkGates: A Hybrid Power-Gating Architecture to Mitigate
the Performance Impact of Dark-Silicon in High Performance Processors*
(HPCA 2022).  The library models the power-delivery network, power and
thermal behaviour, power-management firmware, and workloads of a
Skylake-class client SoC, and uses them to reproduce the paper's evaluation:
SPEC CPU2006 gains, 3DMark impact, and ENERGY STAR / RMT average power.

Quickstart — declare systems, run workloads, sweep grids::

    from repro import SimulationEngine, Study, get_spec, spec_cpu2006_base_suite

    # 1. Systems are declarative specs; .build() assembles the firmware.
    darkgates = get_spec("darkgates")              # Skylake-S, bypassed, C8
    baseline = get_spec("baseline")                # Skylake-H, gated, C7
    low_power = darkgates.variant(tdp_w=35.0)      # any field is overridable

    # 2. One polymorphic entry point runs any workload class.
    engine = SimulationEngine(darkgates.build())
    result = engine.run(spec_cpu2006_base_suite()[0])   # -> CpuRunResult
    print(result.to_dict())                             # JSON round-trips

    # 3. Studies sweep specs x workloads (serially or on a process pool),
    #    cache per-(spec, workload) results, and serialise to JSON.
    study = Study.over_tdp_levels(
        ("darkgates", "baseline"),
        tdp_levels_w=(35.0, 91.0),
        workloads=spec_cpu2006_base_suite(),
        executor="process",
    )
    grid = study.run()
    gain = grid.get(darkgates.variant(tdp_w=91.0), "416.gamess").improvement_over(
        grid.get(get_spec("baseline", tdp_w=91.0), "416.gamess")
    )
    print(grid.as_table())

    # 4. Inverse queries invert the sweep: declare constraints and an
    #    objective, and the solver bisects instead of scanning densely.
    from repro import Constraint, Objective, OptimizationSpec
    from repro.pmu.dvfs import CpuDemand

    query = OptimizationSpec(
        name="min-tdp",
        method="bisect",
        objectives=(Objective("tdp_w", "min"),),
        constraints=(Constraint("sustained_frequency_hz", ">=", 3.0e9),),
        variables={"tdp_w": tuple(range(10, 92))},
    )
    answer = Study.optimize(
        ("darkgates", "baseline"), query, demand=CpuDemand(active_cores=4)
    ).run()
    print(answer.as_table())

Migrating from the 1.0 API:

=====================================================  ==================================================================
Old call                                               New call
=====================================================  ==================================================================
``darkgates_system(tdp_w)``                            ``get_spec("darkgates", tdp_w=tdp_w).build()``
``baseline_system(tdp_w)``                             ``get_spec("baseline", tdp_w=tdp_w).build()``
``darkgates_c7_limited_system(tdp_w)``                 ``get_spec("darkgates+c7", tdp_w=tdp_w).build()``
``engine.run_cpu_workload(w)``                         ``engine.run(w)`` (per-class methods remain available)
``engine.run_graphics_workload(w)``                    ``engine.run(w)``
``engine.run_energy_scenario(s)``                      ``engine.run(s)``
hand-rolled sweep loops                                ``Study(specs, workloads).run()`` / ``Study.over_tdp_levels(...)``
=====================================================  ==================================================================

The deprecated factories still work and emit :class:`DeprecationWarning`;
:class:`SystemComparison` is unchanged.
"""

from repro.analysis.optimize import (
    Constraint,
    Objective,
    OptimizationResult,
    OptimizationSpec,
    OptimizationStudy,
)
from repro.analysis.study import (
    CallableTask,
    ProcessExecutor,
    SerialExecutor,
    Study,
    StudyResult,
    SweepRequest,
)
from repro.core.darkgates import (
    SystemComparison,
    baseline_system,
    darkgates_c7_limited_system,
    darkgates_system,
)
from repro.core.overhead import darkgates_overheads

# Importing the fleet package also registers the named fleet profiles in
# SCENARIO_BUILDERS, so "fleet-*" scenarios resolve by name everywhere
# (including the python -m repro CLI).
from repro.fleet import (
    ArrivalProcess,
    DiurnalArrivals,
    DutyCycleArrivals,
    EnsembleQos,
    FleetProfile,
    OnOffArrivals,
    PoissonArrivals,
    QosAccumulator,
    QosReport,
    ScenarioGenerator,
    aggregate_reports,
    fleet_profile,
    fleet_profile_names,
)
from repro.core.spec import (
    SystemSpec,
    build_engine,
    get_spec,
    register_spec,
    spec_names,
)
from repro.pdn.transients import (
    LoadTrace,
    TraceBuilder,
    TransientScenario,
    paper_transient_scenarios,
)
from repro.pmu.pcode import Pcode
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    CpuRunResult,
    EnergyRunResult,
    GraphicsRunResult,
    RunResult,
    TransientRunResult,
)
from repro.store import RunIndex, RunManifest, RunStore, StoreCache
from repro.variation import (
    BinningPolicy,
    DiePopulation,
    DiePopulationSampler,
    DieVariation,
    ParameterVariation,
    PopulationResult,
    PopulationStudy,
    VariationModel,
    skylake_binning_policy,
    skylake_process_variation,
)
from repro.workloads.descriptors import Workload
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.spec import (
    spec_cpu2006_base_suite,
    spec_cpu2006_rate_suite,
    spec_cpu2006_suite,
)

__version__ = "1.4.0"

__all__ = [
    "SystemSpec",
    "build_engine",
    "get_spec",
    "register_spec",
    "spec_names",
    "Study",
    "StudyResult",
    "SweepRequest",
    "Objective",
    "Constraint",
    "OptimizationSpec",
    "OptimizationResult",
    "OptimizationStudy",
    "CallableTask",
    "SerialExecutor",
    "ProcessExecutor",
    "SystemComparison",
    "baseline_system",
    "darkgates_c7_limited_system",
    "darkgates_system",
    "darkgates_overheads",
    "Pcode",
    "SimulationEngine",
    "Workload",
    "RunResult",
    "CpuRunResult",
    "GraphicsRunResult",
    "EnergyRunResult",
    "TransientRunResult",
    "LoadTrace",
    "TraceBuilder",
    "TransientScenario",
    "paper_transient_scenarios",
    "energy_star_scenario",
    "rmt_scenario",
    "three_dmark_suite",
    "spec_cpu2006_base_suite",
    "spec_cpu2006_rate_suite",
    "spec_cpu2006_suite",
    "ParameterVariation",
    "VariationModel",
    "skylake_process_variation",
    "DieVariation",
    "DiePopulation",
    "DiePopulationSampler",
    "BinningPolicy",
    "skylake_binning_policy",
    "PopulationStudy",
    "PopulationResult",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "OnOffArrivals",
    "DutyCycleArrivals",
    "FleetProfile",
    "ScenarioGenerator",
    "fleet_profile",
    "fleet_profile_names",
    "QosReport",
    "QosAccumulator",
    "EnsembleQos",
    "aggregate_reports",
    "RunStore",
    "RunManifest",
    "RunIndex",
    "StoreCache",
    "__version__",
]
