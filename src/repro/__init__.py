"""DarkGates reproduction library.

A Python model of *DarkGates: A Hybrid Power-Gating Architecture to Mitigate
the Performance Impact of Dark-Silicon in High Performance Processors*
(HPCA 2022).  The library models the power-delivery network, power and
thermal behaviour, power-management firmware, and workloads of a
Skylake-class client SoC, and uses them to reproduce the paper's evaluation:
SPEC CPU2006 gains, 3DMark impact, and ENERGY STAR / RMT average power.

Quickstart::

    from repro import SystemComparison, spec_cpu2006_base_suite

    comparison = SystemComparison(tdp_w=91.0)
    gain = comparison.average_cpu_improvement(spec_cpu2006_base_suite())
    print(f"DarkGates improves SPEC base by {gain * 100:.1f}% at 91 W")
"""

from repro.core.darkgates import (
    SystemComparison,
    baseline_system,
    darkgates_c7_limited_system,
    darkgates_system,
)
from repro.core.overhead import darkgates_overheads
from repro.pmu.pcode import Pcode
from repro.sim.engine import SimulationEngine
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.spec import (
    spec_cpu2006_base_suite,
    spec_cpu2006_rate_suite,
    spec_cpu2006_suite,
)

__version__ = "1.0.0"

__all__ = [
    "SystemComparison",
    "baseline_system",
    "darkgates_c7_limited_system",
    "darkgates_system",
    "darkgates_overheads",
    "Pcode",
    "SimulationEngine",
    "energy_star_scenario",
    "rmt_scenario",
    "three_dmark_suite",
    "spec_cpu2006_base_suite",
    "spec_cpu2006_rate_suite",
    "spec_cpu2006_suite",
    "__version__",
]
