"""Electromigration (EM) bump-current model.

Section 4.2 notes an upside of bypassing: with all core voltage domains
shorted, every package bump of the merged domain can carry any core's
current, so the worst-case current per bump drops and electromigration
margins improve.  This module models that effect with simple bump-count
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive


@dataclass(frozen=True)
class BumpCurrentModel:
    """Per-bump current of gated versus bypassed core voltage domains.

    Parameters
    ----------
    bumps_per_core_domain:
        Package bumps allocated to one core's gated voltage domain.
    shared_domain_extra_bumps:
        Bumps of the shared (ungated) domain that become usable by every
        core once the domains are merged.
    max_bump_current_a:
        Electromigration-limited current per bump.
    """

    bumps_per_core_domain: int = 120
    shared_domain_extra_bumps: int = 80
    max_bump_current_a: float = 0.25

    def __post_init__(self) -> None:
        if self.bumps_per_core_domain < 1 or self.shared_domain_extra_bumps < 0:
            raise ConfigurationError("bump counts must be positive")
        ensure_positive(self.max_bump_current_a, "max_bump_current_a")

    def per_bump_current_gated_a(self, core_current_a: float) -> float:
        """Worst-case bump current when each core has its own domain."""
        ensure_positive(core_current_a, "core_current_a")
        return core_current_a / self.bumps_per_core_domain

    def per_bump_current_bypassed_a(
        self, core_current_a: float, core_count: int, active_cores: int
    ) -> float:
        """Worst-case bump current with all domains merged.

        With the domains shorted, the bumps of every core domain plus the
        shared domain spread the combined current of the active cores.
        """
        if core_count < 1 or not 0 <= active_cores <= core_count:
            raise ConfigurationError("invalid core counts")
        ensure_positive(core_current_a, "core_current_a")
        total_bumps = (
            self.bumps_per_core_domain * core_count + self.shared_domain_extra_bumps
        )
        total_current = core_current_a * active_cores
        return total_current / total_bumps

    def em_margin_gated(self, core_current_a: float) -> float:
        """EM margin (limit / actual) of the gated configuration."""
        return self.max_bump_current_a / self.per_bump_current_gated_a(core_current_a)

    def em_margin_bypassed(
        self, core_current_a: float, core_count: int = 4, active_cores: int = 4
    ) -> float:
        """EM margin (limit / actual) of the bypassed configuration."""
        return self.max_bump_current_a / self.per_bump_current_bypassed_a(
            core_current_a, core_count, active_cores
        )

    def bypass_improves_margin(
        self, core_current_a: float, core_count: int = 4, active_cores: int = 4
    ) -> bool:
        """True when merging the domains improves the worst-case EM margin."""
        return self.em_margin_bypassed(
            core_current_a, core_count, active_cores
        ) >= self.em_margin_gated(core_current_a)
