"""Lifetime-reliability model.

Section 4.2 of the paper notes that bypassing the power-gates changes the
reliability picture in two opposite ways: sharing every bump between the
cores relieves electromigration, but keeping idle cores powered increases
stress time and junction temperature (~5 degC), which costs a small extra
reliability guardband — "less than 5 mV / 20 mV ... for 91 W / 35 W".

* :mod:`repro.reliability.aging` — voltage/temperature aging acceleration
  and the stress-time bookkeeping.
* :mod:`repro.reliability.guardband` — conversion of the extra stress into
  the reliability guardband the firmware adds in bypass mode.
* :mod:`repro.reliability.electromigration` — bump-current electromigration
  margin of gated versus bypassed packages.
"""

from repro.reliability.aging import AgingModel, StressProfile
from repro.reliability.electromigration import BumpCurrentModel
from repro.reliability.guardband import ReliabilityGuardbandModel

__all__ = [
    "AgingModel",
    "StressProfile",
    "BumpCurrentModel",
    "ReliabilityGuardbandModel",
]
