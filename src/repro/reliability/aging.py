"""Voltage/temperature aging model.

Transistor aging (NBTI, TDDB) and interconnect wear accelerate with both
voltage and temperature.  The model here is the standard compact form used
for architectural reliability budgeting: an Arrhenius temperature term and
an exponential voltage term, applied to the fraction of lifetime the circuit
spends under stress.

DarkGates needs this because bypass mode keeps idle cores powered: their
stress-time fraction rises from "only while active" to "whenever the rail is
up", and the extra leakage warms the die by roughly 5 degC (Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.validation import ensure_in_range, ensure_non_negative, ensure_positive

#: Boltzmann constant in eV/K.
_BOLTZMANN_EV_PER_K = 8.617333e-5


@dataclass(frozen=True)
class StressProfile:
    """How much stress one configuration puts on a core over its lifetime.

    Parameters
    ----------
    powered_time_fraction:
        Fraction of the product lifetime the core's rail is up.
    average_voltage_v:
        Average rail voltage while powered.
    average_temperature_c:
        Average junction temperature while powered.
    """

    powered_time_fraction: float
    average_voltage_v: float
    average_temperature_c: float

    def __post_init__(self) -> None:
        ensure_in_range(self.powered_time_fraction, 0.0, 1.0, "powered_time_fraction")
        ensure_positive(self.average_voltage_v, "average_voltage_v")


@dataclass(frozen=True)
class AgingModel:
    """Compact aging-rate model.

    Parameters
    ----------
    voltage_acceleration_per_v:
        Exponential voltage-acceleration coefficient (1/V).
    activation_energy_ev:
        Arrhenius activation energy (eV).
    reference_voltage_v / reference_temperature_c:
        Operating point at which the rate is defined as 1.0.
    """

    voltage_acceleration_per_v: float = 50.0
    activation_energy_ev: float = 0.45
    reference_voltage_v: float = 1.0
    reference_temperature_c: float = 70.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.voltage_acceleration_per_v, "voltage_acceleration_per_v")
        ensure_non_negative(self.activation_energy_ev, "activation_energy_ev")
        ensure_positive(self.reference_voltage_v, "reference_voltage_v")

    def relative_rate(self, voltage_v: float, temperature_c: float) -> float:
        """Aging rate relative to the reference operating point."""
        ensure_positive(voltage_v, "voltage_v")
        voltage_term = math.exp(
            self.voltage_acceleration_per_v * (voltage_v - self.reference_voltage_v)
        )
        t_kelvin = temperature_c + 273.15
        t_ref_kelvin = self.reference_temperature_c + 273.15
        temperature_term = math.exp(
            (self.activation_energy_ev / _BOLTZMANN_EV_PER_K)
            * (1.0 / t_ref_kelvin - 1.0 / t_kelvin)
        )
        return voltage_term * temperature_term

    def lifetime_consumption(self, profile: StressProfile) -> float:
        """Relative lifetime consumed by a stress profile.

        1.0 corresponds to spending the whole lifetime at the reference
        operating point; smaller is better.
        """
        return profile.powered_time_fraction * self.relative_rate(
            profile.average_voltage_v, profile.average_temperature_c
        )

    def extra_consumption(
        self, baseline: StressProfile, candidate: StressProfile
    ) -> float:
        """Additional lifetime consumption of *candidate* over *baseline*."""
        return self.lifetime_consumption(candidate) - self.lifetime_consumption(baseline)

    def voltage_derating_for_equal_lifetime(
        self, baseline: StressProfile, candidate: StressProfile
    ) -> float:
        """Voltage reduction (volts) that restores the baseline lifetime.

        If the candidate profile consumes lifetime faster than the baseline,
        running it at a slightly lower voltage compensates.  The returned
        value is how much lower the candidate's average voltage needs to be —
        which the firmware applies as an extra *reliability guardband*
        (it lowers the usable Vmax by the same amount).
        """
        baseline_consumption = self.lifetime_consumption(baseline)
        candidate_consumption = self.lifetime_consumption(candidate)
        if candidate_consumption <= baseline_consumption or baseline_consumption <= 0:
            return 0.0
        ratio = candidate_consumption / baseline_consumption
        return math.log(ratio) / self.voltage_acceleration_per_v
