"""Reliability guardband required by bypass mode.

The firmware converts the extra aging stress of bypass mode (idle cores stay
powered, the die runs ~5 degC warmer) into a small additional voltage
guardband so that the product still meets its rated lifetime.  The paper
states the result: less than 5 mV at 91 W TDP and less than 20 mV at 35 W
TDP (Section 4.2) — lower-TDP parts need more because their baseline cores
spend a larger fraction of time power-gated, so bypassing changes their
stress profile more, and their smaller coolers run the silicon relatively
warmer for the same relative load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import ensure_in_range, ensure_positive
from repro.reliability.aging import AgingModel, StressProfile

#: TDP anchor points between which :meth:`ReliabilityGuardbandModel.margin_for_tdp`
#: interpolates (the paper quotes guardbands at exactly these two desktops).
LOW_TDP_ANCHOR_W = 35.0
HIGH_TDP_ANCHOR_W = 91.0


@dataclass(frozen=True)
class ReliabilityGuardbandModel:
    """Derives the bypass-mode reliability guardband for a TDP configuration.

    Parameters
    ----------
    aging:
        The aging-rate model.
    baseline_powered_fraction:
        Fraction of lifetime a core is powered in the *gated* baseline
        (it is gated whenever idle).
    bypass_temperature_rise_c:
        Extra junction temperature in bypass mode from the leakage of
        un-gated idle cores (the paper quotes roughly 5 degC).
    average_voltage_v:
        Average rail voltage over the product lifetime.
    """

    aging: AgingModel = AgingModel()
    bypass_temperature_rise_c: float = 5.0
    average_voltage_v: float = 1.05

    def __post_init__(self) -> None:
        ensure_positive(self.average_voltage_v, "average_voltage_v")

    def guardband_v(
        self,
        tdp_w: float,
        baseline_powered_fraction: float,
        average_temperature_c: float,
    ) -> float:
        """Reliability guardband for one TDP configuration.

        Parameters
        ----------
        tdp_w:
            TDP of the configuration (only used for reporting sanity).
        baseline_powered_fraction:
            Fraction of lifetime a core is powered (and stressed) in the
            gated baseline; bypass mode raises this to 1.0.
        average_temperature_c:
            Average junction temperature of the baseline configuration.
        """
        ensure_positive(tdp_w, "tdp_w")
        ensure_in_range(
            baseline_powered_fraction, 0.0, 1.0, "baseline_powered_fraction"
        )
        baseline = StressProfile(
            powered_time_fraction=baseline_powered_fraction,
            average_voltage_v=self.average_voltage_v,
            average_temperature_c=average_temperature_c,
        )
        bypassed = StressProfile(
            powered_time_fraction=1.0,
            average_voltage_v=self.average_voltage_v,
            average_temperature_c=average_temperature_c + self.bypass_temperature_rise_c,
        )
        return self.aging.voltage_derating_for_equal_lifetime(baseline, bypassed)

    def guardband_for_high_tdp_desktop(self) -> float:
        """Reliability guardband of a 91 W desktop (paper: < 5 mV).

        High-TDP desktops run heavier sustained loads, so their cores are
        powered most of the time even with gating available — bypassing
        changes little.
        """
        return self.guardband_v(
            tdp_w=91.0, baseline_powered_fraction=0.95, average_temperature_c=72.0
        )

    def guardband_for_low_tdp_desktop(self) -> float:
        """Reliability guardband of a 35 W desktop (paper: < 20 mV).

        Low-TDP systems idle (and gate) their cores much more, so bypass
        mode increases their stress-time fraction substantially.
        """
        return self.guardband_v(
            tdp_w=35.0, baseline_powered_fraction=0.60, average_temperature_c=66.0
        )

    def margin_for_tdp(self, tdp_w: float) -> float:
        """Bypass-mode reliability guardband for an arbitrary TDP configuration.

        Interpolates linearly between the paper's two anchor points
        (< 20 mV at 35 W, < 5 mV at 91 W) and clamps outside them.
        """
        ensure_positive(tdp_w, "tdp_w")
        low = self.guardband_for_low_tdp_desktop()
        high = self.guardband_for_high_tdp_desktop()
        if tdp_w <= LOW_TDP_ANCHOR_W:
            return low
        if tdp_w >= HIGH_TDP_ANCHOR_W:
            return high
        fraction = (tdp_w - LOW_TDP_ANCHOR_W) / (HIGH_TDP_ANCHOR_W - LOW_TDP_ANCHOR_W)
        return low + fraction * (high - low)
