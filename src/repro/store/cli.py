"""``python -m repro`` — drive studies through the persistent run store.

Subcommands::

    run        execute a sweep (specs x scenarios/suites x TDPs), persisting
               every cell; warm cells are served from the store
    optimize   solve an inverse query (min TDP for a frequency target, or
               yield x ASP SKU cutoffs) instead of sweeping densely
    summarize  tabulate stored runs matching filters
    index      rebuild the cross-run SQLite index from the on-disk manifests
    compare    join two specs' stored runs and report metric ratios
    gc         collect stale runs (dry-run by default; --apply deletes)
    lint       static determinism/invariant analysis of the source tree
               (see :mod:`repro.devtools.lint`)

Examples::

    python -m repro run --spec darkgates --spec baseline \\
        --scenario burst --tdp 35 --tdp 91
    python -m repro run --spec darkgates --scenario sustained --tdp 65 \\
        --population 10000 --shard-size 2048 --seed 7
    python -m repro run --spec darkgates --spec baseline \\
        --profile datacenter --ensemble 8 --tdp 35 --seed 7
    python -m repro optimize --spec darkgates --spec baseline \\
        --target-ghz 3.0 --tdp-grid 10:91:5 --cores 4
    python -m repro optimize --spec darkgates --population 10000 --seed 7 \\
        --asp premium-desktop=450 --asp mainstream-mobile=220 \\
        --cutoff premium-desktop:4.0:4.5:0.1
    python -m repro index
    python -m repro summarize --spec darkgates --kind dynamic --tdp 35
    python -m repro compare --spec darkgates --spec baseline --tdp 35
    python -m repro gc --apply
    python -m repro lint src/repro tests --json-report lint-report.json
    python -m repro lint --explain RPR003

The store root comes from ``--store``, the ``REPRO_STORE_DIR`` environment
variable, or ``~/.repro_store``, in that order.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.study import Study
from repro.common.errors import ConfigurationError, ReproError
from repro.devtools.lint import cli as lint_cli
from repro.sim.engine import ENGINE_VERSION
from repro.store.artifacts import RunStore
from repro.store.cache import StoreCache
from repro.store.index import RunIndex
from repro.workloads.dynamics import build_scenario, scenario_names
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.spec import spec_cpu2006_base_suite, spec_cpu2006_rate_suite

#: Steady-state workload suites runnable by name from the CLI.
SUITE_BUILDERS = {
    "spec-base": lambda: list(spec_cpu2006_base_suite()),
    "spec-rate": lambda: list(spec_cpu2006_rate_suite(4)),
    "3dmark": lambda: list(three_dmark_suite()),
    "energy": lambda: [energy_star_scenario(), rmt_scenario()],
}


def _parse_opt(text: str) -> Any:
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def _scenario_options(pairs: Sequence[str]) -> Dict[str, Any]:
    options: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ConfigurationError(
                f"bad --opt {pair!r}: expected key=value (e.g. duration_s=6)"
            )
        options[key] = _parse_opt(value)
    return options


def _format_metric(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4f}"


# -- subcommand handlers ---------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    cache = StoreCache(store=store, seed=args.seed)
    if args.profile:
        return _cmd_run_fleet(args, store, cache)
    if args.ensemble is not None:
        raise ConfigurationError(
            "--ensemble sizes a fleet scenario ensemble; pass --profile "
            "NAME to pick the fleet profile"
        )
    if args.population is not None:
        return _cmd_run_population(args, store, cache)
    if args.shard_size is not None:
        raise ConfigurationError(
            "--shard-size streams a die population; pass --population N "
            "to pick the population size"
        )
    if bool(args.scenario) == bool(args.suite):
        raise ConfigurationError(
            "pick exactly one of --scenario (dynamic timeline) or --suite "
            f"(steady-state workloads); scenarios: {sorted(scenario_names())}, "
            f"suites: {sorted(SUITE_BUILDERS)}"
        )
    kwargs: Dict[str, Any] = {
        "cache": cache,
        "seed": args.seed,
        "name": args.name,
    }
    if args.executor is not None:
        kwargs["executor"] = args.executor
    if args.max_workers is not None:
        kwargs["max_workers"] = args.max_workers
    if args.scenario:
        options = _scenario_options(args.opt)
        scenarios = [build_scenario(name, **options) for name in args.scenario]
        study = Study.over_dynamics(
            args.spec, scenarios, tdp_levels_w=args.tdp or None, **kwargs
        )
    else:
        unknown = [name for name in args.suite if name not in SUITE_BUILDERS]
        if unknown:
            raise ConfigurationError(
                f"unknown suite(s) {unknown}; known: {sorted(SUITE_BUILDERS)}"
            )
        suites = {name: SUITE_BUILDERS[name]() for name in args.suite}
        if args.tdp:
            study = Study.over_tdp_levels(args.spec, args.tdp, suites, **kwargs)
        else:
            study = Study(args.spec, suites, **kwargs)
    result = study.run()
    print(result.as_table())
    served = len(study) - study.tasks_executed
    print(
        f"{study.tasks_executed} task(s) executed, "
        f"{served} served from the store ({store.root})"
    )
    indexed = RunIndex(store).rebuild()
    print(f"index: {indexed} run(s)")
    return 0


def _cmd_run_fleet(
    args: argparse.Namespace, store: RunStore, cache: StoreCache
) -> int:
    """``run --profile NAME [--ensemble N]``: a seeded fleet QoS sweep.

    Each profile compiles into a seeded scenario ensemble (bit-identical
    per seed); every member run lands in the store individually, so a warm
    re-run executes zero tasks and prints the same QoS table.
    """
    from repro.fleet.profiles import fleet_profile_names

    if args.scenario or args.suite:
        raise ConfigurationError(
            "--profile compiles its own scenario ensemble; drop --scenario/"
            "--suite (known profiles: "
            f"{sorted(fleet_profile_names())})"
        )
    if args.population is not None or args.shard_size is not None:
        raise ConfigurationError(
            "--profile sweeps nominal specs; drop --population/--shard-size"
        )
    kwargs: Dict[str, Any] = {
        "cache": cache,
        "seed": args.seed,
        "name": args.name,
    }
    if args.executor is not None:
        kwargs["executor"] = args.executor
    if args.max_workers is not None:
        kwargs["max_workers"] = args.max_workers
    study = Study.over_fleet(
        args.spec,
        args.profile,
        ensemble=args.ensemble if args.ensemble is not None else 8,
        tdp_levels_w=args.tdp or None,
        **kwargs,
    )
    result = study.run()
    print(
        result.as_table(
            title=(
                f"{result.name}: ensemble={result.ensemble}, "
                f"seed={result.seed}, "
                f"slo={result.slo_frequency_hz / 1e9:g}GHz"
            )
        )
    )
    served = study.tasks_total - study.tasks_executed
    print(
        f"{study.tasks_executed} task(s) executed, "
        f"{served} served from the store ({store.root})"
    )
    indexed = RunIndex(store).rebuild()
    print(f"index: {indexed} run(s)")
    return 0


def _cmd_run_population(
    args: argparse.Namespace, store: RunStore, cache: StoreCache
) -> int:
    """``run --population N [--shard-size M]``: a die-population sweep.

    With ``--shard-size`` the streaming engine runs (one bounded-memory
    task per die shard); without it the in-memory fast path runs.  Either
    way every task lands in the store, so a warm re-run executes zero
    tasks.
    """
    from repro.variation.distributions import skylake_process_variation

    if args.suite:
        raise ConfigurationError(
            "--population sweeps dynamic scenarios; drop --suite and pass "
            "--scenario instead"
        )
    if not args.scenario:
        raise ConfigurationError(
            "--population needs at least one --scenario; known: "
            f"{sorted(scenario_names())}"
        )
    options = _scenario_options(args.opt)
    scenarios = [build_scenario(name, **options) for name in args.scenario]
    kwargs: Dict[str, Any] = {
        "tdp_levels_w": args.tdp or None,
        "cache": cache,
        "seed": args.seed,
        "name": args.name,
    }
    if args.shard_size is not None:
        kwargs["method"] = "streaming"
        kwargs["shard_size"] = args.shard_size
    if args.executor is not None:
        kwargs["executor"] = args.executor
    if args.max_workers is not None:
        kwargs["max_workers"] = args.max_workers
    study = Study.over_population(
        args.spec, scenarios, skylake_process_variation(), args.population,
        **kwargs,
    )
    result = study.run()
    rows = []
    for cell in result.cells:
        p5, p50, p95 = cell.sustained_quantiles_ghz((5.0, 50.0, 95.0))
        rows.append(
            [
                cell.spec.label if cell.spec is not None else "-",
                cell.scenario_name,
                f"{p5:.3f}",
                f"{p50:.3f}",
                f"{p95:.3f}",
            ]
        )
    title = (
        f"{result.name}: {result.count} dice, method={result.method}"
        + (
            f", shard_size={result.shard_size}"
            if result.shard_size is not None
            else ""
        )
        + f", seed={result.seed}"
    )
    print(
        format_table(
            ["system", "scenario", "sustained_p5", "p50", "p95"],
            rows,
            title=title,
        )
    )
    for binning in result.binning:
        yields = ", ".join(
            f"{name}={fraction:.4f}"
            for name, fraction in sorted(binning.yield_fractions.items())
        )
        print(f"yields[{binning.spec_name}]: {yields}")
    served = study.tasks_total - study.tasks_executed
    print(
        f"{study.tasks_executed} task(s) executed, "
        f"{served} served from the store ({store.root})"
    )
    indexed = RunIndex(store).rebuild()
    print(f"index: {indexed} run(s)")
    return 0


def _parse_grid(text: str, what: str) -> List[float]:
    """``lo:hi:step`` (inclusive while step lands) or ``a,b,c`` -> floats."""
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise ConfigurationError(
                f"bad {what} {text!r}: expected lo:hi:step (e.g. 10:91:5) "
                "or a comma-separated list"
            )
        try:
            lo, hi, step = (float(part) for part in parts)
        except ValueError:
            raise ConfigurationError(
                f"bad {what} {text!r}: lo:hi:step must be numbers"
            ) from None
        if step <= 0 or hi < lo:
            raise ConfigurationError(
                f"bad {what} {text!r}: need hi >= lo and step > 0"
            )
        values = []
        value = lo
        while value <= hi + 1e-9:
            values.append(round(value, 9))
            value += step
        return values
    try:
        return [float(part) for part in text.split(",") if part]
    except ValueError:
        raise ConfigurationError(
            f"bad {what} {text!r}: expected lo:hi:step or a comma-"
            "separated list of numbers"
        ) from None


def _cmd_optimize(args: argparse.Namespace) -> int:
    """``optimize``: solve an inverse query instead of sweeping densely.

    Two query forms: ``--target-ghz`` bisects the minimum TDP sustaining a
    frequency target (static ``--cores`` demand or a closed-loop
    ``--scenario``); ``--population`` + ``--cutoff``/``--asp`` maximises
    yield x ASP revenue over SKU-bin cutoff grids.  Probe cells and the
    condensed result land in the store, so a warm re-run executes nothing.
    """
    from repro.analysis.optimize import Constraint, Objective, OptimizationSpec
    from repro.pmu.dvfs import CpuDemand

    store = RunStore(args.store)
    cache = StoreCache(store=store, seed=args.seed)
    kwargs: Dict[str, Any] = {
        "cache": cache,
        "seed": args.seed,
        "name": args.name,
    }
    if args.executor is not None:
        kwargs["executor"] = args.executor
    if args.max_workers is not None:
        kwargs["max_workers"] = args.max_workers
    if (args.target_ghz is None) == (args.population is None):
        raise ConfigurationError(
            "pick exactly one query: --target-ghz F (min TDP sustaining F "
            "GHz) or --population N with --cutoff/--asp (yield x ASP SKU "
            "cutoffs)"
        )
    if args.population is not None:
        from repro.variation.distributions import skylake_process_variation

        if not args.cutoff:
            raise ConfigurationError(
                "--population needs at least one --cutoff bin:lo:hi:step "
                "(GHz) naming the SKU bin whose cutoff moves"
            )
        if not args.asp:
            raise ConfigurationError(
                "--population needs --asp bin=price for every policy bin "
                "(the yield x ASP revenue weights)"
            )
        variables: Dict[str, List[float]] = {}
        for entry in args.cutoff:
            name, separator, grid_text = entry.partition(":")
            if not separator or not name:
                raise ConfigurationError(
                    f"bad --cutoff {entry!r}: expected bin:lo:hi:step or "
                    "bin:a,b,c (GHz)"
                )
            variables[name] = [
                value * 1e9 for value in _parse_grid(grid_text, "--cutoff grid")
            ]
        asp: Dict[str, float] = {}
        for pair in args.asp:
            key, separator, value = pair.partition("=")
            if not separator or not key:
                raise ConfigurationError(
                    f"bad --asp {pair!r}: expected bin=price "
                    "(e.g. premium-desktop=450)"
                )
            try:
                asp[key] = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad --asp {pair!r}: price must be a number"
                ) from None
        constraints = (
            (Constraint("yield.total", ">=", args.min_yield),)
            if args.min_yield is not None
            else ()
        )
        spec = OptimizationSpec(
            name=args.name,
            method="cutoff",
            objectives=(Objective("revenue_per_die", "max"),),
            constraints=constraints,
            variables=variables,
            asp=asp,
        )
        study = Study.optimize(
            args.spec,
            spec,
            variations=skylake_process_variation(),
            count=args.population,
            **kwargs,
        )
    else:
        grid = _parse_grid(args.tdp_grid, "--tdp-grid")
        spec = OptimizationSpec(
            name=args.name,
            method="bisect",
            objectives=(Objective("tdp_w", "min"),),
            constraints=(
                Constraint(
                    "sustained_frequency_hz", ">=", args.target_ghz * 1e9
                ),
            ),
            variables={"tdp_w": grid},
        )
        if args.scenario:
            options = _scenario_options(args.opt)
            scenario = build_scenario(args.scenario[0], **options)
            if len(args.scenario) > 1:
                raise ConfigurationError(
                    "optimize probes one scenario; give --scenario once"
                )
            study = Study.optimize(args.spec, spec, scenario=scenario, **kwargs)
        else:
            study = Study.optimize(
                args.spec,
                spec,
                demand=CpuDemand(active_cores=args.cores),
                **kwargs,
            )
    result = study.run()
    print(result.as_table())
    served = study.tasks_total - study.tasks_executed
    print(
        f"{study.tasks_executed} task(s) executed, "
        f"{served} served from the store ({store.root})"
    )
    indexed = RunIndex(store).rebuild()
    print(f"index: {indexed} run(s)")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    index = RunIndex(RunStore(args.store))
    if not index.exists():
        index.rebuild()
    manifests = index.query(
        spec=args.spec,
        kind=args.kind,
        workload=args.workload,
        tdp_w=args.tdp,
        seed=args.seed,
    )
    rows = [
        [
            manifest.run_id[:12],
            manifest.spec_label or "-",
            manifest.kind,
            manifest.workload_name,
            "-" if manifest.tdp_w is None else f"{manifest.tdp_w:g}",
            _format_metric(manifest.primary_metric),
            manifest.engine_version,
            manifest.created_at or "-",
        ]
        for manifest in manifests
    ]
    headers = "run system kind workload tdp_w metric engine created".split()
    print(format_table(headers, rows, title=f"{len(rows)} stored run(s)"))
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    index = RunIndex(RunStore(args.store))
    count = index.rebuild()
    print(f"indexed {count} run(s) -> {index.path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if len(args.spec) != 2:
        raise ConfigurationError(
            "compare needs exactly two --spec arguments (got "
            f"{len(args.spec)})"
        )
    index = RunIndex(RunStore(args.store))
    if not index.exists():
        index.rebuild()
    spec_a, spec_b = args.spec
    entries = index.compare(spec_a, spec_b, kind=args.kind, tdp_w=args.tdp)
    rows = [
        [
            entry["kind"],
            entry["workload_name"],
            "-" if entry["tdp_w"] is None else f"{entry['tdp_w']:g}",
            _format_metric(entry["metric_a"]),
            _format_metric(entry["metric_b"]),
            "-" if entry["ratio"] is None else f"{entry['ratio']:.4f}",
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["kind", "workload", "tdp_w", spec_a, spec_b, "ratio"],
            rows,
            title=f"{spec_a} vs {spec_b} ({len(rows)} shared cell(s))",
        )
    )
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    keep_engine = None if args.all else (args.keep_engine_version or ENGINE_VERSION)
    selected = store.gc(
        keep_engine_version=keep_engine,
        tier=args.tier,
        delete_all=args.all,
        apply=args.apply,
    )
    for manifest in selected:
        print(
            f"{'removed' if args.apply else 'would remove'} "
            f"{manifest.run_id[:12]}  {manifest.spec_label or '-'}  "
            f"{manifest.kind}/{manifest.workload_name}  "
            f"engine={manifest.engine_version} tier={manifest.tier}"
        )
    if args.apply:
        index = RunIndex(store)
        if index.exists():
            index.prune([manifest.run_id for manifest in selected])
        print(f"removed {len(selected)} run(s)")
    else:
        print(
            f"dry run: {len(selected)} run(s) selected "
            "(pass --apply to delete)"
        )
    return 0


# -- parser ----------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--store",
        default=None,
        help="store root (default: $REPRO_STORE_DIR or ~/.repro_store)",
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Persistent content-addressed run store for repro studies.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", parents=[common], help="execute a sweep through the store"
    )
    run.add_argument(
        "--spec",
        action="append",
        required=True,
        help="registered system spec name (repeatable)",
    )
    run.add_argument(
        "--scenario",
        action="append",
        default=[],
        help=f"dynamic scenario builder name (repeatable): {sorted(scenario_names())}",
    )
    run.add_argument(
        "--suite",
        action="append",
        default=[],
        help=f"steady-state workload suite (repeatable): {sorted(SUITE_BUILDERS)}",
    )
    run.add_argument(
        "--tdp",
        action="append",
        type=float,
        default=[],
        help="TDP level in W (repeatable)",
    )
    run.add_argument(
        "--opt",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario builder override, e.g. duration_s=6 or time_step_s=0.5",
    )
    run.add_argument(
        "--profile",
        action="append",
        default=[],
        help=(
            "fleet profile name (repeatable): compiles a seeded scenario "
            "ensemble and reports per-profile QoS"
        ),
    )
    run.add_argument(
        "--ensemble",
        type=int,
        default=None,
        metavar="N",
        help="ensemble members per fleet profile (default 8; needs --profile)",
    )
    run.add_argument(
        "--population",
        type=int,
        default=None,
        metavar="N",
        help="sweep a seeded N-die population instead of single runs",
    )
    run.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="M",
        help=(
            "stream the population through M-die shards (bounded memory); "
            "requires --population"
        ),
    )
    run.add_argument("--executor", default=None, help="serial | batched | process")
    run.add_argument("--max-workers", type=int, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--name", default="cli-study")
    run.set_defaults(handler=_cmd_run)

    optimize = subparsers.add_parser(
        "optimize",
        parents=[common],
        help="solve an inverse query (min TDP / yield x ASP cutoffs)",
        description=(
            "Solve a declarative inverse query through the run store "
            "instead of sweeping densely: bisect the minimum TDP "
            "sustaining --target-ghz, or maximise yield x ASP revenue "
            "over --cutoff grids on a seeded --population."
        ),
    )
    optimize.add_argument(
        "--spec",
        action="append",
        required=True,
        help="registered system spec name (repeatable)",
    )
    optimize.add_argument(
        "--target-ghz",
        type=float,
        default=None,
        help="min-TDP query: sustained frequency target in GHz",
    )
    optimize.add_argument(
        "--tdp-grid",
        default="10:91:1",
        metavar="LO:HI:STEP",
        help="TDP candidate grid in W (or a,b,c list; default 10:91:1)",
    )
    optimize.add_argument(
        "--cores",
        type=int,
        default=4,
        help="static probe demand: active cores (default 4)",
    )
    optimize.add_argument(
        "--scenario",
        action="append",
        default=[],
        help=(
            "probe a closed-loop dynamic scenario instead of the static "
            f"resolver (give once): {sorted(scenario_names())}"
        ),
    )
    optimize.add_argument(
        "--opt",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario builder override, e.g. duration_s=6",
    )
    optimize.add_argument(
        "--population",
        type=int,
        default=None,
        metavar="N",
        help="cutoff query: draw a seeded N-die population",
    )
    optimize.add_argument(
        "--cutoff",
        action="append",
        default=[],
        metavar="BIN:LO:HI:STEP",
        help="cutoff query: bin fmax-cutoff grid in GHz (repeatable)",
    )
    optimize.add_argument(
        "--asp",
        action="append",
        default=[],
        metavar="BIN=PRICE",
        help="cutoff query: selling price per bin (repeatable)",
    )
    optimize.add_argument(
        "--min-yield",
        type=float,
        default=None,
        help="cutoff query: require yield.total >= this fraction",
    )
    optimize.add_argument("--executor", default=None, help="serial | batched | process")
    optimize.add_argument("--max-workers", type=int, default=None)
    optimize.add_argument("--seed", type=int, default=None)
    optimize.add_argument("--name", default="cli-optimize")
    optimize.set_defaults(handler=_cmd_optimize)

    summarize = subparsers.add_parser(
        "summarize", parents=[common], help="tabulate stored runs"
    )
    summarize.add_argument("--spec", default=None, help="spec name or label filter")
    summarize.add_argument("--kind", default=None)
    summarize.add_argument("--workload", default=None)
    summarize.add_argument("--tdp", type=float, default=None)
    summarize.add_argument("--seed", type=int, default=None)
    summarize.set_defaults(handler=_cmd_summarize)

    index = subparsers.add_parser(
        "index", parents=[common], help="rebuild the SQLite index from manifests"
    )
    index.set_defaults(handler=_cmd_index)

    compare = subparsers.add_parser(
        "compare", parents=[common], help="join two specs' stored runs"
    )
    compare.add_argument(
        "--spec", action="append", required=True, help="give exactly twice"
    )
    compare.add_argument("--kind", default=None)
    compare.add_argument("--tdp", type=float, default=None)
    compare.set_defaults(handler=_cmd_compare)

    gc = subparsers.add_parser(
        "gc", parents=[common], help="collect stale runs (dry-run by default)"
    )
    gc.add_argument(
        "--all", action="store_true", help="select every stored run"
    )
    gc.add_argument(
        "--keep-engine-version",
        default=None,
        help=f"engine version to keep (default: current, {ENGINE_VERSION})",
    )
    gc.add_argument("--tier", default=None, help="also select runs of this tier")
    gc.add_argument(
        "--apply", action="store_true", help="actually delete (default: dry run)"
    )
    gc.set_defaults(handler=_cmd_gc)

    lint = subparsers.add_parser(
        "lint",
        help="static determinism/invariant analysis (repro.devtools.lint)",
        description=(
            "AST-based analyzer enforcing seed discipline, canonical "
            "JSON/hashing, the ReproError contract, and the import-layering "
            "contract of pyproject.toml.  Exit 0 clean, 1 findings."
        ),
    )
    lint_cli.add_arguments(lint)
    lint.set_defaults(handler=lint_cli.run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
