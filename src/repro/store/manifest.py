"""Run manifests: the metadata sidecar of every stored run.

Each run directory holds a ``manifest.json`` describing the run — its
content-addressed ID, the spec and workload it came from, the seed, the
engine and library versions that produced it, a creation timestamp, a
storage tier, and the result's headline metric.  The manifest is written
*after* the result payload, so its presence marks a complete run: readers
treat a directory without a (valid) manifest as in-flight or torn and skip
it.  The cross-run SQLite index is rebuilt purely from manifests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from typing import Any, Dict, Mapping, Optional

from repro.common.errors import StoreError

#: Version of the manifest layout itself (not of the stored result).
MANIFEST_SCHEMA_VERSION = 1

#: Default storage tier of a freshly-written run.  Tiers are free-form
#: labels the gc workflow can filter on (e.g. promote runs referenced by a
#: paper figure to ``"pinned"`` so sweeping gc passes leave them alone).
DEFAULT_TIER = "standard"

#: Manifest keys that must be present for a manifest to be valid.
_REQUIRED_KEYS = ("run_id", "kind", "workload_name", "engine_version")


def utc_timestamp() -> str:
    """An ISO-8601 UTC timestamp for manifest stamping."""
    return datetime.now(  # repro-lint: disable=RPR002 -- created_at is provenance metadata; run IDs hash spec x workload x seed x engine only
        timezone.utc
    ).isoformat(timespec="seconds")


def repro_version() -> str:
    """The library version, resolved lazily to avoid an import cycle."""
    from repro import __version__

    return __version__


@dataclass(frozen=True)
class RunManifest:
    """Metadata describing one persisted run.

    Spec-derived fields (``spec_name``, ``spec_label``, ``sku``,
    ``tdp_w``) are ``None`` for callable tasks, which carry no spec; the
    ``workload_name`` of a callable task is its task key.
    """

    run_id: str
    kind: str
    workload_name: str
    engine_version: str
    repro_version: str
    spec_name: Optional[str] = None
    spec_label: Optional[str] = None
    sku: Optional[str] = None
    tdp_w: Optional[float] = None
    seed: Optional[int] = None
    primary_metric: Optional[float] = None
    tier: str = DEFAULT_TIER
    created_at: str = ""
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this manifest."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from a :meth:`to_dict` payload.

        Raises :class:`~repro.common.errors.StoreError` when the payload is
        torn (missing required keys) or written by a newer manifest schema.
        """
        if not isinstance(data, Mapping):
            raise StoreError(
                f"manifest payload must be a mapping, got {type(data).__name__}"
            )
        missing = [key for key in _REQUIRED_KEYS if key not in data]
        if missing:
            raise StoreError(f"manifest is missing required keys {missing}")
        version = data.get("schema_version", MANIFEST_SCHEMA_VERSION)
        if not isinstance(version, int) or version > MANIFEST_SCHEMA_VERSION:
            raise StoreError(
                f"manifest schema version {version!r} is newer than this "
                f"library understands (<= {MANIFEST_SCHEMA_VERSION})"
            )
        known = {field for field in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise StoreError(f"manifest has unknown keys {sorted(unknown)}")
        return cls(**dict(data))
