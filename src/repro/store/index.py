"""Cross-run SQLite index over the run store's manifests.

The index (``<store root>/index.sqlite``) holds one row per persisted run —
spec, kind, workload, TDP, seed, engine version, headline metric — so that
questions like *"all dynamic runs of spec darkgates at 35 W"* or *"compare
darkgates vs baseline across the stored SPEC suite"* are answered by a
query instead of a re-simulation.  The database is derived state: it can be
dropped at any time and rebuilt purely from the on-disk manifests
(:meth:`RunIndex.rebuild`), which is also how it recovers from corruption.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.common.errors import StoreError
from repro.store.artifacts import RunStore
from repro.store.manifest import RunManifest

INDEX_FILENAME = "index.sqlite"

_CREATE_TABLE = """
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    workload_name TEXT NOT NULL,
    engine_version TEXT NOT NULL,
    repro_version TEXT NOT NULL,
    spec_name TEXT,
    spec_label TEXT,
    sku TEXT,
    tdp_w REAL,
    seed INTEGER,
    primary_metric REAL,
    tier TEXT NOT NULL,
    created_at TEXT NOT NULL,
    schema_version INTEGER NOT NULL
)
"""

_COLUMNS = (
    "run_id",
    "kind",
    "workload_name",
    "engine_version",
    "repro_version",
    "spec_name",
    "spec_label",
    "sku",
    "tdp_w",
    "seed",
    "primary_metric",
    "tier",
    "created_at",
    "schema_version",
)

_UPSERT = (
    f"INSERT OR REPLACE INTO runs ({', '.join(_COLUMNS)}) "
    f"VALUES ({', '.join('?' for _ in _COLUMNS)})"
)


class RunIndex:
    """Queryable cross-run index of one store's manifests."""

    def __init__(self, store: Union[RunStore, str, Path, None] = None) -> None:
        self._store = store if isinstance(store, RunStore) else RunStore(store)
        self._path = self._store.root / INDEX_FILENAME

    @property
    def store(self) -> RunStore:
        """The store this index covers."""
        return self._store

    @property
    def path(self) -> Path:
        """Location of the SQLite database."""
        return self._path

    def exists(self) -> bool:
        """True when the database file has been materialised."""
        return self._path.exists()

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self._path)
        try:
            connection.execute(_CREATE_TABLE)
            yield connection
            connection.commit()
        finally:
            connection.close()

    # -- writing -----------------------------------------------------------------------

    @staticmethod
    def _row(manifest: RunManifest) -> Tuple[Any, ...]:
        data = manifest.to_dict()
        return tuple(data[column] for column in _COLUMNS)

    def upsert(self, manifest: RunManifest) -> None:
        """Insert or replace one run row."""
        with self._connect() as connection:
            connection.execute(_UPSERT, self._row(manifest))

    def upsert_many(self, manifests: Iterable[RunManifest]) -> int:
        """Insert or replace many run rows; returns the count."""
        rows = [self._row(manifest) for manifest in manifests]
        with self._connect() as connection:
            connection.executemany(_UPSERT, rows)
        return len(rows)

    def rebuild(self) -> int:
        """Drop every row and re-index the store's manifests from disk.

        Works from the artifacts alone — this is the recovery path after
        index corruption or out-of-band store edits.  Returns the number of
        indexed runs (corrupt manifests are skipped with a warning by
        :meth:`~repro.store.artifacts.RunStore.iter_manifests`).
        """
        manifests = list(self._store.iter_manifests())
        with self._connect() as connection:
            connection.execute("DELETE FROM runs")
            connection.executemany(
                _UPSERT, [self._row(manifest) for manifest in manifests]
            )
        return len(manifests)

    def prune(self, run_ids: Iterable[str]) -> None:
        """Drop the rows of the given run IDs (gc support)."""
        with self._connect() as connection:
            connection.executemany(
                "DELETE FROM runs WHERE run_id = ?",
                [(run_id,) for run_id in run_ids],
            )

    # -- querying ----------------------------------------------------------------------

    def count(self) -> int:
        """Number of indexed runs."""
        with self._connect() as connection:
            (count,) = connection.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(count)

    def query(
        self,
        *,
        spec: Optional[str] = None,
        kind: Optional[str] = None,
        workload: Optional[str] = None,
        tdp_w: Optional[float] = None,
        seed: Optional[int] = None,
        engine_version: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> List[RunManifest]:
        """Manifests of the runs matching every given filter.

        *spec* matches either the spec name (``"darkgates"``) or the
        expanded label (``"darkgates@35W"``); results come back ordered by
        (spec label, kind, workload) so reports are stable.
        """
        clauses: List[str] = []
        params: List[Any] = []
        if spec is not None:
            clauses.append("(spec_name = ? OR spec_label = ?)")
            params.extend([spec, spec])
        for column, value in (
            ("kind", kind),
            ("workload_name", workload),
            ("tdp_w", tdp_w),
            ("seed", seed),
            ("engine_version", engine_version),
            ("tier", tier),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = f"SELECT {', '.join(_COLUMNS)} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY spec_label, kind, workload_name, tdp_w"
        with self._connect() as connection:
            rows = connection.execute(sql, params).fetchall()
        return [
            RunManifest.from_dict(dict(zip(_COLUMNS, row))) for row in rows
        ]

    def compare(
        self,
        spec_a: str,
        spec_b: str,
        *,
        kind: Optional[str] = None,
        tdp_w: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Join two specs' stored runs on (kind, workload, TDP).

        Returns one entry per cell both specs have persisted, with each
        side's headline metric and the a/b ratio — the cross-run analogue
        of the paper's gated-vs-bypassed comparisons, served entirely from
        the index (no engine invocation).  Raises when the specs share no
        cells, which usually means the runs were never made (or gc'd).
        """
        runs_a = self.query(spec=spec_a, kind=kind, tdp_w=tdp_w)
        runs_b = self.query(spec=spec_b, kind=kind, tdp_w=tdp_w)

        def keyed(
            runs: List[RunManifest],
        ) -> Dict[Tuple[str, str, Optional[float]], RunManifest]:
            return {
                (run.kind, run.workload_name, run.tdp_w): run for run in runs
            }

        by_a, by_b = keyed(runs_a), keyed(runs_b)
        shared = sorted(set(by_a) & set(by_b))
        if not shared:
            raise StoreError(
                f"no stored cells shared by {spec_a!r} and {spec_b!r}; "
                "run the sweeps first (python -m repro run ...) and rebuild "
                "the index"
            )
        entries: List[Dict[str, Any]] = []
        for key in shared:
            run_a, run_b = by_a[key], by_b[key]
            ratio = None
            if (
                run_a.primary_metric is not None
                and run_b.primary_metric not in (None, 0.0)
            ):
                ratio = run_a.primary_metric / run_b.primary_metric
            entries.append(
                {
                    "kind": key[0],
                    "workload_name": key[1],
                    "tdp_w": key[2],
                    "metric_a": run_a.primary_metric,
                    "metric_b": run_b.primary_metric,
                    "ratio": ratio,
                }
            )
        return entries
