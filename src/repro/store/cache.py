"""A store-backed study cache: sweeps persist, warm re-runs read from disk.

:class:`StoreCache` implements the ``MutableMapping[StudyTask, Any]``
protocol that :class:`~repro.analysis.study.Study` already accepts for its
``cache=`` parameter, backed by a :class:`~repro.store.artifacts.RunStore`.
Every executed cell is written to the store under its content-addressed run
ID; a repeated sweep (same specs, workloads, seed, and engine version) finds
every task on disk and executes **zero** simulator tasks — the warm path
touches no simulator code at all.

Values the store cannot encode faithfully (exotic callable-task results)
stay in the in-memory layer for the session and raise a warning, so a study
still completes; they are simply not shared across processes.
"""

from __future__ import annotations

import warnings
from collections.abc import MutableMapping
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.analysis.study import CallableTask, EngineTask, StudyTask
from repro.common.errors import ConfigurationError, StoreError
from repro.sim.engine import ENGINE_VERSION
from repro.sim.metrics import RunResult
from repro.store.artifacts import RunStore
from repro.store.hashing import run_id_for_task
from repro.store.manifest import (
    DEFAULT_TIER,
    RunManifest,
    repro_version,
    utc_timestamp,
)


class StoreCache(MutableMapping[StudyTask, Any]):
    """Persistent task->result cache for :class:`~repro.analysis.study.Study`.

    Parameters
    ----------
    root:
        Store root (``None`` resolves ``REPRO_STORE_DIR`` /
        ``~/.repro_store``); ignored when *store* is given.
    store:
        An existing :class:`RunStore` to share.
    seed:
        Seed hashed into every run ID.  Pass the study's seed when the
        engine tasks themselves are stochastic; deterministic sweeps (the
        common case — dynamics, transients, steady-state grids) leave it
        ``None``.  Population callable tasks already carry their seed in
        their arguments, so it is hashed either way.
    tier:
        Storage tier stamped into the manifests this cache writes.

    Notes
    -----
    ``__iter__`` / ``__len__`` cover the tasks this session has touched
    (the store itself cannot reconstruct task objects from manifests);
    membership and item access consult the disk store transparently.

    The cache deliberately refuses to pickle: it would silently fork the
    in-memory layer across workers.  A :class:`StoreCache` belongs in the
    driving process — :class:`~repro.analysis.study.ProcessExecutor` sweeps
    work unchanged, because the study keeps its cache on the main side and
    only tasks cross the pool boundary.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        *,
        store: Optional[RunStore] = None,
        seed: Optional[int] = None,
        tier: str = DEFAULT_TIER,
    ) -> None:
        self._store = store if store is not None else RunStore(root)
        self._seed = seed
        self._tier = tier
        self._memory: Dict[StudyTask, Any] = {}
        self._unpersisted = 0

    # -- introspection -----------------------------------------------------------------

    @property
    def store(self) -> RunStore:
        """The backing run store."""
        return self._store

    @property
    def seed(self) -> Optional[int]:
        """Seed hashed into this cache's run IDs."""
        return self._seed

    @property
    def unpersisted(self) -> int:
        """Number of values this session kept memory-only (encode failures)."""
        return self._unpersisted

    def run_id(self, task: StudyTask) -> str:
        """The content-addressed run ID this cache files *task* under."""
        return run_id_for_task(
            task, seed=self._seed, engine_version=ENGINE_VERSION
        )

    # -- mapping protocol --------------------------------------------------------------

    def __getitem__(self, task: StudyTask) -> Any:
        if task in self._memory:
            return self._memory[task]
        run_id = self.run_id(task)
        if run_id not in self._store:
            raise KeyError(task)  # repro-lint: disable=RPR005 -- MutableMapping.__getitem__ protocol; Study(cache=...) relies on the mapping contract
        try:
            value = self._store.load_value(run_id)
        except StoreError as error:
            warnings.warn(
                f"re-running task {run_id[:12]}…: {error}",
                stacklevel=2,
            )
            raise KeyError(task) from None  # repro-lint: disable=RPR005 -- MutableMapping.__getitem__ protocol; a corrupt artifact must read as a cache miss
        self._memory[task] = value
        return value

    def __setitem__(self, task: StudyTask, value: Any) -> None:
        self._memory[task] = value
        manifest = self._manifest_for(task, value)
        try:
            self._store.put(manifest, value)
        except StoreError as error:
            self._unpersisted += 1
            warnings.warn(
                f"keeping task {manifest.workload_name!r} in memory only: "
                f"{error}",
                stacklevel=2,
            )

    def __delitem__(self, task: StudyTask) -> None:
        found = task in self._memory
        self._memory.pop(task, None)
        run_id = self.run_id(task)
        if run_id in self._store:
            self._store.delete(run_id)
        elif not found:
            raise KeyError(task)  # repro-lint: disable=RPR005 -- MutableMapping.__delitem__ protocol

    def __iter__(self) -> Iterator[StudyTask]:
        return iter(self._memory)

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, task: Any) -> bool:
        if task in self._memory:
            return True
        try:
            self[task]
        except KeyError:
            return False
        return True

    # -- pickling guard ----------------------------------------------------------------

    def __reduce__(self) -> Any:
        raise ConfigurationError(
            "StoreCache cannot be pickled: it must stay in the driving "
            "process.  Process-pool sweeps already work — pass the cache "
            "to Study(cache=...) and keep it out of task arguments."
        )

    # -- manifest construction ---------------------------------------------------------

    def _manifest_for(self, task: StudyTask, value: Any) -> RunManifest:
        primary: Optional[float] = None
        if isinstance(value, RunResult):
            primary = float(value.primary_metric)
        if isinstance(task, EngineTask):
            kind = getattr(value, "kind", None) or getattr(
                task.workload, "kind", "engine"
            )
            return RunManifest(
                run_id=self.run_id(task),
                kind=str(kind),
                workload_name=task.workload.name,
                engine_version=ENGINE_VERSION,
                repro_version=repro_version(),
                spec_name=task.spec.name,
                spec_label=task.spec.label,
                sku=task.spec.sku,
                tdp_w=task.spec.tdp_w,
                seed=self._seed,
                primary_metric=primary,
                tier=self._tier,
                created_at=utc_timestamp(),
            )
        assert isinstance(task, CallableTask)
        return RunManifest(
            run_id=self.run_id(task),
            kind="callable",
            workload_name=task.key,
            engine_version=ENGINE_VERSION,
            repro_version=repro_version(),
            seed=self._seed,
            primary_metric=primary,
            tier=self._tier,
            created_at=utc_timestamp(),
        )
