"""Canonical content hashing: stable run identities for the run store.

A stored run is addressed by the SHA-256 digest of everything that
determines its outcome: the frozen :class:`~repro.core.spec.SystemSpec`,
the workload/scenario descriptor, the seed, and the engine version.  Two
processes that declare the same cell therefore compute the same run ID and
share one artifact directory — and any change to a spec field, a scenario
parameter, the seed, or the engine bumps the ID and misses naturally.

Hashes are computed over a *canonical* JSON rendering: keys sorted,
separators fixed, floats written with ``repr`` (shortest round-trip, stable
across CPython versions since 3.1), ``-0.0`` normalised to ``0.0``, and
NaN/Inf rejected.  Frozen dataclasses (specs, workloads, traces, variation
models) are rendered field-by-field and tagged with their type name, so two
different descriptor classes with coincidentally equal fields never
collide.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.analysis.study import CallableTask, EngineTask, StudyTask
from repro.common.errors import ConfigurationError

#: Key under which a dataclass payload records its type.
TYPE_KEY = "__type__"


def canonical_payload(value: Any) -> Any:
    """Recursively convert *value* into a canonically-hashable JSON payload.

    Handles the vocabulary the study layer speaks: JSON scalars, numpy
    scalars, enums, mappings with string keys, sequences, and (nested)
    dataclasses.  Anything else is rejected — silently hashing ``repr``
    of an arbitrary object would make run IDs unstable.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigurationError(
                "cannot canonicalise NaN/Inf floats into a run identity"
            )
        return 0.0 if value == 0.0 else value
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return canonical_payload(value.item())
    if isinstance(value, Enum):
        return canonical_payload(value.value)
    if is_dataclass(value) and not isinstance(value, type):
        payload: Dict[str, Any] = {TYPE_KEY: type(value).__qualname__}
        for field in fields(value):
            payload[field.name] = canonical_payload(getattr(value, field.name))
        return payload
    if isinstance(value, Mapping):
        converted: Dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cannot canonicalise mapping key {key!r}: keys must be "
                    "strings"
                )
            converted[key] = canonical_payload(item)
        return converted
    if isinstance(value, (list, tuple)):
        return [canonical_payload(item) for item in value]
    if isinstance(value, np.ndarray):
        return [canonical_payload(item) for item in value.tolist()]
    raise ConfigurationError(
        f"cannot canonicalise {type(value).__name__!s} into a run identity"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON document of *value* (sorted keys, fixed form)."""
    return json.dumps(
        canonical_payload(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of *value*."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def task_fingerprint(task: StudyTask) -> Dict[str, Any]:
    """The identity payload of one study task.

    Engine tasks are identified by their spec and workload descriptors;
    callable tasks by their key, the function's qualified name, and the
    canonicalised arguments.
    """
    if isinstance(task, EngineTask):
        return {
            "task": "engine",
            "spec": canonical_payload(task.spec),
            "workload": canonical_payload(task.workload),
        }
    if isinstance(task, CallableTask):
        return {
            "task": "callable",
            "key": task.key,
            "fn": f"{task.fn.__module__}.{task.fn.__qualname__}",
            "args": canonical_payload(task.args),
        }
    raise ConfigurationError(
        f"cannot fingerprint {type(task).__name__!s}: not a study task"
    )


def run_id_for_task(
    task: StudyTask, *, seed: Optional[int], engine_version: str
) -> str:
    """The content-addressed run ID of one study task.

    ``sha256(task fingerprint x seed x engine version)`` — the key the run
    store files the task's artifacts under.
    """
    return digest(
        {
            "fingerprint": task_fingerprint(task),
            "seed": seed,
            "engine_version": engine_version,
        }
    )
