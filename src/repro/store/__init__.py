"""Persistent content-addressed run store, cross-run index, and CLI.

The store turns one-shot study sweeps into a serveable system: every
executed cell lands on disk under a content-addressed run ID
(:mod:`repro.store.hashing`), described by an atomic manifest
(:mod:`repro.store.manifest`, :mod:`repro.store.artifacts`); a
:class:`StoreCache` plugs the store into ``Study(cache=...)`` so repeated
sweeps execute zero simulator tasks (:mod:`repro.store.cache`); a SQLite
index answers cross-run queries (:mod:`repro.store.index`); and
``python -m repro`` drives it all from the command line
(:mod:`repro.store.cli`).
"""

from repro.store.artifacts import (
    RunStore,
    StoreCorruptionWarning,
    decode_value,
    encode_value,
    resolve_store_root,
)
from repro.store.cache import StoreCache
from repro.store.hashing import (
    canonical_json,
    canonical_payload,
    digest,
    run_id_for_task,
    task_fingerprint,
)
from repro.store.index import RunIndex
from repro.store.manifest import (
    DEFAULT_TIER,
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
)

__all__ = [
    "RunStore",
    "StoreCache",
    "RunIndex",
    "RunManifest",
    "StoreCorruptionWarning",
    "DEFAULT_TIER",
    "MANIFEST_SCHEMA_VERSION",
    "canonical_json",
    "canonical_payload",
    "digest",
    "run_id_for_task",
    "task_fingerprint",
    "encode_value",
    "decode_value",
    "resolve_store_root",
]
