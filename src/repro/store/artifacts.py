"""The on-disk run store: one artifact directory per content-addressed run.

Layout (root defaults to ``~/.repro_store``, overridable via the
``REPRO_STORE_DIR`` environment variable or an explicit path)::

    <root>/
      runs/<run_id>/result.json      # encoded result payload
      runs/<run_id>/manifest.json    # RunManifest; written last
      index.sqlite                   # cross-run index (see repro.store.index)

Every file is written atomically (temp file in the target directory, then
``os.replace``), and the manifest lands *after* the result: a run directory
is complete exactly when it holds a valid manifest.  Two processes writing
the same run ID race harmlessly — both write identical content (the ID is
content-addressed) and the last rename wins file-whole; readers never see a
torn manifest.  Corrupted or truncated manifests are detected on read and
skipped with a :class:`StoreCorruptionWarning` instead of poisoning sweeps.
"""

from __future__ import annotations

import json
import os
import shutil
import uuid
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.common.errors import StoreError
from repro.sim.metrics import RESULT_SCHEMA_VERSION, RunResult
from repro.store.manifest import RunManifest

#: Environment variable overriding the default store location.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Store directory under the user's home when nothing else is configured.
DEFAULT_STORE_DIRNAME = ".repro_store"

RESULT_FILENAME = "result.json"
MANIFEST_FILENAME = "manifest.json"


class StoreCorruptionWarning(UserWarning):
    """A stored artifact failed validation and was skipped."""


def resolve_store_root(root: Union[str, Path, None] = None) -> Path:
    """The store root: explicit path > ``REPRO_STORE_DIR`` > ``~/.repro_store``."""
    if root is not None:
        return Path(root).expanduser()
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / DEFAULT_STORE_DIRNAME


# -- value codec -----------------------------------------------------------------------


def encode_value(value: Any) -> Dict[str, Any]:
    """Encode a study-task result into a JSON-safe store payload.

    Engine results (every :class:`~repro.sim.metrics.RunResult` kind)
    serialise through their ``to_dict``; population cells and binning
    results through theirs; anything else must already be a faithful JSON
    value (tuples are rejected — they would silently come back as lists).
    """
    from repro.variation.population import (
        PopulationCellResult,
        PopulationResult,
        SpecBinningResult,
    )
    from repro.analysis.optimize import OptimizationResult
    from repro.variation.streaming import (
        StreamingBinningResult,
        StreamingCellResult,
        StreamingCellShard,
    )

    if isinstance(value, RunResult):
        payload: Dict[str, Any] = {"codec": "run_result", "value": value.to_dict()}
    elif isinstance(value, OptimizationResult):
        payload = {"codec": "optimization", "value": value.to_dict()}
    elif isinstance(value, PopulationCellResult):
        payload = {"codec": "population_cell", "value": value.to_dict()}
    elif isinstance(value, SpecBinningResult):
        payload = {"codec": "spec_binning", "value": value.to_dict()}
    elif isinstance(value, StreamingCellShard):
        payload = {"codec": "streaming_shard", "value": value.to_dict()}
    elif isinstance(value, StreamingCellResult):
        payload = {"codec": "streaming_cell", "value": value.to_dict()}
    elif isinstance(value, StreamingBinningResult):
        payload = {"codec": "streaming_binning", "value": value.to_dict()}
    elif isinstance(value, PopulationResult):
        payload = {"codec": "population", "value": json.loads(value.to_json())}
    else:
        try:
            faithful = (
                json.loads(json.dumps(value, sort_keys=True, allow_nan=False))
                == value
            )
        except (TypeError, ValueError):
            faithful = False
        if not faithful:
            raise StoreError(
                f"cannot persist {type(value).__name__!s}: not an engine "
                "result and not a faithful JSON value"
            )
        payload = {"codec": "json", "value": value}
    payload["schema_version"] = RESULT_SCHEMA_VERSION
    return payload


def decode_value(payload: Dict[str, Any]) -> Any:
    """Decode a store payload back into the value :func:`encode_value` saw."""
    from repro.analysis.optimize import OptimizationResult
    from repro.variation.population import (
        PopulationCellResult,
        PopulationResult,
        SpecBinningResult,
    )
    from repro.variation.streaming import (
        StreamingBinningResult,
        StreamingCellResult,
        StreamingCellShard,
    )

    version = payload.get("schema_version", RESULT_SCHEMA_VERSION)
    if not isinstance(version, int) or version > RESULT_SCHEMA_VERSION:
        raise StoreError(
            f"stored result schema version {version!r} is newer than this "
            f"library understands (<= {RESULT_SCHEMA_VERSION})"
        )
    codec = payload.get("codec")
    value = payload.get("value")
    if codec == "run_result":
        return RunResult.from_dict(value)
    if codec == "optimization":
        return OptimizationResult.from_dict(value)
    if codec == "population_cell":
        return PopulationCellResult.from_dict(value)
    if codec == "spec_binning":
        return SpecBinningResult.from_dict(value)
    if codec == "streaming_shard":
        return StreamingCellShard.from_dict(value)
    if codec == "streaming_cell":
        return StreamingCellResult.from_dict(value)
    if codec == "streaming_binning":
        return StreamingBinningResult.from_dict(value)
    if codec == "population":
        return PopulationResult.from_json(
            json.dumps(value, sort_keys=True, allow_nan=False)
        )
    if codec == "json":
        return value
    raise StoreError(f"unknown store codec {codec!r}")


# -- the store -------------------------------------------------------------------------


class RunStore:
    """Persistent, content-addressed storage of completed runs.

    Parameters
    ----------
    root:
        Store root; ``None`` resolves through :func:`resolve_store_root`
        (``REPRO_STORE_DIR`` or ``~/.repro_store``).
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self._root = resolve_store_root(root)

    @property
    def root(self) -> Path:
        """The store root directory."""
        return self._root

    @property
    def runs_dir(self) -> Path:
        """The directory holding one subdirectory per run."""
        return self._root / "runs"

    def run_dir(self, run_id: str) -> Path:
        """The artifact directory of one run."""
        return self.runs_dir / run_id

    # -- writing -----------------------------------------------------------------------

    def _write_atomic(self, path: Path, text: str) -> None:
        """Write *text* to *path* via a same-directory temp file + rename."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}."
            f"{uuid.uuid4().hex}.tmp"  # repro-lint: disable=RPR002 -- temp-file name uniqueness only; the name never reaches a result, manifest, or fingerprint
        )
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    def put(self, manifest: RunManifest, value: Any) -> RunManifest:
        """Persist one run: encoded *value* first, *manifest* last.

        Returns the manifest as written.  Concurrent writers of the same
        run ID each complete their own atomic renames; because the ID is
        content-addressed both wrote equivalent artifacts, so whichever
        rename lands last leaves a consistent directory.
        """
        run_dir = self.run_dir(manifest.run_id)
        payload = encode_value(value)
        self._write_atomic(
            run_dir / RESULT_FILENAME,
            json.dumps(payload, sort_keys=True, allow_nan=False),
        )
        self._write_atomic(
            run_dir / MANIFEST_FILENAME,
            json.dumps(manifest.to_dict(), sort_keys=True, allow_nan=False),
        )
        return manifest

    # -- reading -----------------------------------------------------------------------

    def __contains__(self, run_id: str) -> bool:
        """True when *run_id* has a complete (manifest + result) directory."""
        run_dir = self.run_dir(run_id)
        return (run_dir / MANIFEST_FILENAME).exists() and (
            run_dir / RESULT_FILENAME
        ).exists()

    def load_manifest(self, run_id: str) -> RunManifest:
        """The manifest of one run (raises :class:`StoreError` if invalid)."""
        path = self.run_dir(run_id) / MANIFEST_FILENAME
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise StoreError(f"run {run_id!r} is not in the store") from None
        except (json.JSONDecodeError, OSError) as error:
            raise StoreError(
                f"run {run_id!r} has a corrupted manifest: {error}"
            ) from None
        manifest = RunManifest.from_dict(data)
        if manifest.run_id != run_id:
            raise StoreError(
                f"manifest of run {run_id!r} claims run_id "
                f"{manifest.run_id!r} (torn or misplaced write)"
            )
        return manifest

    def load_value(self, run_id: str) -> Any:
        """The decoded result value of one run."""
        path = self.run_dir(run_id) / RESULT_FILENAME
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise StoreError(f"run {run_id!r} is not in the store") from None
        except (json.JSONDecodeError, OSError) as error:
            raise StoreError(
                f"run {run_id!r} has a corrupted result payload: {error}"
            ) from None
        return decode_value(payload)

    def run_ids(self) -> List[str]:
        """IDs of every run directory currently on disk, sorted."""
        if not self.runs_dir.is_dir():
            return []
        return sorted(
            entry.name for entry in self.runs_dir.iterdir() if entry.is_dir()
        )

    def iter_manifests(self) -> Iterator[RunManifest]:
        """Yield the manifest of every complete run, skipping corrupt ones.

        In-flight directories (no manifest yet) are silently ignored;
        corrupted or truncated manifests raise a
        :class:`StoreCorruptionWarning` and are skipped, so one damaged
        artifact never poisons an index rebuild or a sweep.
        """
        for run_id in self.run_ids():
            if not (self.run_dir(run_id) / MANIFEST_FILENAME).exists():
                continue
            try:
                yield self.load_manifest(run_id)
            except StoreError as error:
                warnings.warn(
                    f"skipping run {run_id}: {error}",
                    StoreCorruptionWarning,
                    stacklevel=2,
                )

    def __len__(self) -> int:
        return len(self.run_ids())

    # -- maintenance -------------------------------------------------------------------

    def delete(self, run_id: str) -> None:
        """Remove one run's artifact directory (missing runs are a no-op)."""
        run_dir = self.run_dir(run_id)
        if run_dir.is_dir():
            shutil.rmtree(run_dir)

    def gc(
        self,
        *,
        keep_engine_version: Optional[str] = None,
        tier: Optional[str] = None,
        delete_all: bool = False,
        apply: bool = False,
    ) -> List[RunManifest]:
        """Collect runs and (optionally) delete them.

        Returns the manifests of the runs selected for collection: every
        run when *delete_all* is set, otherwise runs whose engine version
        differs from *keep_engine_version* and/or whose tier matches
        *tier*.  Nothing is removed unless *apply* is true — the default
        is a dry run, mirroring the ``--update-baseline``-style workflow
        of the benchmark gate (inspect first, then apply explicitly).
        """
        selected: List[RunManifest] = []
        for manifest in self.iter_manifests():
            if delete_all:
                selected.append(manifest)
                continue
            stale_engine = (
                keep_engine_version is not None
                and manifest.engine_version != keep_engine_version
            )
            tier_match = tier is not None and manifest.tier == tier
            if stale_engine or tier_match:
                selected.append(manifest)
        if apply:
            for manifest in selected:
                self.delete(manifest.run_id)
        return selected
