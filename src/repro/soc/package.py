"""Processor package model (LGA desktop / BGA mobile).

The package is where DarkGates' first key technique lives: the desktop (LGA)
package shorts the per-core gated voltage domains and the shared ungated
domain into one (paper Fig. 5 and Fig. 6), while the mobile (BGA) package
keeps them separate so the power-gates stay usable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.common.errors import ConfigurationError
from repro.pdn.ladder import PdnConfiguration, core_node


class PackageKind(Enum):
    """Physical package family."""

    LGA = "lga"  # land grid array: socketed desktop packages
    BGA = "bga"  # ball grid array: soldered-down mobile packages


@dataclass(frozen=True)
class Package:
    """A package option for the client die.

    Parameters
    ----------
    name:
        Package name (e.g. ``"skylake_s_lga1151"``).
    kind:
        LGA (desktop) or BGA (mobile).
    bypass_power_gates:
        Whether this package shorts the gated and ungated core domains
        (the DarkGates desktop package does; the mobile package does not).
    pdn:
        The power-delivery configuration of the core domain as seen through
        this package.
    """

    name: str
    kind: PackageKind
    bypass_power_gates: bool
    pdn: PdnConfiguration

    def __post_init__(self) -> None:
        if self.pdn.bypassed != self.bypass_power_gates:
            raise ConfigurationError(
                "package bypass flag and PDN configuration disagree: "
                f"bypass_power_gates={self.bypass_power_gates} but "
                f"pdn.bypassed={self.pdn.bypassed}"
            )

    # -- voltage domains -------------------------------------------------------------

    def core_voltage_domains(self) -> List[str]:
        """Names of the core-supply voltage domains this package exposes.

        The gated package exposes the shared ungated domain plus one domain
        per core; the bypassed package exposes a single merged domain.
        """
        if self.bypass_power_gates:
            return ["vcc_core_merged"]
        domains = ["vcu"]
        domains.extend(core_node(i) for i in range(self.pdn.core_count))
        return domains

    def domain_count(self) -> int:
        """Number of distinct core-supply voltage domains."""
        return len(self.core_voltage_domains())

    def supports_core_power_gating(self) -> bool:
        """Whether idle cores can actually be power-gated in this package."""
        return not self.bypass_power_gates

    def describe(self) -> str:
        """One-line human-readable description."""
        gating = "bypassed" if self.bypass_power_gates else "enabled"
        return f"{self.name}: {self.kind.value.upper()} package, power-gates {gating}"


def desktop_package(pdn: PdnConfiguration, name: str = "skylake_s_lga1151") -> Package:
    """The DarkGates desktop package: LGA with power-gates bypassed."""
    return Package(
        name=name,
        kind=PackageKind.LGA,
        bypass_power_gates=True,
        pdn=pdn.with_bypass(),
    )


def mobile_package(pdn: PdnConfiguration, name: str = "skylake_h_bga1440") -> Package:
    """The baseline mobile package: BGA with power-gates enabled."""
    return Package(
        name=name,
        kind=PackageKind.BGA,
        bypass_power_gates=False,
        pdn=pdn.with_gates(),
    )
