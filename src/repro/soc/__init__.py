"""Processor (SoC) substrate.

Models the hardware the paper evaluates on: a four-core Skylake-class client
SoC with integrated graphics, built as one die that is packaged either for
high-end mobile (Skylake-H, BGA, power-gates enabled) or for high-end desktop
(Skylake-S, LGA, power-gates bypassed under DarkGates).

* :mod:`repro.soc.core` — a CPU core with dynamic/leakage power and a
  per-core power-gate.
* :mod:`repro.soc.graphics` — the integrated graphics engine.
* :mod:`repro.soc.uncore` — LLC, ring, system agent and memory IO.
* :mod:`repro.soc.die` — the die: cores + graphics + uncore.
* :mod:`repro.soc.package` — LGA/BGA packages and domain shorting (bypass).
* :mod:`repro.soc.skus` — concrete SKUs (i7-6700K, i7-6920HQ, Broadwell) and
  their cTDP configurations.
* :mod:`repro.soc.processor` — the assembled processor handed to the PMU
  firmware model and the simulation engine.
"""

from repro.soc.core import CpuCore
from repro.soc.die import Die
from repro.soc.graphics import GraphicsEngine
from repro.soc.package import Package, PackageKind
from repro.soc.processor import Processor
from repro.soc.skus import (
    SkuDescription,
    broadwell_desktop,
    skylake_h_mobile,
    skylake_s_desktop,
)
from repro.soc.uncore import Uncore

__all__ = [
    "CpuCore",
    "Die",
    "GraphicsEngine",
    "Package",
    "PackageKind",
    "Processor",
    "SkuDescription",
    "broadwell_desktop",
    "skylake_h_mobile",
    "skylake_s_desktop",
    "Uncore",
]
