"""Integrated graphics engine model.

The graphics engine shares the compute-domain power budget with the CPU
cores (paper Sections 2.1 and 7.2).  Its performance on 3DMark-class
workloads scales with its own frequency, so whatever budget the PBM can give
it translates almost directly into frames per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.grid import FrequencyGrid
from repro.common.units import MHZ
from repro.common.validation import ensure_positive
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel


@dataclass(frozen=True)
class GraphicsEngine:
    """The die's integrated graphics engine (GT).

    Parameters
    ----------
    name:
        Identifier, e.g. ``"gt2"``.
    frequency_grid:
        Selectable graphics frequencies; Skylake GT2 spans 300 MHz - 1.15 GHz
        in 50 MHz steps (paper Table 2).
    dynamic / leakage:
        Power models of the graphics slice.
    voltage_v0 / voltage_slope_per_ghz:
        Linearised graphics V/F relationship used to cost an operating point.
    """

    name: str = "gt2"
    frequency_grid: FrequencyGrid = field(
        default_factory=lambda: FrequencyGrid(
            min_hz=300 * MHZ, max_hz=1150 * MHZ, step_hz=25 * MHZ
        )
    )
    dynamic: DynamicPowerModel = field(
        default_factory=lambda: DynamicPowerModel(cdyn_max_f=28e-9)
    )
    leakage: LeakagePowerModel = field(
        default_factory=lambda: LeakagePowerModel(
            reference_power_w=1.6, reference_voltage_v=1.0
        )
    )
    voltage_v0: float = 0.55
    voltage_slope_per_ghz: float = 0.42

    def __post_init__(self) -> None:
        ensure_positive(self.voltage_v0, "voltage_v0")
        ensure_positive(self.voltage_slope_per_ghz, "voltage_slope_per_ghz")

    def voltage_for_frequency(self, frequency_hz: float) -> float:
        """Supply voltage required at *frequency_hz*."""
        return self.voltage_v0 + self.voltage_slope_per_ghz * (frequency_hz / 1e9)

    def active_power_w(
        self, frequency_hz: float, activity: float = 0.9, temperature_c: float = 75.0
    ) -> float:
        """Power of the graphics engine while rendering."""
        voltage = self.voltage_for_frequency(frequency_hz)
        dynamic = self.dynamic.power_w(voltage, frequency_hz, activity)
        leak = self.leakage.power_w(voltage, temperature_c)
        return dynamic + leak

    def idle_power_w(self, temperature_c: float = 50.0) -> float:
        """Power when the graphics engine is idle and power-gated (RC6)."""
        # RC6 gates the render engines; a small residual remains for the
        # always-on display plumbing attributed to the graphics slice.
        return 0.05

    def max_frequency_within_power(
        self, budget_w: float, activity: float = 0.9, temperature_c: float = 75.0
    ) -> float:
        """Highest selectable graphics frequency whose power fits *budget_w*.

        Walks the frequency grid downwards; returns the grid minimum if even
        that exceeds the budget (the engine cannot run slower than its
        minimum operating point).
        """
        for frequency in self.frequency_grid.descending():
            if self.active_power_w(frequency, activity, temperature_c) <= budget_w:
                return frequency
        return self.frequency_grid.min_hz
