"""CPU core model.

A core is characterised by its maximum dynamic capacitance, its leakage, its
area (which sizes the power-gate), and the idle states it supports.  The
core does not know which frequency it runs at — that is decided by the PMU
firmware model — it only answers "what would this operating point cost".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.validation import ensure_in_range, ensure_positive
from repro.pdn.powergate import PowerGate
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel


class CoreCState(Enum):
    """Core-level idle states (``CCi`` in the paper's Table 1)."""

    CC0 = "cc0"  # executing instructions
    CC1 = "cc1"  # halted, clocks gated locally
    CC3 = "cc3"  # clocks off, caches retained
    CC6 = "cc6"  # power-gated (or voltage held at retention when bypassed)


@dataclass(frozen=True)
class CpuCore:
    """One CPU core of the client die.

    Parameters
    ----------
    name:
        Core identifier, e.g. ``"core0"``.
    area_mm2:
        Core area, used to size the power-gate and report overheads.
    dynamic:
        Dynamic-power model (virus Cdyn).
    leakage:
        Leakage model at the reference voltage/temperature.
    power_gate:
        The core's built-in power-gate.  Present on every die (Section 2.2);
        whether it is *used* depends on the package/firmware mode.
    """

    name: str
    area_mm2: float = 8.5
    dynamic: DynamicPowerModel = field(
        default_factory=lambda: DynamicPowerModel(cdyn_max_f=4.5e-9)
    )
    leakage: LeakagePowerModel = field(
        default_factory=lambda: LeakagePowerModel(
            reference_power_w=0.22, reference_voltage_v=1.0, voltage_sensitivity_per_v=1.8
        )
    )
    power_gate: PowerGate = field(
        default_factory=lambda: PowerGate.sized_for_core(
            name="core_pg", core_area_mm2=8.5, area_overhead_fraction=0.03
        )
    )

    def __post_init__(self) -> None:
        ensure_positive(self.area_mm2, "area_mm2")

    # -- power at an operating point ----------------------------------------------

    def active_power_w(
        self,
        frequency_hz: float,
        voltage_v: float,
        activity: float,
        temperature_c: float = 75.0,
    ) -> float:
        """Total power of the core while executing (CC0)."""
        ensure_in_range(activity, 0.0, 1.0, "activity")
        dynamic = self.dynamic.power_w(voltage_v, frequency_hz, activity)
        leak = self.leakage.power_w(voltage_v, temperature_c)
        return dynamic + leak

    def idle_power_w(
        self,
        voltage_v: float,
        gated: bool,
        temperature_c: float = 60.0,
    ) -> float:
        """Power of the core while idle (CC6).

        When *gated* is True the core sits behind its (off) power-gate and
        only residual leakage remains; when the gates are bypassed the core
        keeps leaking at the shared rail voltage — the cost DarkGates pays.
        """
        if gated:
            return self.power_gate.leakage_when_gated_w(
                self.leakage.power_w(voltage_v, temperature_c)
            )
        return self.leakage.power_w(voltage_v, temperature_c)

    def virus_current_a(self, frequency_hz: float, voltage_v: float) -> float:
        """Worst-case (power-virus) current of this core."""
        dynamic = self.dynamic.virus_current_a(voltage_v, frequency_hz)
        return dynamic + self.leakage.current_a(voltage_v)

    # -- structural properties -------------------------------------------------------

    def power_gate_area_overhead(self) -> float:
        """Power-gate area as a fraction of the core area."""
        return self.power_gate.area_overhead_fraction(self.area_mm2)
