"""The assembled processor: one die in one package at one TDP configuration.

A :class:`Processor` is the hardware object the PMU firmware model and the
simulation engine operate on.  It is deliberately policy-free: it describes
what the silicon and package *are*, while :mod:`repro.pmu` decides how they
are driven.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import ensure_positive
from repro.power.thermal import ThermalLimits, ThermalModel
from repro.soc.die import Die
from repro.soc.package import Package


@dataclass(frozen=True)
class Processor:
    """A concrete processor product.

    Parameters
    ----------
    name:
        Marketing-style name, e.g. ``"i7-6700K"``.
    die:
        The silicon die.
    package:
        The package the die is mounted in (decides whether power-gates are
        bypassed).
    tdp_w:
        Thermal design power of this configuration.  The same die/package is
        sold and configured at several TDP levels (cTDP, Section 2.2), which
        is exactly what the evaluation sweeps.
    tjmax_c:
        Maximum junction temperature.
    thermal_resistance_scale:
        Die-to-die multiplier on the cooling solution's thermal resistance
        (process-variation knob); 1.0 is the nominal part.
    """

    name: str
    die: Die
    package: Package
    tdp_w: float
    tjmax_c: float = 100.0
    thermal_resistance_scale: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.tdp_w, "tdp_w")
        ensure_positive(self.thermal_resistance_scale, "thermal_resistance_scale")

    # -- derived views ---------------------------------------------------------------

    @property
    def core_count(self) -> int:
        """Number of CPU cores."""
        return self.die.core_count

    @property
    def power_gates_bypassed(self) -> bool:
        """True when this product's package bypasses the core power-gates."""
        return self.package.bypass_power_gates

    def thermal_model(self) -> ThermalModel:
        """Thermal model of this configuration's cooling solution."""
        return ThermalModel(
            limits=ThermalLimits(tdp_w=self.tdp_w, tjmax_c=self.tjmax_c),
            resistance_scale=self.thermal_resistance_scale,
        )

    def with_tdp(self, tdp_w: float) -> "Processor":
        """The same processor configured to a different TDP (cTDP)."""
        return Processor(
            name=self.name,
            die=self.die,
            package=self.package,
            tdp_w=tdp_w,
            tjmax_c=self.tjmax_c,
            thermal_resistance_scale=self.thermal_resistance_scale,
        )

    def describe(self) -> str:
        """One-line description used by reports and examples."""
        return (
            f"{self.name}: {self.core_count} cores, "
            f"{self.package.describe()}, TDP {self.tdp_w:.0f} W"
        )
