"""Die model: cores + graphics + uncore plus the silicon's V/F character.

A single client die is reused across market segments (paper Section 2.2):
the same silicon is packaged as Skylake-H (mobile, power-gates enabled) and
Skylake-S (desktop, power-gates bypassed under DarkGates).  The die therefore
carries everything that is segment-independent: the component inventory, the
silicon's nominal voltage/frequency characteristic, and its electrical
limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.errors import ConfigurationError
from repro.common.grid import FrequencyGrid
from repro.common.units import GHZ, MHZ
from repro.common.validation import ensure_non_negative, ensure_positive
from repro.soc.core import CpuCore
from repro.soc.graphics import GraphicsEngine
from repro.soc.uncore import Uncore


@dataclass(frozen=True)
class SiliconVfCharacter:
    """Nominal (guardband-free) voltage requirement of the core silicon.

    ``Vnom(f) = v0 + slope * f_ghz + curvature * f_ghz^2``

    The quadratic term captures the steepening of the curve near the top of
    the frequency range, which is why Vmax headroom converts into fewer
    megahertz at 4+ GHz than it would at 2 GHz.
    """

    v0: float = 0.58
    slope_v_per_ghz: float = 0.115
    curvature_v_per_ghz2: float = 0.011

    def __post_init__(self) -> None:
        ensure_positive(self.v0, "v0")
        ensure_positive(self.slope_v_per_ghz, "slope_v_per_ghz")
        ensure_non_negative(self.curvature_v_per_ghz2, "curvature_v_per_ghz2")

    def nominal_voltage_v(self, frequency_hz: float) -> float:
        """Nominal voltage the silicon needs at *frequency_hz*."""
        ensure_non_negative(frequency_hz, "frequency_hz")
        f_ghz = frequency_hz / GHZ
        return self.v0 + self.slope_v_per_ghz * f_ghz + self.curvature_v_per_ghz2 * f_ghz ** 2

    def slope_at(self, frequency_hz: float) -> float:
        """dV/df (volts per GHz) at *frequency_hz*."""
        f_ghz = frequency_hz / GHZ
        return self.slope_v_per_ghz + 2.0 * self.curvature_v_per_ghz2 * f_ghz

    def max_frequency_for_voltage(self, voltage_v: float) -> float:
        """Largest frequency whose nominal voltage is at most *voltage_v*.

        Returns 0.0 when even zero frequency needs more than *voltage_v*
        (i.e. the voltage is below v0).
        """
        if voltage_v <= self.v0:
            return 0.0
        if self.curvature_v_per_ghz2 == 0:
            f_ghz = (voltage_v - self.v0) / self.slope_v_per_ghz
            return f_ghz * GHZ
        # Solve curvature * f^2 + slope * f + (v0 - voltage) = 0 for f > 0.
        a = self.curvature_v_per_ghz2
        b = self.slope_v_per_ghz
        c = self.v0 - voltage_v
        discriminant = b * b - 4.0 * a * c
        f_ghz = (-b + discriminant ** 0.5) / (2.0 * a)
        return max(0.0, f_ghz) * GHZ


@dataclass(frozen=True)
class Die:
    """A client-processor die.

    Parameters
    ----------
    name:
        Die name (e.g. ``"skylake_4c_gt2"``).
    cores:
        The CPU cores on the die.
    graphics:
        Integrated graphics engine.
    uncore:
        Shared uncore.
    vf_character:
        Nominal core V/F characteristic of this silicon.
    core_frequency_grid:
        Selectable CPU core frequencies (0.8 - 4.2 GHz on the evaluated SKUs,
        100 MHz steps); the PMU may further restrict the top depending on
        limits.
    vmax_v:
        Maximum operational (reliability) voltage of the core domain.
    vmin_v:
        Minimum functional voltage.
    iccmax_a:
        Electrical design current (EDC) limit of the core domain.
    process_nm:
        Process node, for reporting.
    area_mm2:
        Total die area, for overhead reporting (Skylake 4+2 is ~122 mm^2).
    """

    name: str
    cores: List[CpuCore] = field(default_factory=list)
    graphics: GraphicsEngine = field(default_factory=GraphicsEngine)
    uncore: Uncore = field(default_factory=Uncore)
    vf_character: SiliconVfCharacter = field(default_factory=SiliconVfCharacter)
    core_frequency_grid: FrequencyGrid = field(
        default_factory=lambda: FrequencyGrid(
            min_hz=800 * MHZ, max_hz=5.0 * GHZ, step_hz=100 * MHZ
        )
    )
    vmax_v: float = 1.42
    vmin_v: float = 0.55
    iccmax_a: float = 140.0
    process_nm: int = 14
    area_mm2: float = 122.0

    def __post_init__(self) -> None:
        if not self.cores:
            raise ConfigurationError("a die needs at least one CPU core")
        ensure_positive(self.vmax_v, "vmax_v")
        ensure_positive(self.vmin_v, "vmin_v")
        if self.vmax_v <= self.vmin_v:
            raise ConfigurationError("vmax_v must exceed vmin_v")
        ensure_positive(self.iccmax_a, "iccmax_a")
        ensure_positive(self.area_mm2, "area_mm2")

    # -- aggregate properties --------------------------------------------------------

    @property
    def core_count(self) -> int:
        """Number of CPU cores on the die."""
        return len(self.cores)

    def total_core_area_mm2(self) -> float:
        """Summed area of all CPU cores."""
        return sum(core.area_mm2 for core in self.cores)

    def total_power_gate_area_mm2(self) -> float:
        """Summed area of every core's power-gate."""
        return sum(core.power_gate.area_mm2 for core in self.cores)

    def power_gate_die_area_fraction(self) -> float:
        """Power-gate area as a fraction of the whole die."""
        return self.total_power_gate_area_mm2() / self.area_mm2

    def cores_leakage_w(self, voltage_v: float, temperature_c: float = 60.0) -> float:
        """Leakage of all cores at a common voltage (ungated)."""
        return sum(core.leakage.power_w(voltage_v, temperature_c) for core in self.cores)


def skylake_client_die(core_count: int = 4, name: str = "skylake_4c_gt2") -> Die:
    """Build the Skylake client die used by both evaluated packages."""
    cores = [CpuCore(name=f"core{i}") for i in range(core_count)]
    return Die(name=name, cores=cores)
