"""Concrete SKU definitions used by the evaluation.

Table 2 of the paper lists the evaluated parts:

* **i7-6700K** — Skylake-S, the high-end desktop package.  Under DarkGates
  its package bypasses the core power-gates.
* **i7-6920HQ** — Skylake-H, the high-end mobile package, power-gates
  enabled.  This is the baseline the desktop part is compared against.

Both share the same die (0.8 - 4.2 GHz core range, 300 - 1150 MHz graphics,
8 MB LLC, 14 nm) and are configured across TDP levels 35 W - 91 W.

For the motivational experiment (Fig. 3) the paper uses the previous
generation (Broadwell); :func:`broadwell_desktop` builds an equivalent
gated-package part with a slightly lower V/F ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import ConfigurationError

from repro.common.grid import FrequencyGrid
from repro.common.units import GHZ, MHZ
from repro.pdn.ladder import PdnConfiguration
from repro.soc.die import Die, SiliconVfCharacter, skylake_client_die
from repro.soc.package import desktop_package, mobile_package
from repro.soc.processor import Processor

#: TDP levels the evaluation sweeps for the Skylake parts (paper Fig. 8/9).
SKYLAKE_TDP_LEVELS_W: Tuple[float, ...] = (35.0, 45.0, 65.0, 91.0)

#: TDP levels used in the Broadwell motivational experiment (paper Fig. 3).
BROADWELL_TDP_LEVELS_W: Tuple[float, ...] = (35.0, 45.0, 65.0, 95.0)


@dataclass(frozen=True)
class SkuDescription:
    """Static datasheet-style description of a SKU (for Table 2 reporting)."""

    name: str
    segment: str
    package: str
    core_count: int
    core_frequency_range_ghz: Tuple[float, float]
    graphics_frequency_range_mhz: Tuple[float, float]
    llc_mb: float
    tdp_range_w: Tuple[float, float]
    process_nm: int


def skylake_s_desktop(tdp_w: float = 91.0) -> Processor:
    """The Skylake-S (i7-6700K-class) desktop part with DarkGates bypassing."""
    die = skylake_client_die()
    pdn = PdnConfiguration(core_count=die.core_count)
    return Processor(
        name="i7-6700K (Skylake-S)",
        die=die,
        package=desktop_package(pdn),
        tdp_w=tdp_w,
    )


def skylake_h_mobile(tdp_w: float = 91.0) -> Processor:
    """The Skylake-H (i7-6920HQ-class) part: same die, power-gates enabled.

    The paper's evaluation configures both parts to the same TDP level so
    that the only difference is the package (gated vs bypassed); the default
    TDP here is therefore the desktop-style 91 W rather than the part's
    45 W datasheet value.
    """
    die = skylake_client_die()
    pdn = PdnConfiguration(core_count=die.core_count)
    return Processor(
        name="i7-6920HQ (Skylake-H)",
        die=die,
        package=mobile_package(pdn),
        tdp_w=tdp_w,
    )


def broadwell_desktop(tdp_w: float = 65.0) -> Processor:
    """A Broadwell-class desktop part for the motivational experiment.

    Broadwell is one generation older: slightly lower top frequency and a
    marginally less efficient V/F characteristic, but the same gated
    power-delivery structure as the Skylake mobile package.
    """
    die_template = skylake_client_die(name="broadwell_4c_gt2")
    die = Die(
        name=die_template.name,
        cores=die_template.cores,
        graphics=die_template.graphics,
        uncore=die_template.uncore,
        vf_character=SiliconVfCharacter(
            v0=0.60, slope_v_per_ghz=0.125, curvature_v_per_ghz2=0.012
        ),
        core_frequency_grid=FrequencyGrid(
            min_hz=800 * MHZ, max_hz=4.4 * GHZ, step_hz=100 * MHZ
        ),
        vmax_v=1.36,
        vmin_v=0.55,
        iccmax_a=130.0,
        process_nm=14,
        area_mm2=133.0,
    )
    pdn = PdnConfiguration(core_count=die.core_count)
    return Processor(
        name="i7-5775C-class (Broadwell)",
        die=die,
        package=mobile_package(pdn, name="broadwell_gated_pkg"),
        tdp_w=tdp_w,
    )


#: Datasheet registry keyed by the builder names of
#: :data:`repro.core.spec.SKU_BUILDERS` (``"skylake-s"``, ``"skylake-h"``,
#: ``"broadwell"``).  The two Skylake rows are the paper's Table 2; the
#: Broadwell row covers the Fig. 3 motivation part.  SKU binning
#: (:mod:`repro.variation.binning`) maps sampled die populations onto these
#: parts, and :func:`repro.analysis.reporting.format_sku_table` renders them.
SKU_DESCRIPTIONS: Dict[str, SkuDescription] = {
    "skylake-s": SkuDescription(
        name="i7-6700K",
        segment="Skylake-S (high-end desktop)",
        package="LGA1151",
        core_count=4,
        core_frequency_range_ghz=(0.8, 4.2),
        graphics_frequency_range_mhz=(300.0, 1150.0),
        llc_mb=8.0,
        tdp_range_w=(35.0, 91.0),
        process_nm=14,
    ),
    "skylake-h": SkuDescription(
        name="i7-6920HQ",
        segment="Skylake-H (high-end mobile)",
        package="BGA1440",
        core_count=4,
        core_frequency_range_ghz=(0.8, 4.2),
        graphics_frequency_range_mhz=(300.0, 1150.0),
        llc_mb=8.0,
        tdp_range_w=(35.0, 91.0),
        process_nm=14,
    ),
    "broadwell": SkuDescription(
        name="i7-5775C-class",
        segment="Broadwell (previous-generation desktop)",
        package="LGA1150",
        core_count=4,
        core_frequency_range_ghz=(0.8, 4.4),
        graphics_frequency_range_mhz=(300.0, 1150.0),
        llc_mb=6.0,
        tdp_range_w=(35.0, 95.0),
        process_nm=14,
    ),
}


def describe_sku(sku: str) -> SkuDescription:
    """Datasheet row of one registered SKU (by builder name)."""
    try:
        return SKU_DESCRIPTIONS[sku]
    except KeyError:
        raise ConfigurationError(
            f"unknown sku {sku!r}; known: {sorted(SKU_DESCRIPTIONS)}"
        ) from None


def sku_descriptions() -> Tuple[SkuDescription, SkuDescription]:
    """Datasheet rows for the two evaluated Skylake SKUs (paper Table 2)."""
    return (SKU_DESCRIPTIONS["skylake-s"], SKU_DESCRIPTIONS["skylake-h"])
