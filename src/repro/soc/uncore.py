"""Uncore model: LLC, ring interconnect, system agent, and memory IO.

The uncore matters to the reproduction in two ways: it adds a mostly
frequency-independent power floor that eats into the TDP budget (making the
35 W configurations thermally tight), and its progressive shut-down is what
distinguishes the deeper package C-states of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class Uncore:
    """Shared uncore of the client die.

    Parameters
    ----------
    llc_mb:
        Last-level-cache capacity in megabytes (8 MB on the evaluated parts).
    active_power_w:
        Power of the uncore while any core or the graphics engine is active
        (package C0): ring, LLC, memory controller and DDR IO.
    memory_active_extra_w:
        Additional power when the workload is memory-intensive.
    c2_power_w .. c8_power_w:
        Uncore power at progressively deeper package C-states, following the
        shut-down steps of Table 1 (LLC flushed/off, DRAM in self-refresh,
        clock generators off, IO/memory domains power-gated).
    """

    llc_mb: float = 8.0
    active_power_w: float = 6.0
    memory_active_extra_w: float = 1.8
    c2_power_w: float = 2.4
    c3_power_w: float = 1.1
    c6_power_w: float = 0.55
    c7_power_w: float = 0.08
    c8_power_w: float = 0.08

    def __post_init__(self) -> None:
        ensure_positive(self.llc_mb, "llc_mb")
        ensure_non_negative(self.active_power_w, "active_power_w")
        ensure_non_negative(self.memory_active_extra_w, "memory_active_extra_w")
        powers = [
            self.c2_power_w,
            self.c3_power_w,
            self.c6_power_w,
            self.c7_power_w,
            self.c8_power_w,
        ]
        for value, name in zip(
            powers, ["c2_power_w", "c3_power_w", "c6_power_w", "c7_power_w", "c8_power_w"]
        ):
            ensure_non_negative(value, name)
        for shallower, deeper in zip(powers, powers[1:]):
            if deeper > shallower + 1e-12:
                raise ConfigurationError(
                    "uncore package C-state powers must be non-increasing with depth"
                )

    def package_c0_power_w(self, memory_intensity: float = 0.0) -> float:
        """Uncore power while the package is active."""
        ensure_non_negative(memory_intensity, "memory_intensity")
        return self.active_power_w + self.memory_active_extra_w * min(1.0, memory_intensity)

    def package_idle_power_w(self, cstate_name: str) -> float:
        """Uncore power at a package C-state (by name, e.g. ``"C7"``)."""
        mapping = {
            "C2": self.c2_power_w,
            "C3": self.c3_power_w,
            "C6": self.c6_power_w,
            "C7": self.c7_power_w,
            "C8": self.c8_power_w,
            "C9": self.c8_power_w * 0.6,
            "C10": self.c8_power_w * 0.3,
        }
        try:
            return mapping[cstate_name.upper()]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown package C-state {cstate_name!r}; "
                f"known: {sorted(mapping)}"
            ) from exc
