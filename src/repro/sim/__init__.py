"""Simulation engine.

Runs workload descriptors against a firmware-configured processor
(:class:`~repro.pmu.pcode.Pcode`) and reports the metrics the paper's
evaluation is built from: relative performance for CPU and graphics
workloads, average power for energy scenarios, and idle-state residencies
for phase traces.  :meth:`SimulationEngine.run` accepts any workload class
polymorphically and returns the matching :class:`RunResult` subtype, all of
which round-trip through JSON via ``to_dict()`` / ``RunResult.from_dict()``.

* :mod:`repro.sim.metrics` — result dataclasses.
* :mod:`repro.sim.engine` — the engine itself.
* :mod:`repro.sim.residency` — phase-trace replay and residency accounting.
* :mod:`repro.sim.dynamics` — the closed-loop (time-stepped) Pcode dynamics
  engine: turbo budget, thermal RC, per-step DVFS, package C-states.
"""

from repro.sim.dynamics import BatchedDynamicsSimulator, DynamicsSimulator
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    CpuRunResult,
    DynamicRunResult,
    EnergyRunResult,
    GraphicsRunResult,
    PhaseEnergy,
    RunResult,
)
from repro.sim.residency import ResidencyReport, ResidencyTracker

__all__ = [
    "SimulationEngine",
    "RunResult",
    "BatchedDynamicsSimulator",
    "CpuRunResult",
    "DynamicRunResult",
    "DynamicsSimulator",
    "EnergyRunResult",
    "GraphicsRunResult",
    "PhaseEnergy",
    "ResidencyReport",
    "ResidencyTracker",
]
