"""Simulation engine.

Runs workload descriptors against a firmware-configured processor
(:class:`~repro.pmu.pcode.Pcode`) and reports the metrics the paper's
evaluation is built from: relative performance for CPU and graphics
workloads, average power for energy scenarios, and idle-state residencies
for phase traces.

* :mod:`repro.sim.metrics` — result dataclasses.
* :mod:`repro.sim.engine` — the engine itself.
* :mod:`repro.sim.residency` — phase-trace replay and residency accounting.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    CpuRunResult,
    EnergyRunResult,
    GraphicsRunResult,
    PhaseEnergy,
)
from repro.sim.residency import ResidencyReport, ResidencyTracker

__all__ = [
    "SimulationEngine",
    "CpuRunResult",
    "EnergyRunResult",
    "GraphicsRunResult",
    "PhaseEnergy",
    "ResidencyReport",
    "ResidencyTracker",
]
