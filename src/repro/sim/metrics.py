"""Result types produced by the simulation engine.

Every workload class has its own result dataclass, but all of them derive
from :class:`RunResult` so that callers of the polymorphic
:meth:`~repro.sim.engine.SimulationEngine.run` can treat them uniformly:
each result exposes a ``kind`` tag, a headline ``primary_metric``, and JSON
round-tripping via :meth:`RunResult.to_dict` / :meth:`RunResult.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Tuple, Type

from repro.common.errors import ConfigurationError
from repro.pmu.dvfs import LimitingFactor, OperatingPoint
from repro.pmu.pbm import GraphicsOperatingPoint

#: Version of every result payload schema (``to_dict``/``to_json``).  Bump
#: when a payload gains/renames fields; readers reject payloads written by
#: a *newer* schema instead of silently misparsing them.  The run store
#: stamps this into its artifacts so stale stored results are detectable.
#: Version 2 added the embedded ``summary`` block (throttle residency by
#: limiting factor, QoS headline metrics) to dynamic-run payloads.
RESULT_SCHEMA_VERSION = 2

#: Limiting factors that count as *throttling* for residency accounting:
#: the sustained power budget and the thermal loop.  Vmax/Iccmax/grid
#: limits are silicon ceilings, not workload-induced throttles.
THROTTLE_FACTORS: Tuple[str, ...] = (
    LimitingFactor.TDP.value,
    LimitingFactor.THERMAL.value,
)


def check_payload_schema(data: Dict[str, Any], what: str) -> None:
    """Reject payloads written by a schema newer than this library.

    Payloads without a ``schema_version`` field (pre-store artifacts) are
    accepted as version 1.
    """
    version = data.get("schema_version", RESULT_SCHEMA_VERSION)
    if not isinstance(version, int) or version > RESULT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{what} payload has schema version {version!r}, newer than "
            f"this library understands (<= {RESULT_SCHEMA_VERSION})"
        )


class RunResult:
    """Base class of every engine result.

    Concrete results are frozen dataclasses; this base adds the polymorphic
    surface shared by all of them.  ``to_dict`` produces a JSON-safe payload
    tagged with the result ``kind``; ``from_dict`` reverses it, returning an
    instance equal to the original.
    """

    #: Workload-class tag ("cpu", "graphics", "energy").
    kind: ClassVar[str] = ""

    @property
    def primary_metric(self) -> float:
        """The headline number the paper reports for this workload class."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this result."""
        raise NotImplementedError

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunResult":
        """Rebuild a concrete result from a :meth:`to_dict` payload."""
        check_payload_schema(data, "run result")
        kind = data.get("kind")
        try:
            result_type = _RESULT_TYPES[kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown run-result kind {kind!r}; "
                f"expected one of {sorted(_RESULT_TYPES)}"
            ) from None
        return result_type._from_payload(data)


def _operating_point_to_dict(point: OperatingPoint) -> Dict[str, Any]:
    return {
        "frequency_hz": point.frequency_hz,
        "voltage_v": point.voltage_v,
        "package_power_w": point.package_power_w,
        "cores_power_w": point.cores_power_w,
        "idle_cores_power_w": point.idle_cores_power_w,
        "uncore_power_w": point.uncore_power_w,
        "limiting_factor": point.limiting_factor.value,
        "junction_temperature_c": point.junction_temperature_c,
    }


def _operating_point_from_dict(data: Dict[str, Any]) -> OperatingPoint:
    return OperatingPoint(
        frequency_hz=data["frequency_hz"],
        voltage_v=data["voltage_v"],
        package_power_w=data["package_power_w"],
        cores_power_w=data["cores_power_w"],
        idle_cores_power_w=data["idle_cores_power_w"],
        uncore_power_w=data["uncore_power_w"],
        limiting_factor=LimitingFactor(data["limiting_factor"]),
        junction_temperature_c=data["junction_temperature_c"],
    )


def _graphics_point_to_dict(point: GraphicsOperatingPoint) -> Dict[str, Any]:
    return {
        "graphics_frequency_hz": point.graphics_frequency_hz,
        "graphics_power_w": point.graphics_power_w,
        "graphics_budget_w": point.graphics_budget_w,
        "cpu_power_w": point.cpu_power_w,
        "idle_cores_power_w": point.idle_cores_power_w,
        "uncore_power_w": point.uncore_power_w,
        "package_power_w": point.package_power_w,
    }


def _graphics_point_from_dict(data: Dict[str, Any]) -> GraphicsOperatingPoint:
    return GraphicsOperatingPoint(**data)


@dataclass(frozen=True)
class CpuRunResult(RunResult):
    """Outcome of running one CPU workload on one system configuration."""

    kind: ClassVar[str] = "cpu"

    workload_name: str
    operating_point: OperatingPoint
    relative_performance: float

    @property
    def frequency_hz(self) -> float:
        """Resolved core frequency."""
        return self.operating_point.frequency_hz

    @property
    def package_power_w(self) -> float:
        """Sustained package power during the run."""
        return self.operating_point.package_power_w

    @property
    def primary_metric(self) -> float:
        """Relative SPEC-style performance."""
        return self.relative_performance

    def improvement_over(self, baseline: "CpuRunResult") -> float:
        """Fractional performance improvement over a baseline run."""
        return self.relative_performance / baseline.relative_performance - 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": RESULT_SCHEMA_VERSION,
            "workload_name": self.workload_name,
            "operating_point": _operating_point_to_dict(self.operating_point),
            "relative_performance": self.relative_performance,
        }

    @classmethod
    def _from_payload(cls, data: Dict[str, Any]) -> "CpuRunResult":
        return cls(
            workload_name=data["workload_name"],
            operating_point=_operating_point_from_dict(data["operating_point"]),
            relative_performance=data["relative_performance"],
        )


@dataclass(frozen=True)
class GraphicsRunResult(RunResult):
    """Outcome of running one graphics workload on one system configuration."""

    kind: ClassVar[str] = "graphics"

    workload_name: str
    operating_point: GraphicsOperatingPoint
    relative_fps: float

    @property
    def graphics_frequency_hz(self) -> float:
        """Resolved graphics frequency."""
        return self.operating_point.graphics_frequency_hz

    @property
    def primary_metric(self) -> float:
        """Relative frames-per-second."""
        return self.relative_fps

    def degradation_from(self, baseline: "GraphicsRunResult") -> float:
        """Fractional FPS degradation relative to a baseline run (>= 0)."""
        return max(0.0, 1.0 - self.relative_fps / baseline.relative_fps)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": RESULT_SCHEMA_VERSION,
            "workload_name": self.workload_name,
            "operating_point": _graphics_point_to_dict(self.operating_point),
            "relative_fps": self.relative_fps,
        }

    @classmethod
    def _from_payload(cls, data: Dict[str, Any]) -> "GraphicsRunResult":
        return cls(
            workload_name=data["workload_name"],
            operating_point=_graphics_point_from_dict(data["operating_point"]),
            relative_fps=data["relative_fps"],
        )


@dataclass(frozen=True)
class PhaseEnergy:
    """Power attributed to one phase of an energy scenario."""

    phase_name: str
    fraction: float
    power_w: float

    @property
    def contribution_w(self) -> float:
        """Contribution of this phase to the scenario's average power."""
        return self.fraction * self.power_w


@dataclass(frozen=True)
class EnergyRunResult(RunResult):
    """Outcome of running one energy scenario on one system configuration."""

    kind: ClassVar[str] = "energy"

    scenario_name: str
    phases: Tuple[PhaseEnergy, ...]
    average_power_limit_w: float

    @property
    def workload_name(self) -> str:
        """Scenario name under the common result interface."""
        return self.scenario_name

    @property
    def average_power_w(self) -> float:
        """Residency-weighted average processor power."""
        return sum(phase.contribution_w for phase in self.phases)

    @property
    def primary_metric(self) -> float:
        """Average processor power in watts."""
        return self.average_power_w

    @property
    def meets_limit(self) -> bool:
        """Whether the configuration meets the scenario's power limit."""
        return self.average_power_w <= self.average_power_limit_w

    def reduction_from(self, reference: "EnergyRunResult") -> float:
        """Fractional average-power reduction relative to a reference run."""
        if reference.average_power_w <= 0:
            return 0.0
        return 1.0 - self.average_power_w / reference.average_power_w

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": RESULT_SCHEMA_VERSION,
            "scenario_name": self.scenario_name,
            "phases": [
                {
                    "phase_name": phase.phase_name,
                    "fraction": phase.fraction,
                    "power_w": phase.power_w,
                }
                for phase in self.phases
            ],
            "average_power_limit_w": self.average_power_limit_w,
        }

    @classmethod
    def _from_payload(cls, data: Dict[str, Any]) -> "EnergyRunResult":
        return cls(
            scenario_name=data["scenario_name"],
            phases=tuple(PhaseEnergy(**phase) for phase in data["phases"]),
            average_power_limit_w=data["average_power_limit_w"],
        )


@dataclass(frozen=True)
class TransientRunResult(RunResult):
    """Outcome of running one transient droop scenario on one configuration.

    Carries the summary metrics of the waveform rather than the waveform
    itself so that study grids stay light and JSON-serialisable; rerun the
    scenario through :class:`~repro.pdn.droop.DroopSimulator` when the full
    waveform is needed.
    """

    kind: ClassVar[str] = "transient"

    scenario_name: str
    nominal_voltage_v: float
    worst_droop_v: float
    settled_drop_v: float
    transient_overshoot_v: float
    minimum_voltage_v: float
    time_step_s: float
    duration_s: float

    @property
    def workload_name(self) -> str:
        """Scenario name under the common result interface."""
        return self.scenario_name

    @property
    def primary_metric(self) -> float:
        """Worst-case droop in volts (the guardband-sizing number)."""
        return self.worst_droop_v

    @property
    def droop_fraction(self) -> float:
        """Worst droop as a fraction of the nominal rail voltage."""
        return self.worst_droop_v / self.nominal_voltage_v

    def worsening_over(self, baseline: "TransientRunResult") -> float:
        """Fractional worst-droop increase relative to a baseline run."""
        if baseline.worst_droop_v <= 0:
            return 0.0
        return self.worst_droop_v / baseline.worst_droop_v - 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": RESULT_SCHEMA_VERSION,
            "scenario_name": self.scenario_name,
            "nominal_voltage_v": self.nominal_voltage_v,
            "worst_droop_v": self.worst_droop_v,
            "settled_drop_v": self.settled_drop_v,
            "transient_overshoot_v": self.transient_overshoot_v,
            "minimum_voltage_v": self.minimum_voltage_v,
            "time_step_s": self.time_step_s,
            "duration_s": self.duration_s,
        }

    @classmethod
    def _from_payload(cls, data: Dict[str, Any]) -> "TransientRunResult":
        payload = dict(data)
        payload.pop("kind", None)
        payload.pop("schema_version", None)
        return cls(**payload)


@dataclass(frozen=True)
class DynamicRunResult(RunResult):
    """Outcome of stepping one dynamic scenario through the closed loop.

    Carries the full per-step traces (frequency, package power, junction
    temperature, EWMA of power, limiting factor, package C-state) plus the
    PL1/PL2 configuration the run executed under.  Sample ``i`` describes
    the step ending at ``times_s[i]``; temperatures are post-step.
    """

    kind: ClassVar[str] = "dynamic"

    scenario_name: str
    time_step_s: float
    pl1_w: float
    pl2_w: float
    times_s: Tuple[float, ...]
    frequencies_hz: Tuple[float, ...]
    package_powers_w: Tuple[float, ...]
    temperatures_c: Tuple[float, ...]
    average_powers_w: Tuple[float, ...]
    limiting_factors: Tuple[str, ...]
    package_cstates: Tuple[str, ...]

    def __post_init__(self) -> None:
        lengths = {
            len(trace)
            for trace in (
                self.times_s,
                self.frequencies_hz,
                self.package_powers_w,
                self.temperatures_c,
                self.average_powers_w,
                self.limiting_factors,
                self.package_cstates,
            )
        }
        if len(lengths) != 1 or 0 in lengths:
            raise ConfigurationError(
                f"dynamic run {self.scenario_name!r} traces must be non-empty "
                "and of equal length"
            )

    # -- common interface --------------------------------------------------------------

    @property
    def workload_name(self) -> str:
        """Scenario name under the common result interface."""
        return self.scenario_name

    @property
    def primary_metric(self) -> float:
        """Sustained core frequency in GHz (the TDP-story number)."""
        return self.sustained_frequency_hz / 1e9

    # -- summary metrics ---------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Simulated time."""
        return self.times_s[-1]

    def _active_indices(self) -> List[int]:
        return [i for i, f in enumerate(self.frequencies_hz) if f > 0.0]

    @property
    def average_frequency_hz(self) -> float:
        """Mean frequency over the active steps (0 if the run never woke)."""
        active = self._active_indices()
        if not active:
            return 0.0
        return sum(self.frequencies_hz[i] for i in active) / len(active)

    @property
    def peak_frequency_hz(self) -> float:
        """Highest frequency reached."""
        return max(self.frequencies_hz)

    @property
    def sustained_frequency_hz(self) -> float:
        """Frequency the run settled at: mean of the last tenth of the
        active steps (0 if the run never woke)."""
        active = self._active_indices()
        if not active:
            return 0.0
        tail = active[-max(1, len(active) // 10) :]
        return sum(self.frequencies_hz[i] for i in tail) / len(tail)

    @property
    def peak_temperature_c(self) -> float:
        """Hottest junction temperature of the run."""
        return max(self.temperatures_c)

    @property
    def final_temperature_c(self) -> float:
        """Junction temperature at the end of the run."""
        return self.temperatures_c[-1]

    @property
    def average_power_w(self) -> float:
        """Time-average package power over the whole run."""
        return sum(self.package_powers_w) / len(self.package_powers_w)

    @property
    def throttled(self) -> bool:
        """True when the run burst above its sustained frequency."""
        return self.peak_frequency_hz > self.sustained_frequency_hz + 1e-6

    @property
    def final_limiting_factor(self) -> str:
        """Limiting factor of the last active step ("none" if never active)."""
        active = self._active_indices()
        if not active:
            return LimitingFactor.NONE.value
        return self.limiting_factors[active[-1]]

    def limiting_breakdown(self) -> Dict[str, float]:
        """Fraction of active steps stopped by each limiting factor."""
        active = self._active_indices()
        if not active:
            return {}
        counts: Dict[str, int] = {}
        for i in active:
            counts[self.limiting_factors[i]] = counts.get(self.limiting_factors[i], 0) + 1
        return {factor: count / len(active) for factor, count in counts.items()}

    def cstate_residency(self) -> Dict[str, float]:
        """Fraction of the run spent in each package C-state (C0 == active)."""
        counts: Dict[str, int] = {}
        for state in self.package_cstates:
            counts[state] = counts.get(state, 0) + 1
        return {state: count / len(self.package_cstates) for state, count in counts.items()}

    def throttle_residency(self) -> Dict[str, float]:
        """Fraction of active steps throttled, keyed by limiting factor.

        Every factor in :data:`THROTTLE_FACTORS` is present (0.0 when the
        run never hit it), so downstream aggregation never key-errors.
        """
        breakdown = self.limiting_breakdown()
        return {
            factor: breakdown.get(factor, 0.0) for factor in THROTTLE_FACTORS
        }

    @property
    def throttled_fraction(self) -> float:
        """Total fraction of active steps spent power- or thermal-throttled."""
        return sum(self.throttle_residency().values())

    def summary(self) -> Dict[str, Any]:
        """First-class headline metrics of the run (embedded in payloads).

        Promotes what used to require post-processing the ``limit`` traces
        — throttle residency by limiting factor — next to the frequency and
        power headlines, so stored artifacts answer QoS queries without
        re-walking the traces.
        """
        return {
            "sustained_frequency_hz": self.sustained_frequency_hz,
            "average_frequency_hz": self.average_frequency_hz,
            "peak_frequency_hz": self.peak_frequency_hz,
            "average_power_w": self.average_power_w,
            "peak_temperature_c": self.peak_temperature_c,
            "throttle_residency": self.throttle_residency(),
            "throttled_fraction": self.throttled_fraction,
            "final_limiting_factor": self.final_limiting_factor,
        }

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": RESULT_SCHEMA_VERSION,
            "scenario_name": self.scenario_name,
            "time_step_s": self.time_step_s,
            "pl1_w": self.pl1_w,
            "pl2_w": self.pl2_w,
            "times_s": list(self.times_s),
            "frequencies_hz": list(self.frequencies_hz),
            "package_powers_w": list(self.package_powers_w),
            "temperatures_c": list(self.temperatures_c),
            "average_powers_w": list(self.average_powers_w),
            "limiting_factors": list(self.limiting_factors),
            "package_cstates": list(self.package_cstates),
            "summary": self.summary(),
        }

    @classmethod
    def _from_payload(cls, data: Dict[str, Any]) -> "DynamicRunResult":
        # The embedded summary block is derived, not stored state: rebuild
        # from the traces so round-trips stay exact even across versions.
        return cls(
            scenario_name=data["scenario_name"],
            time_step_s=data["time_step_s"],
            pl1_w=data["pl1_w"],
            pl2_w=data["pl2_w"],
            times_s=tuple(data["times_s"]),
            frequencies_hz=tuple(data["frequencies_hz"]),
            package_powers_w=tuple(data["package_powers_w"]),
            temperatures_c=tuple(data["temperatures_c"]),
            average_powers_w=tuple(data["average_powers_w"]),
            limiting_factors=tuple(data["limiting_factors"]),
            package_cstates=tuple(data["package_cstates"]),
        )


_RESULT_TYPES: Dict[str, Type[RunResult]] = {
    CpuRunResult.kind: CpuRunResult,
    GraphicsRunResult.kind: GraphicsRunResult,
    EnergyRunResult.kind: EnergyRunResult,
    TransientRunResult.kind: TransientRunResult,
    DynamicRunResult.kind: DynamicRunResult,
}
