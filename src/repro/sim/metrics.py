"""Result types produced by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.pmu.dvfs import OperatingPoint
from repro.pmu.pbm import GraphicsOperatingPoint


@dataclass(frozen=True)
class CpuRunResult:
    """Outcome of running one CPU workload on one system configuration."""

    workload_name: str
    operating_point: OperatingPoint
    relative_performance: float

    @property
    def frequency_hz(self) -> float:
        """Resolved core frequency."""
        return self.operating_point.frequency_hz

    @property
    def package_power_w(self) -> float:
        """Sustained package power during the run."""
        return self.operating_point.package_power_w

    def improvement_over(self, baseline: "CpuRunResult") -> float:
        """Fractional performance improvement over a baseline run."""
        return self.relative_performance / baseline.relative_performance - 1.0


@dataclass(frozen=True)
class GraphicsRunResult:
    """Outcome of running one graphics workload on one system configuration."""

    workload_name: str
    operating_point: GraphicsOperatingPoint
    relative_fps: float

    @property
    def graphics_frequency_hz(self) -> float:
        """Resolved graphics frequency."""
        return self.operating_point.graphics_frequency_hz

    def degradation_from(self, baseline: "GraphicsRunResult") -> float:
        """Fractional FPS degradation relative to a baseline run (>= 0)."""
        return max(0.0, 1.0 - self.relative_fps / baseline.relative_fps)


@dataclass(frozen=True)
class PhaseEnergy:
    """Power attributed to one phase of an energy scenario."""

    phase_name: str
    fraction: float
    power_w: float

    @property
    def contribution_w(self) -> float:
        """Contribution of this phase to the scenario's average power."""
        return self.fraction * self.power_w


@dataclass(frozen=True)
class EnergyRunResult:
    """Outcome of running one energy scenario on one system configuration."""

    scenario_name: str
    phases: Tuple[PhaseEnergy, ...]
    average_power_limit_w: float

    @property
    def average_power_w(self) -> float:
        """Residency-weighted average processor power."""
        return sum(phase.contribution_w for phase in self.phases)

    @property
    def meets_limit(self) -> bool:
        """Whether the configuration meets the scenario's power limit."""
        return self.average_power_w <= self.average_power_limit_w

    def reduction_from(self, reference: "EnergyRunResult") -> float:
        """Fractional average-power reduction relative to a reference run."""
        if reference.average_power_w <= 0:
            return 0.0
        return 1.0 - self.average_power_w / reference.average_power_w
