"""Shared sustained-operating-point solver.

The sustained (TDP-table) fixed point — iterate package power and junction
temperature to convergence, then pick the highest frequency bin that
satisfies Vmax, TDP and Iccmax at its own fixed point — used to live in
three places: the static resolver's grid walk
(:meth:`~repro.pmu.dvfs.DvfsPolicy.resolve`), the table-vectorized
:func:`~repro.pmu.dvfs.resolve_sustained_bins` primitive, and the dynamics
engine's steady-state snap.  This module is the one home for that solver at
the ``sim`` layer and above:

* :func:`sustained_operating_point` — the canonical per-demand resolution
  (delegates to the Pcode so nominal and varied dice take their proven
  paths bit-identically).
* :func:`sustained_table_point` — the resolution snapped onto a candidate
  table's frequency grid, as the dynamics engine consumes it.
* :func:`sustained_over_tdp` — the whole-grid inverse view: sustained bins
  for every TDP level in one vectorized pass, exploiting that the
  power/temperature fixed point does not depend on TDP at all (TDP only
  enters the final feasibility mask).  This is the workhorse of the
  ``Study.optimize`` inverse-query layer.
* :func:`frequency_ceiling_hz` — the Vmax/Iccmax-limited ceiling, used to
  explain infeasible frequency targets.

The numeric primitive itself, :func:`resolve_sustained_bins`, stays in
:mod:`repro.pmu.dvfs` (the PMU layer cannot import ``sim``); it is
re-exported here so every ``sim``-and-above caller routes through this
module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.pmu.dvfs import (
    LIMITING_FACTOR_ORDER,
    CandidateTable,
    CpuDemand,
    LimitingFactor,
    OperatingPoint,
    resolve_sustained_bins,
)
from repro.pmu.pcode import Pcode

__all__ = [
    "SustainedPoint",
    "SustainedTdpSweep",
    "frequency_ceiling_hz",
    "resolve_sustained_bins",
    "sustained_operating_point",
    "sustained_over_tdp",
    "sustained_table_point",
]


@dataclass(frozen=True)
class SustainedPoint:
    """The static (TDP-table) operating point for one demand, pre-resolved."""

    bin_index: int
    limiting: LimitingFactor
    operating_point: OperatingPoint


@dataclass(frozen=True)
class SustainedTdpSweep:
    """Sustained operating points of one demand over a grid of TDP levels.

    All tuples are indexed by TDP level, in the order given to
    :func:`sustained_over_tdp`.  ``package_power_w`` and ``temperature_c``
    are the fixed-point values of the *selected* bin at each level.
    """

    tdp_levels_w: Tuple[float, ...]
    bin_indices: Tuple[int, ...]
    frequencies_hz: Tuple[float, ...]
    limiting: Tuple[LimitingFactor, ...]
    package_power_w: Tuple[float, ...]
    temperature_c: Tuple[float, ...]


def sustained_operating_point(pcode: Pcode, demand: CpuDemand) -> OperatingPoint:
    """The sustained operating point of *demand* on *pcode*.

    Nominal silicon takes the static resolver's grid walk; a varied die
    takes the table-based fixed point — both behind
    :meth:`~repro.pmu.pcode.Pcode.resolve_cpu_operating_point`, so callers
    of this module never re-implement the dispatch.
    """
    return pcode.resolve_cpu_operating_point(demand)


def sustained_table_point(
    pcode: Pcode, demand: CpuDemand, table: Optional[CandidateTable] = None
) -> SustainedPoint:
    """:func:`sustained_operating_point`, snapped onto the candidate grid.

    The dynamics engine keys its throttle ceiling to a bin index of the
    demand's candidate table; the snap picks the nearest grid frequency to
    the resolved point (they coincide except for floating-point noise).
    """
    if table is None:
        table = pcode.dvfs_policy.candidate_table(demand)
    point = sustained_operating_point(pcode, demand)
    index = int(np.argmin(np.abs(table.frequencies_hz - point.frequency_hz)))
    return SustainedPoint(
        bin_index=index,
        limiting=point.limiting_factor,
        operating_point=point,
    )


def sustained_over_tdp(
    pcode: Pcode, demand: CpuDemand, tdp_levels_w: Sequence[float]
) -> SustainedTdpSweep:
    """Sustained bins of *demand* for every TDP level, in one pass.

    The power/temperature fixed point of
    :func:`~repro.pmu.dvfs.resolve_sustained_bins` is independent of the
    TDP — the limit only enters the final ``power <= tdp`` feasibility
    mask — so a single ``(levels, bins)`` evaluation answers the whole
    grid with arithmetic element-wise identical to the per-level calls.
    Sustained frequency is therefore monotone non-decreasing over an
    ascending TDP grid, which is what makes bisection on this sweep exact.
    """
    levels = tuple(float(level) for level in tdp_levels_w)
    if not levels:
        raise ConfigurationError("tdp_levels_w must not be empty")
    for level in levels:
        if not level > 0.0:
            raise ConfigurationError(
                f"TDP levels must be positive; got {level!r}"
            )
    policy = pcode.dvfs_policy
    table = policy.candidate_table(demand)
    model = pcode.processor.thermal_model()
    limits = model.limits
    rows = len(levels)
    bins = int(np.asarray(table.frequencies_hz).size)
    index, code, power, temperature = resolve_sustained_bins(
        lambda t: np.broadcast_to(table.package_power_w(t[0]), (rows, bins)),
        np.broadcast_to(table.vmax_ok, (rows, bins)),
        np.broadcast_to(np.asarray(table.iccmax_ok), (rows, bins)),
        np.asarray(levels)[:, None],
        model.thermal_resistance_c_per_w,
        limits.ambient_c,
        limits.tjmax_c,
        iterations=policy.thermal_iterations,
    )
    picked = index[..., None]
    power_at = np.take_along_axis(power, picked, axis=-1)[..., 0]
    temperature_at = np.take_along_axis(temperature, picked, axis=-1)[..., 0]
    frequencies = np.asarray(table.frequencies_hz)[index]
    return SustainedTdpSweep(
        tdp_levels_w=levels,
        bin_indices=tuple(int(i) for i in index),
        frequencies_hz=tuple(float(f) for f in frequencies),
        limiting=tuple(LIMITING_FACTOR_ORDER[int(c)] for c in code),
        package_power_w=tuple(float(p) for p in power_at),
        temperature_c=tuple(float(t) for t in temperature_at),
    )


def frequency_ceiling_hz(pcode: Pcode, demand: CpuDemand) -> float:
    """The Vmax/Iccmax-limited frequency ceiling of *demand* on *pcode*.

    The highest candidate frequency feasible regardless of TDP or thermals
    — no power budget can sustain more.  Returns ``0.0`` when no bin is
    electrically feasible at all.
    """
    table = pcode.dvfs_policy.candidate_table(demand)
    feasible = np.asarray(table.vmax_ok) & np.asarray(table.iccmax_ok)
    if not feasible.any():
        return 0.0
    return float(np.asarray(table.frequencies_hz)[feasible].max())
