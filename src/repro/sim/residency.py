"""Phase-trace replay and C-state residency accounting.

The energy scenarios of Fig. 10 are defined directly as residency mixes, but
the library also supports replaying an explicit :class:`PhaseTrace` (bursts
of compute separated by idle gaps), deriving the package C-state residencies
from the idle-gap lengths, and integrating energy over the trace.  This is
the closest software analogue of what the paper measures with the NI-DAQ
setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive
from repro.pmu.cstates import (
    CSTATE_BREAK_EVEN_LADDER,
    PackageCState,
    cstate_for_idle_duration,
)
from repro.pmu.pcode import Pcode
from repro.workloads.phases import PhaseTrace


@dataclass(frozen=True)
class ResidencyReport:
    """Residency fractions and average power over a replayed trace."""

    trace_name: str
    residency_by_state: Dict[str, float]
    average_power_w: float
    energy_j: float
    duration_s: float

    def residency(self, state_name: str) -> float:
        """Residency fraction of one package C-state (0 if never entered)."""
        return self.residency_by_state.get(state_name, 0.0)


class ResidencyTracker:
    """Replays a phase trace against one firmware configuration.

    Idle gaps are mapped to package C-states by their duration through the
    shared :data:`~repro.pmu.cstates.CSTATE_BREAK_EVEN_LADDER`: very short
    gaps only reach the shallow states (entering a deep state costs more
    energy than it saves below its break-even time), longer gaps reach the
    deepest state the platform supports.
    """

    #: Shared break-even ladder (kept as an attribute for introspection).
    _BREAK_EVEN_LADDER = CSTATE_BREAK_EVEN_LADDER

    def __init__(self, pcode: Pcode) -> None:
        self._pcode = pcode

    def state_for_idle_duration(self, duration_s: float) -> PackageCState:
        """Deepest state reachable for an idle gap of *duration_s*."""
        ensure_positive(duration_s, "duration_s")
        return cstate_for_idle_duration(
            duration_s, self._pcode.deepest_package_cstate()
        )

    def replay(self, trace: PhaseTrace) -> ResidencyReport:
        """Replay *trace* and report residencies, average power and energy."""
        if trace.duration_s <= 0:
            raise ConfigurationError("trace has zero duration")
        residency: Dict[str, float] = {}
        energy_j = 0.0
        for phase in trace.phases:
            if phase.is_idle:
                state = self.state_for_idle_duration(phase.duration_s)
                power = self._pcode.cstate_model.power_w(state)
                key = state.value
            else:
                operating_point = self._pcode.resolve_cpu_operating_point(phase.demand)
                power = operating_point.package_power_w
                key = PackageCState.C0.value
            residency[key] = residency.get(key, 0.0) + phase.duration_s
            energy_j += power * phase.duration_s
        duration = trace.duration_s
        residency_fractions = {k: v / duration for k, v in residency.items()}
        return ResidencyReport(
            trace_name=trace.name,
            residency_by_state=residency_fractions,
            average_power_w=energy_j / duration,
            energy_j=energy_j,
            duration_s=duration,
        )
