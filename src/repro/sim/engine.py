"""The simulation engine: workload descriptors in, evaluation metrics out.

The engine is intentionally thin: all the physics lives in the PDN, power,
and firmware models.  What the engine adds is the translation between a
workload descriptor and the firmware's decision inputs, and the conversion
of the resolved operating point into the metric the paper reports for that
workload class (relative SPEC score, relative FPS, average power).
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ConfigurationError
from repro.pmu.cstates import PackageCState
from repro.pmu.dvfs import CpuDemand
from repro.pmu.pbm import GraphicsDemand
from repro.pmu.pcode import Pcode
from repro.power.leakage import NOMINAL_SILICON_TEMPERATURE_C
from repro.sim.metrics import (
    CpuRunResult,
    EnergyRunResult,
    GraphicsRunResult,
    PhaseEnergy,
    RunResult,
)
from repro.workloads.descriptors import (
    CpuWorkload,
    EnergyScenario,
    GraphicsWorkload,
    ScenarioPhase,
    Workload,
)


class SimulationEngine:
    """Runs workloads on one firmware-configured system."""

    #: Workload ``kind`` tag -> bound-method name implementing that class.
    _DISPATCH: Dict[str, str] = {
        CpuWorkload.kind: "run_cpu_workload",
        GraphicsWorkload.kind: "run_graphics_workload",
        EnergyScenario.kind: "run_energy_scenario",
    }

    def __init__(self, pcode: Pcode) -> None:
        self._pcode = pcode

    @property
    def pcode(self) -> Pcode:
        """The firmware configuration this engine simulates."""
        return self._pcode

    # -- polymorphic entry point -------------------------------------------------------

    def run(self, workload: Workload) -> RunResult:
        """Run any workload, dispatching on its ``kind`` tag.

        The single entry point behind which the per-class methods sit:
        :class:`CpuWorkload` -> :class:`CpuRunResult`,
        :class:`GraphicsWorkload` -> :class:`GraphicsRunResult`,
        :class:`EnergyScenario` -> :class:`EnergyRunResult`.
        """
        method_name = self._DISPATCH.get(getattr(workload, "kind", None))
        if method_name is None:
            raise ConfigurationError(
                f"cannot run {type(workload).__name__!s}: not a workload "
                f"(expected a kind tag in {sorted(self._DISPATCH)})"
            )
        return getattr(self, method_name)(workload)

    # -- CPU workloads -----------------------------------------------------------------

    def run_cpu_workload(self, workload: CpuWorkload) -> CpuRunResult:
        """Run a CPU workload and report its achieved relative performance."""
        if workload.active_cores > self._pcode.processor.core_count:
            raise ConfigurationError(
                f"workload {workload.name!r} needs {workload.active_cores} cores; "
                f"the processor has {self._pcode.processor.core_count}"
            )
        demand = CpuDemand(
            active_cores=workload.active_cores,
            activity=workload.activity,
            memory_intensity=workload.memory_intensity,
        )
        operating_point = self._pcode.resolve_cpu_operating_point(demand)
        performance = workload.relative_performance(operating_point.frequency_hz)
        return CpuRunResult(
            workload_name=workload.name,
            operating_point=operating_point,
            relative_performance=performance,
        )

    # -- graphics workloads ---------------------------------------------------------------

    def run_graphics_workload(self, workload: GraphicsWorkload) -> GraphicsRunResult:
        """Run a graphics workload and report its achieved relative FPS."""
        demand = GraphicsDemand(
            graphics_activity=workload.graphics_activity,
            driver_cores=workload.driver_cores,
            driver_activity=workload.driver_activity,
            memory_intensity=workload.memory_intensity,
        )
        operating_point = self._pcode.resolve_graphics_operating_point(demand)
        fps = workload.relative_fps(operating_point.graphics_frequency_hz)
        return GraphicsRunResult(
            workload_name=workload.name,
            operating_point=operating_point,
            relative_fps=fps,
        )

    # -- energy scenarios ------------------------------------------------------------------

    def run_energy_scenario(self, scenario: EnergyScenario) -> EnergyRunResult:
        """Run an energy-efficiency scenario and report average power."""
        phases = []
        for phase in scenario.phases:
            power = self._phase_power_w(phase)
            phases.append(
                PhaseEnergy(phase_name=phase.name, fraction=phase.fraction, power_w=power)
            )
        return EnergyRunResult(
            scenario_name=scenario.name,
            phases=tuple(phases),
            average_power_limit_w=scenario.average_power_limit_w,
        )

    def _phase_power_w(self, phase: ScenarioPhase) -> float:
        if phase.mode in ("off", "sleep"):
            # S-states: the processor is off; only the hinted platform share
            # attributed to it remains and is identical across configurations.
            return phase.active_power_hint_w
        if phase.mode == "active":
            return self._active_wake_power_w(phase.active_power_hint_w)
        # package_idle
        state = self._resolve_idle_state(phase.package_cstate)
        idle_power = self._pcode.cstate_model.power_w(state)
        return idle_power + phase.active_power_hint_w

    def _resolve_idle_state(self, name: str) -> PackageCState:
        if name.lower() == "deepest":
            return self._pcode.deepest_package_cstate()
        state = PackageCState.from_name(name)
        deepest = self._pcode.deepest_package_cstate()
        if state.depth > deepest.depth:
            return deepest
        return state

    def _active_wake_power_w(self, hint_w: float) -> float:
        """Power during the short active bursts of an idle-platform scenario.

        The hint covers the configuration-independent part (one core plus the
        woken uncore slice at low frequency); on top of that a bypassed part
        pays the leakage of the cores that would otherwise be power-gated.
        """
        base = hint_w
        if not self._pcode.bypass_mode:
            return base
        processor = self._pcode.processor
        extra = sum(
            core.leakage.power_w(1.0, NOMINAL_SILICON_TEMPERATURE_C)
            for core in processor.die.cores[1:]
        )
        return base + extra
