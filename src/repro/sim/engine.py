"""The simulation engine: workload descriptors in, evaluation metrics out.

The engine is intentionally thin: all the physics lives in the PDN, power,
and firmware models.  What the engine adds is the translation between a
workload descriptor and the firmware's decision inputs, and the conversion
of the resolved operating point into the metric the paper reports for that
workload class (relative SPEC score, relative FPS, average power, worst
transient droop).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.pdn.droop import DroopSimulator
from repro.pdn.ladder import SkylakePdnBuilder
from repro.pdn.transients import TransientScenario
from repro.pmu.cstates import PackageCState
from repro.pmu.dvfs import CpuDemand
from repro.pmu.pbm import GraphicsDemand
from repro.pmu.pcode import Pcode
from repro.power.leakage import NOMINAL_SILICON_TEMPERATURE_C
from repro.sim.dynamics import BatchedDynamicsSimulator
from repro.sim.metrics import (
    CpuRunResult,
    DynamicRunResult,
    EnergyRunResult,
    GraphicsRunResult,
    PhaseEnergy,
    RunResult,
    TransientRunResult,
)
from repro.workloads.descriptors import (
    CpuWorkload,
    EnergyScenario,
    GraphicsWorkload,
    ScenarioPhase,
    Workload,
)
from repro.workloads.dynamics import DynamicScenario

#: Version stamp of the simulation engine, hashed into content-addressed
#: run IDs and recorded in run-store manifests.  Bump it whenever an engine
#: or model change alters the numbers a run produces: stored runs from the
#: old engine then miss naturally (and ``python -m repro gc`` collects
#: them) instead of serving outdated physics as warm cache hits.
ENGINE_VERSION = "1"


class SimulationEngine:
    """Runs workloads on one firmware-configured system."""

    #: Engine version of every result this engine produces.
    version: str = ENGINE_VERSION

    #: Workload ``kind`` tag -> bound-method name implementing that class.
    _DISPATCH: Dict[str, str] = {
        CpuWorkload.kind: "run_cpu_workload",
        GraphicsWorkload.kind: "run_graphics_workload",
        EnergyScenario.kind: "run_energy_scenario",
        TransientScenario.kind: "run_transient_scenario",
        DynamicScenario.kind: "run_dynamic_scenario",
    }

    def __init__(self, pcode: Pcode) -> None:
        self._pcode = pcode
        self._droop_simulators: Dict[float, DroopSimulator] = {}
        self._batched_dynamics: Optional[BatchedDynamicsSimulator] = None

    @property
    def pcode(self) -> Pcode:
        """The firmware configuration this engine simulates."""
        return self._pcode

    # -- polymorphic entry point -------------------------------------------------------

    def run(self, workload: Workload) -> RunResult:
        """Run any workload, dispatching on its ``kind`` tag.

        The single entry point behind which the per-class methods sit:
        :class:`CpuWorkload` -> :class:`CpuRunResult`,
        :class:`GraphicsWorkload` -> :class:`GraphicsRunResult`,
        :class:`EnergyScenario` -> :class:`EnergyRunResult`,
        :class:`TransientScenario` -> :class:`TransientRunResult`,
        :class:`DynamicScenario` -> :class:`DynamicRunResult`.
        """
        method_name = self._DISPATCH.get(getattr(workload, "kind", None))
        if method_name is None:
            raise ConfigurationError(
                f"cannot run {type(workload).__name__!s}: not a workload "
                f"(expected a kind tag in {sorted(self._DISPATCH)})"
            )
        return getattr(self, method_name)(workload)

    # -- CPU workloads -----------------------------------------------------------------

    def run_cpu_workload(self, workload: CpuWorkload) -> CpuRunResult:
        """Run a CPU workload and report its achieved relative performance."""
        if workload.active_cores > self._pcode.processor.core_count:
            raise ConfigurationError(
                f"workload {workload.name!r} needs {workload.active_cores} cores; "
                f"the processor has {self._pcode.processor.core_count}"
            )
        demand = CpuDemand(
            active_cores=workload.active_cores,
            activity=workload.activity,
            memory_intensity=workload.memory_intensity,
        )
        operating_point = self._pcode.resolve_cpu_operating_point(demand)
        performance = workload.relative_performance(operating_point.frequency_hz)
        return CpuRunResult(
            workload_name=workload.name,
            operating_point=operating_point,
            relative_performance=performance,
        )

    # -- graphics workloads ---------------------------------------------------------------

    def run_graphics_workload(self, workload: GraphicsWorkload) -> GraphicsRunResult:
        """Run a graphics workload and report its achieved relative FPS."""
        demand = GraphicsDemand(
            graphics_activity=workload.graphics_activity,
            driver_cores=workload.driver_cores,
            driver_activity=workload.driver_activity,
            memory_intensity=workload.memory_intensity,
        )
        operating_point = self._pcode.resolve_graphics_operating_point(demand)
        fps = workload.relative_fps(operating_point.graphics_frequency_hz)
        return GraphicsRunResult(
            workload_name=workload.name,
            operating_point=operating_point,
            relative_fps=fps,
        )

    # -- transient droop scenarios ---------------------------------------------------------

    def run_transient_scenario(self, scenario: TransientScenario) -> TransientRunResult:
        """Simulate a transient load scenario on this system's PDN.

        The ladder comes from the package's PDN configuration (so gated and
        bypassed systems naturally see their respective networks); the rail
        voltage defaults to the firmware's resolved single-core operating
        voltage unless the scenario pins one.
        """
        nominal_v = scenario.nominal_voltage_v
        if nominal_v is None:
            point = self._pcode.resolve_cpu_operating_point(CpuDemand(active_cores=1))
            nominal_v = point.voltage_v
        simulator = self._droop_simulator(nominal_v)
        result = simulator.simulate_profile(
            scenario.trace,
            duration_s=scenario.resolved_duration_s,
            time_step_s=scenario.time_step_s,
            initial_current_a=scenario.trace.initial_current_a,
            method=scenario.method,
        )
        return TransientRunResult(
            scenario_name=scenario.name,
            nominal_voltage_v=nominal_v,
            worst_droop_v=result.worst_droop_v,
            settled_drop_v=result.settled_drop_v,
            transient_overshoot_v=result.transient_overshoot_v,
            minimum_voltage_v=result.minimum_voltage_v(),
            time_step_s=scenario.time_step_s,
            duration_s=scenario.resolved_duration_s,
        )

    def _droop_simulator(self, nominal_voltage_v: float) -> DroopSimulator:
        simulator = self._droop_simulators.get(nominal_voltage_v)
        if simulator is None:
            builder = SkylakePdnBuilder(self._pcode.processor.package.pdn)
            simulator = DroopSimulator(
                builder.build_ladder(), nominal_voltage_v=nominal_voltage_v
            )
            self._droop_simulators[nominal_voltage_v] = simulator
        return simulator

    # -- dynamic (time-stepped) scenarios --------------------------------------------------

    def run_dynamic_scenario(
        self, scenario: DynamicScenario, method: str = "batched"
    ) -> DynamicRunResult:
        """Step a dynamic scenario through the closed Pcode loop.

        The loop couples the PL1/PL2 turbo budget, the lumped thermal RC
        model, per-step DVFS re-resolution and package C-state entry; see
        :mod:`repro.sim.dynamics`.  ``method="batched"`` (the default)
        resolves the trajectory through the vectorized lockstep engine (a
        batch of one); ``method="reference"`` steps the retained per-run
        Python loop, which the batched path is asserted bit-compatible
        with.  The simulator is shared across runs so per-demand candidate
        tables and sustained points are built once per engine.
        """
        if self._batched_dynamics is None:
            self._batched_dynamics = BatchedDynamicsSimulator()
        if method == "batched":
            (result,) = self._batched_dynamics.run_batch([(self._pcode, scenario)])
            return result
        if method == "reference":
            return self._batched_dynamics.simulator(self._pcode).run(scenario)
        raise ConfigurationError(
            f"unknown dynamics method {method!r}; expected 'batched' or 'reference'"
        )

    def run_population(
        self, scenario: DynamicScenario, population, shard_size=None
    ) -> object:
        """Step a dynamic scenario across a whole die population in lockstep.

        *population* is a :class:`~repro.variation.sampler.DiePopulation`;
        the engine must be built from the nominal spec (per-die silicon
        knobs are injected as stacked arrays — see
        :meth:`~repro.sim.dynamics.BatchedDynamicsSimulator.run_population`).
        Returns :class:`~repro.sim.dynamics.PopulationRunTraces`, or — when
        *shard_size* streams the run through fixed-size die shards — the
        merged bounded-memory
        :class:`~repro.variation.streaming.StreamingCellShard`.
        """
        if self._batched_dynamics is None:
            self._batched_dynamics = BatchedDynamicsSimulator()
        return self._batched_dynamics.run_population(
            self._pcode, scenario, population, shard_size=shard_size
        )

    # -- energy scenarios ------------------------------------------------------------------

    def run_energy_scenario(self, scenario: EnergyScenario) -> EnergyRunResult:
        """Run an energy-efficiency scenario and report average power."""
        phases = []
        for phase in scenario.phases:
            power = self._phase_power_w(phase)
            phases.append(
                PhaseEnergy(phase_name=phase.name, fraction=phase.fraction, power_w=power)
            )
        return EnergyRunResult(
            scenario_name=scenario.name,
            phases=tuple(phases),
            average_power_limit_w=scenario.average_power_limit_w,
        )

    def _phase_power_w(self, phase: ScenarioPhase) -> float:
        if phase.mode in ("off", "sleep"):
            # S-states: the processor is off; only the hinted platform share
            # attributed to it remains and is identical across configurations.
            return phase.active_power_hint_w
        if phase.mode == "active":
            return self._active_wake_power_w(phase)
        # package_idle
        state = self._resolve_idle_state(phase.package_cstate)
        idle_power = self._pcode.cstate_model.power_w(state)
        return idle_power + phase.active_power_hint_w

    def _resolve_idle_state(self, name: str) -> PackageCState:
        normalized = name.strip()
        if normalized.lower() == "deepest":
            return self._pcode.deepest_package_cstate()
        state = PackageCState.from_name(normalized)
        deepest = self._pcode.deepest_package_cstate()
        if state.depth > deepest.depth:
            return deepest
        return state

    def _active_wake_power_w(self, phase: ScenarioPhase) -> float:
        """Power during the short active bursts of an idle-platform scenario.

        The hint covers the configuration-independent part (the woken cores
        plus the woken uncore slice at low frequency); on top of that a
        bypassed part pays the leakage of the cores that would otherwise be
        power-gated.  The dark cores leak at the rail voltage the firmware
        actually resolves for the low-frequency wake (not a fixed 1.0 V),
        and only the cores beyond the phase's woken set count.
        """
        base = phase.active_power_hint_w
        if not self._pcode.bypass_mode:
            return base
        processor = self._pcode.processor
        woken = min(phase.active_cores, processor.core_count)
        rail_voltage = self._pcode.wake_rail_voltage_v(active_cores=woken)
        extra = sum(
            core.leakage.power_w(rail_voltage, NOMINAL_SILICON_TEMPERATURE_C)
            for core in processor.die.cores[woken:]
        )
        return base + extra
