"""The closed-loop Pcode dynamics engine.

The steady-state models resolve *operating points*; this module resolves
*trajectories*.  :class:`DynamicsSimulator` steps a
:class:`~repro.workloads.dynamics.DynamicScenario` through time, closing the
loop between four firmware/physics subsystems every step:

1. **Turbo power budget** — a PL1/PL2 pair with EWMA accounting
   (:class:`~repro.pmu.turbo.TurboBudgetManager`): the package may burst to
   PL2 while the moving average of power has headroom below PL1 (the TDP),
   then the budget squeezes back to the sustained level.
2. **Thermal RC model** — the junction temperature follows the exponential
   step response of :class:`~repro.power.thermal.TransientThermalModel`, and
   a thermal throttle caps the next step's power so Tjmax is never crossed.
3. **DVFS re-resolution** — every step picks the highest 100 MHz bin that
   satisfies Vmax, Iccmax and the *instantaneous* power limit at the
   *current* junction temperature, via the vectorized
   :class:`~repro.pmu.dvfs.CandidateTable`.
4. **Package C-states** — idle gaps enter the state the break-even ladder
   allows for their duration (clamped at the fused deepest state), and the
   idle power both cools the die and re-banks the turbo budget.

Once a sustained stretch exhausts the turbo budget (the EWMA reaches PL1),
the firmware latches the *sustained* operating point — the one the static
:meth:`~repro.pmu.dvfs.DvfsPolicy.resolve` computes from the TDP tables —
until an idle gap re-banks enough budget.  This reproduces the paper's
TDP-limited behaviour exactly: a long constant-demand scenario converges to
the same 100 MHz bin (and thermal fixed point) the steady-state resolver
reports, while low-TDP configurations show the PL2-burst-then-throttle
transient on the way there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.pmu.cstates import PackageCState, cstate_for_idle_duration
from repro.pmu.dvfs import (
    LIMITING_FACTOR_CODES,
    LIMITING_FACTOR_ORDER,
    CandidateTable,
    CpuDemand,
    LimitingFactor,
    OperatingPoint,
    StackedCandidateTables,
    die_voltage_offsets,
)
from repro.pmu.pcode import Pcode
from repro.pmu.turbo import BatchedTurboBudgetManager, TurboBudgetManager
from repro.power.budget import TurboLimits
from repro.power.thermal import BatchedThermalModel, TransientThermalModel
from repro.sim.metrics import DynamicRunResult
from repro.sim.operating_point import (
    SustainedPoint,
    resolve_sustained_bins,
    sustained_table_point,
)
from repro.workloads.dynamics import AUTO_CSTATE, DynamicPhase, DynamicScenario

if TYPE_CHECKING:
    from repro.variation.sampler import DiePopulation
    from repro.variation.streaming import StreamingCellShard


def phase_step_counts(scenario: DynamicScenario) -> List[int]:
    """Steps per phase on the scenario's global time grid.

    Phase boundaries are quantised from the *cumulative* timeline (each
    phase keeps at least one step), so rounding never accumulates across a
    multi-phase scenario: the run always ends within half a step of
    ``scenario.duration_s``.  Shared by the per-run and batched steppers so
    both walk exactly the same grid.
    """
    dt = scenario.time_step_s
    counts: List[int] = []
    elapsed_steps = 0
    scheduled_end_s = 0.0
    for phase in scenario.phases:
        scheduled_end_s += phase.duration_s
        steps = max(1, round(scheduled_end_s / dt) - elapsed_steps)
        elapsed_steps += steps
        counts.append(steps)
    return counts


class _TraceRecorder:
    """Accumulates the per-step traces of one run."""

    def __init__(self) -> None:
        self.times_s: List[float] = []
        self.frequencies_hz: List[float] = []
        self.package_powers_w: List[float] = []
        self.temperatures_c: List[float] = []
        self.average_powers_w: List[float] = []
        self.limiting_factors: List[str] = []
        self.package_cstates: List[str] = []

    def record(
        self,
        time_s: float,
        frequency_hz: float,
        package_power_w: float,
        temperature_c: float,
        average_power_w: float,
        limiting: LimitingFactor,
        cstate: str,
    ) -> None:
        self.times_s.append(time_s)
        self.frequencies_hz.append(frequency_hz)
        self.package_powers_w.append(package_power_w)
        self.temperatures_c.append(temperature_c)
        self.average_powers_w.append(average_power_w)
        self.limiting_factors.append(limiting.value)
        self.package_cstates.append(cstate)


class DynamicsSimulator:
    """Steps dynamic scenarios through the closed firmware loop.

    Parameters
    ----------
    pcode:
        The firmware-configured system (provides the DVFS policy, the
        C-state power model, the TDP, and the thermal design limits).
    """

    def __init__(self, pcode: Pcode) -> None:
        self._pcode = pcode
        self._sustained_cache: Dict[CpuDemand, SustainedPoint] = {}

    @property
    def pcode(self) -> Pcode:
        """The firmware configuration this simulator drives."""
        return self._pcode

    # -- public API --------------------------------------------------------------------

    def run(self, scenario: DynamicScenario) -> DynamicRunResult:
        """Simulate *scenario* and return the full trajectory."""
        processor = self._pcode.processor
        thermal = TransientThermalModel(
            steady_state=processor.thermal_model(),
            capacitance_j_per_c=scenario.thermal_capacitance_j_per_c,
        )
        limits = TurboLimits.from_tdp(
            processor.tdp_w,
            pl2_ratio=scenario.pl2_ratio,
            tau_s=scenario.turbo_tau_s,
        )
        turbo = TurboBudgetManager(
            limits, initial_average_w=scenario.initial_average_power_w
        )
        temperature = (
            scenario.initial_temperature_c
            if scenario.initial_temperature_c is not None
            else thermal.limits.ambient_c
        )
        burst_armed = scenario.initial_average_power_w < limits.pl1_w
        recorder = _TraceRecorder()
        time_s = 0.0
        dt = scenario.time_step_s
        for phase, steps in zip(scenario.phases, phase_step_counts(scenario)):
            if phase.is_idle:
                stepper = self._idle_stepper(phase)
            else:
                stepper = self._active_stepper(phase, limits, thermal, turbo)
            for _ in range(steps):
                frequency, power, limiting, cstate, exhausted = stepper(
                    temperature, burst_armed, dt
                )
                average = turbo.account(power, dt)
                temperature = thermal.step(temperature, power, dt)
                if exhausted:
                    burst_armed = False
                elif average <= limits.pl1_w * scenario.rebank_fraction:
                    burst_armed = True
                time_s += dt
                recorder.record(
                    time_s, frequency, power, temperature, average, limiting, cstate
                )
        return DynamicRunResult(
            scenario_name=scenario.name,
            time_step_s=dt,
            pl1_w=limits.pl1_w,
            pl2_w=limits.pl2_w,
            times_s=tuple(recorder.times_s),
            frequencies_hz=tuple(recorder.frequencies_hz),
            package_powers_w=tuple(recorder.package_powers_w),
            temperatures_c=tuple(recorder.temperatures_c),
            average_powers_w=tuple(recorder.average_powers_w),
            limiting_factors=tuple(recorder.limiting_factors),
            package_cstates=tuple(recorder.package_cstates),
        )

    # -- per-phase steppers ------------------------------------------------------------

    def _idle_stepper(self, phase: DynamicPhase):
        state = self._resolve_idle_state(phase)
        power = self._pcode.cstate_model.power_w(state)

        def step(
            temperature: float, burst_armed: bool, dt: float
        ) -> Tuple[float, float, LimitingFactor, str, bool]:
            return 0.0, power, LimitingFactor.NONE, state.value, False

        return step

    def _active_stepper(
        self,
        phase: DynamicPhase,
        limits: TurboLimits,
        thermal: TransientThermalModel,
        turbo: TurboBudgetManager,
    ):
        demand = phase.demand()
        table = self._pcode.dvfs_policy.candidate_table(demand)
        sustained = self._sustained_point(demand, table)

        def step(
            temperature: float, burst_armed: bool, dt: float
        ) -> Tuple[float, float, LimitingFactor, str, bool]:
            thermal_cap = thermal.max_power_keeping_tjmax_w(temperature, dt)
            powers = table.package_power_w(temperature)
            exhausted = False
            if burst_armed:
                budget = turbo.power_budget_w(dt)  # already PL2-clamped
                index, limiting = table.select(
                    min(budget, thermal_cap), temperature, package_power_w=powers
                )
                if limiting is LimitingFactor.TDP and thermal_cap < budget:
                    limiting = LimitingFactor.THERMAL
                # The power-limited search (EWMA budget or thermal throttle)
                # decaying onto or below the sustained bin means the turbo
                # bank is spent: latch the sustained (TDP-table) point until
                # an idle gap re-banks budget.
                if (
                    limiting in (LimitingFactor.TDP, LimitingFactor.THERMAL)
                    and index <= sustained.bin_index
                ):
                    exhausted = True
            else:
                # Bank exhausted: burst bins are off the table; the ceiling
                # is the sustained (TDP-table) bin, still subject to the
                # instantaneous PL2/thermal envelope.
                index, limiting = table.select(
                    min(limits.pl2_w, thermal_cap), temperature, package_power_w=powers
                )
                if limiting is LimitingFactor.TDP and thermal_cap < limits.pl2_w:
                    limiting = LimitingFactor.THERMAL
                if index >= sustained.bin_index:
                    index, limiting = sustained.bin_index, sustained.limiting
            power = float(powers[index])
            return float(table.frequencies_hz[index]), power, limiting, "C0", exhausted

        return step

    # -- helpers -----------------------------------------------------------------------

    def _resolve_idle_state(self, phase: DynamicPhase) -> PackageCState:
        deepest = self._pcode.deepest_package_cstate()
        name = phase.package_cstate.strip()
        if name.lower() == AUTO_CSTATE:
            return cstate_for_idle_duration(phase.duration_s, deepest)
        if name.lower() == "deepest":
            return deepest
        state = PackageCState.from_name(name)
        if state is PackageCState.C0:
            raise ConfigurationError(
                f"idle phase {phase.name!r} cannot pin package C0"
            )
        return state if state.depth <= deepest.depth else deepest

    def _sustained_point(
        self, demand: CpuDemand, table: CandidateTable
    ) -> SustainedPoint:
        cached = self._sustained_cache.get(demand)
        if cached is None:
            cached = sustained_table_point(self._pcode, demand, table)
            self._sustained_cache[demand] = cached
        return cached


# -- the batched (lockstep) fast path --------------------------------------------------


#: Trace code of the active package state.
_C0_NAME = PackageCState.C0.value

_CODE_VMAX = LIMITING_FACTOR_CODES[LimitingFactor.VMAX]
_CODE_TDP = LIMITING_FACTOR_CODES[LimitingFactor.TDP]
_CODE_ICCMAX = LIMITING_FACTOR_CODES[LimitingFactor.ICCMAX]
_CODE_THERMAL = LIMITING_FACTOR_CODES[LimitingFactor.THERMAL]
_CODE_FREQUENCY_GRID = LIMITING_FACTOR_CODES[LimitingFactor.FREQUENCY_GRID]
_CODE_NONE = LIMITING_FACTOR_CODES[LimitingFactor.NONE]


class _ActiveSegment:
    """Row-dependent gathers of one lockstep segment, hoisted out of the loop.

    Between two phase boundaries every run's candidate table, sustained
    point and activity are fixed, so the per-step work reduces to the
    temperature/budget-dependent arithmetic in :meth:`resolve` — a flat
    sequence of vectorized operations replicating the per-run stepper
    expression for expression.

    :meth:`resolve` is the segment-hoisted fusion of
    :meth:`~repro.pmu.dvfs.StackedCandidateTables.package_power_w` and
    :meth:`~repro.pmu.dvfs.StackedCandidateTables.select` (which gather per
    call and stay the general-purpose vectorized API).  Both implementations
    are pinned against the scalar oracle: the stacked tables by
    ``test_stacked_tables_match_scalar_select``, this fused path by the
    batched-vs-reference bit-identity suite — change one, and its test
    catches the drift.
    """

    def __init__(
        self,
        stacked: StackedCandidateTables,
        rows: np.ndarray,
        run_axis: np.ndarray,
        active: np.ndarray,
        sustained_bin: np.ndarray,
        sustained_code: np.ndarray,
    ) -> None:
        self._run_axis = run_axis
        self._active = active
        self._all_active = bool(active.all())
        self._dynamic_w = stacked.active_dynamic_w[rows]
        self._frequencies_hz = stacked.frequencies_hz[rows]
        vmax_ok = stacked.vmax_ok[rows]
        iccmax_ok = stacked.iccmax_ok[rows]
        self._static_ok = vmax_ok & iccmax_ok
        self._bin_range = np.arange(vmax_ok.shape[1])
        # Blocking-limit code of each bin, indexed by the (per-step) power
        # verdict at that bin; mirrors CandidateTable._blocking_limit's
        # precedence: Vmax first, then power (TDP), then Iccmax, then NONE.
        self._blocking_codes = np.stack(
            [
                np.where(vmax_ok, _CODE_TDP, _CODE_VMAX),
                np.where(
                    vmax_ok,
                    np.where(iccmax_ok, _CODE_NONE, _CODE_ICCMAX),
                    _CODE_VMAX,
                ),
            ]
        )
        # Active and idle leakage laws share one exp evaluation; the first
        # `group_split` groups are the active-core laws.
        self._kt = np.concatenate(
            [stacked.active_kt[rows], stacked.idle_kt[rows]], axis=1
        )
        self._reference_c = np.concatenate(
            [stacked.active_reference_c[rows], stacked.idle_reference_c[rows]],
            axis=1,
        )
        active_groups = stacked.active_reference_w.shape[1]
        self._group_split = active_groups
        self._group_reference_w = [
            stacked.active_reference_w[rows, g] for g in range(active_groups)
        ] + [
            stacked.idle_reference_w[rows, g]
            for g in range(stacked.idle_reference_w.shape[1])
        ]
        self._uncore_w = stacked.uncore_power_w[rows]
        self._graphics_w = stacked.graphics_idle_power_w[rows]
        self._last_bin = stacked.bin_counts[rows] - 1
        self._sustained_bin = sustained_bin
        self._sustained_code = sustained_code

    def resolve(
        self,
        temperature_c: np.ndarray,
        power_limit_w: np.ndarray,
        armed: np.ndarray,
        budget_w: np.ndarray,
        pl2_w: np.ndarray,
        thermal_cap_w: np.ndarray,
        idle_power_w: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One lockstep DVFS resolution: (frequency, power, limiting, exhausted)."""
        # Per-bin package power, replicating CandidateTable.package_power_w
        # term by term: (dynamic + active leakage) + idle leakage, then
        # uncore, then graphics.  The leakage groups are summed *before*
        # adding the dynamic term — the scalar path's association — and
        # padded groups contribute exact zeros.
        scale = np.exp(self._kt * (temperature_c[:, None] - self._reference_c))
        groups = self._group_reference_w
        leakage = groups[0] * scale[:, 0, None]
        for g in range(1, self._group_split):
            leakage = leakage + groups[g] * scale[:, g, None]
        cores = self._dynamic_w + leakage
        idle = groups[self._group_split] * scale[:, self._group_split, None]
        for g in range(self._group_split + 1, len(groups)):
            idle = idle + groups[g] * scale[:, g, None]
        package = ((cores + idle) + self._uncore_w[:, None]) + self._graphics_w[:, None]
        # Bin selection (CandidateTable.select): highest statically-feasible
        # bin under the instantaneous power limit.  The mul/max form picks
        # the highest allowed index and falls back to 0 when nothing is
        # allowed, matching the scalar path's infeasible-grid handling.
        power_ok = package <= (power_limit_w + 1e-9)[:, None]
        allowed = self._static_ok & power_ok
        any_allowed = allowed.any(axis=1)
        index = (allowed * self._bin_range).max(axis=1)
        probe = np.where(any_allowed, np.minimum(index + 1, self._last_bin), 0)
        limiting = self._blocking_codes[
            power_ok[self._run_axis, probe].view(np.int8), self._run_axis, probe
        ]
        limiting = np.where(
            any_allowed & (index == self._last_bin), _CODE_FREQUENCY_GRID, limiting
        )
        # A power-limited verdict is thermal when the thermal cap was the
        # binding half of the min(budget, cap) envelope.
        compare = np.where(armed, budget_w, pl2_w)
        limiting = np.where(
            (limiting == _CODE_TDP) & (thermal_cap_w < compare),
            _CODE_THERMAL,
            limiting,
        )
        # Armed runs whose power-limited search decays onto (or below) the
        # sustained bin have spent the turbo bank; exhausted runs latch the
        # sustained (TDP-table) point until an idle gap re-banks budget.
        exhausted = armed & (limiting >= _CODE_TDP) & (index <= self._sustained_bin)
        clamp = ~armed & (index >= self._sustained_bin)
        index = np.where(clamp, self._sustained_bin, index)
        limiting = np.where(clamp, self._sustained_code, limiting)
        frequency = self._frequencies_hz[self._run_axis, index]
        power = package[self._run_axis, index]
        if not self._all_active:
            exhausted = exhausted & self._active
            frequency = np.where(self._active, frequency, 0.0)
            power = np.where(self._active, power, idle_power_w)
            limiting = np.where(self._active, limiting, _CODE_NONE)
        return frequency, power, limiting, exhausted


@dataclass
class PopulationRunTraces:
    """Raw lockstep traces of one scenario stepped over a die population.

    Trace matrices are ``(steps, dice)``; the package C-state trace is
    shared by every die (idle-state selection depends only on the timeline
    and the fuses).  :mod:`repro.variation.population` condenses these into
    percentile traces and per-die summary metrics; keeping the matrices
    raw here lets tests assert bit-identity against the per-die reference
    path.
    """

    scenario_name: str
    time_step_s: float
    pl1_w: float
    pl2_w: float
    times_s: np.ndarray
    frequencies_hz: np.ndarray
    package_powers_w: np.ndarray
    temperatures_c: np.ndarray
    average_powers_w: np.ndarray
    limiting_codes: np.ndarray
    cstate_codes: np.ndarray
    cstate_names: Tuple[str, ...]

    @property
    def count(self) -> int:
        """Number of dice in the traces."""
        return self.frequencies_hz.shape[1]

    @property
    def steps(self) -> int:
        """Number of simulation steps."""
        return self.frequencies_hz.shape[0]

    def limiting_factor_names(self) -> np.ndarray:
        """The ``(steps, dice)`` limiting-factor names as an object array."""
        names = np.array(
            [factor.value for factor in LIMITING_FACTOR_ORDER], dtype=object
        )
        return names[self.limiting_codes]

    def package_cstate_names(self) -> List[str]:
        """Per-step package C-state names (shared by every die)."""
        names = np.array(list(self.cstate_names), dtype=object)
        return list(names[self.cstate_codes])


@dataclass
class _RunPlan:
    """Everything one run contributes to the lockstep grid, pre-resolved."""

    scenario: DynamicScenario
    limits: TurboLimits
    thermal: TransientThermalModel
    initial_temperature_c: float
    initial_armed: bool
    n_steps: int
    # Per-step attribute vectors (length n_steps).
    table_slot: np.ndarray  # stacked-table row (0 for idle steps)
    is_active: np.ndarray  # bool
    sustained_bin: np.ndarray  # int
    sustained_code: np.ndarray  # limiting-factor code of the sustained point
    idle_power_w: np.ndarray  # float (0 for active steps)
    cstate_code: np.ndarray  # trace code of the package state


class BatchedDynamicsSimulator:
    """Steps an entire sweep grid of dynamic runs in lockstep.

    The per-run :class:`DynamicsSimulator` re-enters the Python interpreter
    every step of every run, which makes ``Study.over_dynamics`` sweeps
    (specs x scenarios x TDP levels) scale with the interpreter rather than
    the hardware.  This simulator instead advances all N runs of a grid at
    once as numpy arrays: one :class:`~repro.pmu.dvfs.StackedCandidateTables`
    resolves every run's DVFS bin per step, a
    :class:`~repro.pmu.turbo.BatchedTurboBudgetManager` carries every run's
    EWMA turbo budget, and a
    :class:`~repro.power.thermal.BatchedThermalModel` carries every run's
    thermal RC state.  Runs may differ arbitrarily (specs, scenarios, time
    steps, durations); shorter runs simply freeze once their timeline ends.

    The arithmetic replicates the per-run stepper operation for operation,
    so the trajectories are bit-compatible: identical frequency-bin,
    limiting-factor and C-state traces, and float traces equal to the
    per-run path (asserted within tight tolerance by the equivalence
    tests).  The per-run engine stays available as ``method="reference"``
    on :meth:`~repro.sim.engine.SimulationEngine.run_dynamic_scenario`.
    """

    def __init__(self) -> None:
        # Keyed by Pcode identity: keeps each system's sustained-point and
        # candidate-table caches warm across batches.
        self._simulators: Dict[Pcode, DynamicsSimulator] = {}

    def simulator(self, pcode: Pcode) -> DynamicsSimulator:
        """The per-run (reference) simulator backing *pcode*'s precompute."""
        simulator = self._simulators.get(pcode)
        if simulator is None:
            simulator = DynamicsSimulator(pcode)
            self._simulators[pcode] = simulator
        return simulator

    # -- public API --------------------------------------------------------------------

    def run_batch(
        self, runs: Sequence[Tuple[Pcode, DynamicScenario]]
    ) -> List[DynamicRunResult]:
        """Simulate every (system, scenario) run in lockstep.

        Returns one :class:`~repro.sim.metrics.DynamicRunResult` per run, in
        input order — each equal to what ``DynamicsSimulator(pcode).run(
        scenario)`` produces for that pair.
        """
        if not runs:
            return []
        tables: List[CandidateTable] = []
        table_slots: Dict[int, int] = {}
        cstate_codes: Dict[str, int] = {_C0_NAME: 0}
        plans = [
            self._plan(pcode, scenario, tables, table_slots, cstate_codes)
            for pcode, scenario in runs
        ]
        traces = self._step_grid(plans, tables)
        cstate_names = list(cstate_codes)
        return [
            self._materialise(plan, traces, run_index, cstate_names)
            for run_index, plan in enumerate(plans)
        ]

    # -- precompute --------------------------------------------------------------------

    def _plan(
        self,
        pcode: Pcode,
        scenario: DynamicScenario,
        tables: List[CandidateTable],
        table_slots: Dict[int, int],
        cstate_codes: Dict[str, int],
    ) -> _RunPlan:
        simulator = self.simulator(pcode)
        processor = pcode.processor
        thermal = TransientThermalModel(
            steady_state=processor.thermal_model(),
            capacitance_j_per_c=scenario.thermal_capacitance_j_per_c,
        )
        limits = TurboLimits.from_tdp(
            processor.tdp_w,
            pl2_ratio=scenario.pl2_ratio,
            tau_s=scenario.turbo_tau_s,
        )
        step_counts = phase_step_counts(scenario)
        slots: List[int] = []
        active: List[bool] = []
        sustained_bins: List[int] = []
        sustained_codes: List[int] = []
        idle_powers: List[float] = []
        cstates: List[int] = []
        for phase in scenario.phases:
            if phase.is_idle:
                state = simulator._resolve_idle_state(phase)
                slots.append(0)
                active.append(False)
                sustained_bins.append(0)
                sustained_codes.append(_CODE_NONE)
                idle_powers.append(pcode.cstate_model.power_w(state))
                cstates.append(
                    cstate_codes.setdefault(state.value, len(cstate_codes))
                )
            else:
                demand = phase.demand()
                table = pcode.dvfs_policy.candidate_table(demand)
                slot = table_slots.get(id(table))
                if slot is None:
                    slot = table_slots[id(table)] = len(tables)
                    tables.append(table)
                sustained = simulator._sustained_point(demand, table)
                slots.append(slot)
                active.append(True)
                sustained_bins.append(sustained.bin_index)
                sustained_codes.append(LIMITING_FACTOR_CODES[sustained.limiting])
                idle_powers.append(0.0)
                cstates.append(cstate_codes[_C0_NAME])
        counts = np.asarray(step_counts)
        return _RunPlan(
            scenario=scenario,
            limits=limits,
            thermal=thermal,
            initial_temperature_c=(
                scenario.initial_temperature_c
                if scenario.initial_temperature_c is not None
                else thermal.limits.ambient_c
            ),
            initial_armed=scenario.initial_average_power_w < limits.pl1_w,
            n_steps=int(counts.sum()),
            table_slot=np.repeat(np.asarray(slots), counts),
            is_active=np.repeat(np.asarray(active, dtype=bool), counts),
            sustained_bin=np.repeat(np.asarray(sustained_bins), counts),
            sustained_code=np.repeat(np.asarray(sustained_codes), counts),
            idle_power_w=np.repeat(np.asarray(idle_powers, dtype=float), counts),
            cstate_code=np.repeat(np.asarray(cstates), counts),
        )

    @staticmethod
    def _stack_steps(plans: Sequence[_RunPlan], total_steps: int) -> Dict[str, np.ndarray]:
        def stacked(attribute: str, dtype, fill) -> np.ndarray:
            out = np.full((len(plans), total_steps), fill, dtype=dtype)
            for i, plan in enumerate(plans):
                out[i, : plan.n_steps] = getattr(plan, attribute)
            return out

        return {
            "table_slot": stacked("table_slot", np.int64, 0),
            "is_active": stacked("is_active", bool, False),
            "sustained_bin": stacked("sustained_bin", np.int64, 0),
            "sustained_code": stacked("sustained_code", np.int64, _CODE_NONE),
            "idle_power_w": stacked("idle_power_w", float, 0.0),
            "cstate_code": stacked("cstate_code", np.int64, 0),
        }

    @staticmethod
    def _segment_bounds(plans: Sequence[_RunPlan], total_steps: int) -> np.ndarray:
        # Per-run step attributes only change at phase boundaries (and at
        # each run's end), so the grid is advanced in segments between the
        # union of those change points: everything row-dependent is gathered
        # once per segment, leaving only state-dependent math per step.
        boundaries = {0, total_steps}
        for plan in plans:
            offset = 0
            for count in phase_step_counts(plan.scenario):
                boundaries.add(offset)
                offset += count
            boundaries.add(offset)
        return np.array(sorted(b for b in boundaries if 0 <= b <= total_steps))

    # -- the lockstep loop -------------------------------------------------------------

    def _step_grid(
        self, plans: Sequence[_RunPlan], tables: Sequence[CandidateTable]
    ) -> Dict[str, np.ndarray]:
        n_runs = len(plans)
        n_steps = np.array([plan.n_steps for plan in plans])
        total_steps = int(n_steps.max())
        steps = self._stack_steps(plans, total_steps)
        time_step_s = [plan.scenario.time_step_s for plan in plans]
        stacked = StackedCandidateTables.from_tables(tables) if tables else None
        turbo = BatchedTurboBudgetManager(
            [plan.limits for plan in plans],
            time_step_s=time_step_s,
            initial_average_w=[
                plan.scenario.initial_average_power_w for plan in plans
            ],
        )
        thermal = BatchedThermalModel(
            [plan.thermal for plan in plans], time_step_s=time_step_s
        )
        pl2_w = turbo.pl2_w
        rebank_threshold_w = np.array(
            [plan.limits.pl1_w * plan.scenario.rebank_fraction for plan in plans]
        )
        temperature = np.array(
            [plan.initial_temperature_c for plan in plans], dtype=float
        )
        armed = np.array([plan.initial_armed for plan in plans], dtype=bool)
        run_axis = np.arange(n_runs)

        # Step-major trace layout: each step writes one contiguous row.
        traces = {
            "frequency_hz": np.zeros((total_steps, n_runs)),
            "power_w": np.zeros((total_steps, n_runs)),
            "temperature_c": np.zeros((total_steps, n_runs)),
            "average_w": np.zeros((total_steps, n_runs)),
            "limiting": np.full((total_steps, n_runs), _CODE_NONE, dtype=np.int64),
            "cstate": steps["cstate_code"].T.copy(),
        }
        bounds = self._segment_bounds(plans, total_steps)
        for t0, t1 in zip(bounds[:-1], bounds[1:]):
            alive = t0 < n_steps
            active = steps["is_active"][:, t0] & alive
            all_alive = bool(alive.all())
            any_active = stacked is not None and bool(active.any())
            idle_power = steps["idle_power_w"][:, t0]
            if any_active:
                segment = _ActiveSegment(
                    stacked,
                    steps["table_slot"][:, t0],
                    run_axis,
                    active,
                    steps["sustained_bin"][:, t0],
                    steps["sustained_code"][:, t0],
                )
            for t in range(int(t0), int(t1)):
                if any_active:
                    thermal_cap = thermal.max_power_keeping_tjmax_w(temperature)
                    budget = turbo.power_budget_w()
                    # Armed runs draw up to the EWMA budget; exhausted runs
                    # are ceilinged by instantaneous PL2 — both under the
                    # thermal cap.
                    limit = np.where(
                        armed,
                        np.minimum(budget, thermal_cap),
                        np.minimum(pl2_w, thermal_cap),
                    )
                    frequency, power, limiting, exhausted = segment.resolve(
                        temperature, limit, armed, budget, pl2_w, thermal_cap,
                        idle_power,
                    )
                else:
                    frequency = np.zeros(n_runs)
                    power = idle_power
                    limiting = np.full(n_runs, _CODE_NONE, dtype=np.int64)
                    exhausted = None
                average = turbo.account(power, active=None if all_alive else alive)
                temperature = thermal.step(
                    temperature, power, active=None if all_alive else alive
                )
                rebank = np.where(average <= rebank_threshold_w, True, armed)
                new_armed = (
                    rebank if exhausted is None else np.where(exhausted, False, rebank)
                )
                armed = new_armed if all_alive else np.where(alive, new_armed, armed)
                traces["frequency_hz"][t] = frequency
                traces["power_w"][t] = power
                traces["temperature_c"][t] = temperature
                traces["average_w"][t] = average
                traces["limiting"][t] = limiting
        return traces

    # -- the population (die-variation) fast path --------------------------------------

    def run_population(
        self,
        pcode: Pcode,
        scenario: DynamicScenario,
        population: "DiePopulation",
        shard_size: Optional[int] = None,
    ) -> "PopulationRunTraces | StreamingCellShard":
        """Step one scenario across an entire die population in lockstep.

        *pcode* is the **nominal** system; the population's per-die silicon
        knobs are injected as stacked parameter arrays — candidate tables
        through :meth:`~repro.pmu.dvfs.StackedCandidateTables.from_population`,
        thermal resistance through
        :meth:`~repro.power.thermal.BatchedThermalModel.from_parameters`,
        idle power through the C-state model's varied arithmetic — with no
        per-die Python objects.  Every expression matches what one die's
        ``SystemSpec.variant(die_variation=...)`` build computes, so the
        fast path reproduces the per-die reference path bit for bit.

        With *shard_size* unset (the default), the whole population steps
        at once and the full ``(steps, dice)``
        :class:`PopulationRunTraces` matrices come back.  With
        *shard_size* set, the population streams through fixed-size die
        shards instead: each shard's matrices are condensed into the
        bounded accumulators of :mod:`repro.variation.streaming` and
        dropped before the next shard runs, so peak memory is O(shard) —
        the return value is the merged
        :class:`~repro.variation.streaming.StreamingCellShard`.
        Shard-infeasible configurations (``shard_size < 1``,
        ``shard_size > count``) raise :class:`ConfigurationError` with
        actionable messages.
        """
        if pcode.die_variation is not None:
            raise ConfigurationError(
                "run_population needs the nominal system; per-die variation "
                "comes from the population"
            )
        if shard_size is not None:
            return self._run_population_streaming(
                pcode, scenario, population, int(shard_size)
            )
        count = population.count
        processor = pcode.processor
        dt = scenario.time_step_s
        limits = TurboLimits.from_tdp(
            processor.tdp_w,
            pl2_ratio=scenario.pl2_ratio,
            tau_s=scenario.turbo_tau_s,
        )
        thermal_limits = processor.thermal_model().limits
        base_resistance = processor.thermal_model().thermal_resistance_c_per_w
        resistance = base_resistance * population.thermal_resistance_scale
        thermal = BatchedThermalModel.from_parameters(
            ambient_c=thermal_limits.ambient_c,
            tjmax_c=processor.tjmax_c,
            resistance_c_per_w=resistance,
            capacitance_j_per_c=scenario.thermal_capacitance_j_per_c,
            time_step_s=dt,
        )
        turbo = BatchedTurboBudgetManager(
            [limits] * count,
            time_step_s=[dt] * count,
            initial_average_w=[scenario.initial_average_power_w] * count,
        )
        vr_offset, power_offset = die_voltage_offsets(
            population.vf_offset_v,
            population.powergate_resistance_scale,
            processor.die.cores[0].power_gate.on_resistance_ohm,
            pcode.bypass_mode,
        )
        simulator = self.simulator(pcode)
        run_axis = np.arange(count)
        all_active = np.ones(count, dtype=bool)
        segments: Dict[CpuDemand, _ActiveSegment] = {}
        cstate_codes: Dict[str, int] = {_C0_NAME: 0}
        phase_segments: List[Optional[_ActiveSegment]] = []
        phase_idle_power: List[np.ndarray] = []
        phase_cstates: List[int] = []
        zeros = np.zeros(count)
        for phase in scenario.phases:
            if phase.is_idle:
                state = simulator._resolve_idle_state(phase)
                idle_power = np.asarray(
                    pcode.cstate_model.varied_power_w(
                        state,
                        population.leakage_scale,
                        population.leakage_kt_delta_per_c,
                    )
                )
                phase_segments.append(None)
                phase_idle_power.append(idle_power)
                phase_cstates.append(
                    cstate_codes.setdefault(state.value, len(cstate_codes))
                )
                continue
            demand = phase.demand()
            segment = segments.get(demand)
            if segment is None:
                nominal = pcode.dvfs_policy.candidate_table(demand)
                stacked = StackedCandidateTables.from_population(
                    nominal,
                    leakage_scale=population.leakage_scale,
                    kt_delta_per_c=population.leakage_kt_delta_per_c,
                    vr_offset_v=np.asarray(vr_offset),
                    power_offset_v=np.asarray(power_offset),
                )
                sustained_bin, sustained_code, _, _ = resolve_sustained_bins(
                    stacked.population_package_power_w,
                    stacked.vmax_ok,
                    np.asarray(stacked.iccmax_ok),
                    processor.tdp_w,
                    resistance[:, None],
                    thermal_limits.ambient_c,
                    thermal_limits.tjmax_c,
                )
                segment = _ActiveSegment(
                    stacked, run_axis, run_axis, all_active,
                    sustained_bin, sustained_code,
                )
                segments[demand] = segment
            phase_segments.append(segment)
            phase_idle_power.append(zeros)
            phase_cstates.append(cstate_codes[_C0_NAME])

        counts = phase_step_counts(scenario)
        total_steps = int(sum(counts))
        temperature = np.full(
            count,
            (
                scenario.initial_temperature_c
                if scenario.initial_temperature_c is not None
                else thermal_limits.ambient_c
            ),
            dtype=float,
        )
        armed = np.full(
            count, scenario.initial_average_power_w < limits.pl1_w, dtype=bool
        )
        pl2_w = turbo.pl2_w
        rebank_threshold_w = limits.pl1_w * scenario.rebank_fraction
        traces = {
            "frequency_hz": np.zeros((total_steps, count)),
            "power_w": np.zeros((total_steps, count)),
            "temperature_c": np.zeros((total_steps, count)),
            "average_w": np.zeros((total_steps, count)),
            "limiting": np.full((total_steps, count), _CODE_NONE, dtype=np.int64),
        }
        cstate_trace = np.zeros(total_steps, dtype=np.int64)
        t = 0
        for segment, idle_power, cstate, steps in zip(
            phase_segments, phase_idle_power, phase_cstates, counts
        ):
            cstate_trace[t : t + steps] = cstate
            for _ in range(steps):
                if segment is not None:
                    thermal_cap = thermal.max_power_keeping_tjmax_w(temperature)
                    budget = turbo.power_budget_w()
                    limit = np.where(
                        armed,
                        np.minimum(budget, thermal_cap),
                        np.minimum(pl2_w, thermal_cap),
                    )
                    frequency, power, limiting, exhausted = segment.resolve(
                        temperature, limit, armed, budget, pl2_w, thermal_cap,
                        idle_power,
                    )
                else:
                    frequency = zeros
                    power = idle_power
                    limiting = np.full(count, _CODE_NONE, dtype=np.int64)
                    exhausted = None
                average = turbo.account(power)
                temperature = thermal.step(temperature, power)
                rebank = np.where(average <= rebank_threshold_w, True, armed)
                armed = (
                    rebank
                    if exhausted is None
                    else np.where(exhausted, False, rebank)
                )
                traces["frequency_hz"][t] = frequency
                traces["power_w"][t] = power
                traces["temperature_c"][t] = temperature
                traces["average_w"][t] = average
                traces["limiting"][t] = limiting
                t += 1
        return PopulationRunTraces(
            scenario_name=scenario.name,
            time_step_s=dt,
            pl1_w=limits.pl1_w,
            pl2_w=limits.pl2_w,
            times_s=np.cumsum(np.full(total_steps, dt)),
            frequencies_hz=traces["frequency_hz"],
            package_powers_w=traces["power_w"],
            temperatures_c=traces["temperature_c"],
            average_powers_w=traces["average_w"],
            limiting_codes=traces["limiting"],
            cstate_codes=cstate_trace,
            cstate_names=tuple(cstate_codes),
        )

    def _run_population_streaming(
        self,
        pcode: Pcode,
        scenario: DynamicScenario,
        population: "DiePopulation",
        shard_size: int,
    ) -> "StreamingCellShard":
        """Stream the population through fixed-size shards, O(shard) memory.

        Each shard's full trace matrices exist only long enough to condense
        into the mergeable accumulators of
        :mod:`repro.variation.streaming`; the merged accumulator is
        returned.  The per-shard dynamics are the ordinary lockstep fast
        path, so every shard's numbers are bit-identical to the
        monolithic run's corresponding die columns.
        """
        # Deferred import: sim must not depend on variation at module
        # level (layering contract); the streaming accumulators live in
        # the variation layer because they understand populations.
        from repro.variation.streaming import (
            ShardPlan,
            condense_population_traces,
            merge_cell_shards,
        )

        plan = ShardPlan(count=population.count, shard_size=shard_size)
        shards = []
        for index in range(plan.n_shards):
            start, stop = plan.shard_bounds(index)
            traces = self.run_population(
                pcode, scenario, population.slice(start, stop)
            )
            shards.append(
                condense_population_traces(pcode, scenario, traces, index)
            )
        return merge_cell_shards(shards)

    # -- result materialisation --------------------------------------------------------

    @staticmethod
    def _materialise(
        plan: _RunPlan,
        traces: Dict[str, np.ndarray],
        run_index: int,
        cstate_names: Sequence[str],
    ) -> DynamicRunResult:
        n = plan.n_steps
        dt = plan.scenario.time_step_s
        # cumsum accumulates left to right, matching the reference loop's
        # repeated `time_s += dt` bit for bit.
        times = np.cumsum(np.full(n, dt))
        limiting_names = np.array(
            [factor.value for factor in LIMITING_FACTOR_ORDER], dtype=object
        )
        limiting_values = limiting_names[traces["limiting"][:n, run_index]].tolist()
        cstates = np.array(list(cstate_names), dtype=object)[
            traces["cstate"][:n, run_index]
        ].tolist()
        return DynamicRunResult(
            scenario_name=plan.scenario.name,
            time_step_s=dt,
            pl1_w=plan.limits.pl1_w,
            pl2_w=plan.limits.pl2_w,
            times_s=tuple(times.tolist()),
            frequencies_hz=tuple(traces["frequency_hz"][:n, run_index].tolist()),
            package_powers_w=tuple(traces["power_w"][:n, run_index].tolist()),
            temperatures_c=tuple(traces["temperature_c"][:n, run_index].tolist()),
            average_powers_w=tuple(traces["average_w"][:n, run_index].tolist()),
            limiting_factors=tuple(limiting_values),
            package_cstates=tuple(cstates),
        )
