"""The closed-loop Pcode dynamics engine.

The steady-state models resolve *operating points*; this module resolves
*trajectories*.  :class:`DynamicsSimulator` steps a
:class:`~repro.workloads.dynamics.DynamicScenario` through time, closing the
loop between four firmware/physics subsystems every step:

1. **Turbo power budget** — a PL1/PL2 pair with EWMA accounting
   (:class:`~repro.pmu.turbo.TurboBudgetManager`): the package may burst to
   PL2 while the moving average of power has headroom below PL1 (the TDP),
   then the budget squeezes back to the sustained level.
2. **Thermal RC model** — the junction temperature follows the exponential
   step response of :class:`~repro.power.thermal.TransientThermalModel`, and
   a thermal throttle caps the next step's power so Tjmax is never crossed.
3. **DVFS re-resolution** — every step picks the highest 100 MHz bin that
   satisfies Vmax, Iccmax and the *instantaneous* power limit at the
   *current* junction temperature, via the vectorized
   :class:`~repro.pmu.dvfs.CandidateTable`.
4. **Package C-states** — idle gaps enter the state the break-even ladder
   allows for their duration (clamped at the fused deepest state), and the
   idle power both cools the die and re-banks the turbo budget.

Once a sustained stretch exhausts the turbo budget (the EWMA reaches PL1),
the firmware latches the *sustained* operating point — the one the static
:meth:`~repro.pmu.dvfs.DvfsPolicy.resolve` computes from the TDP tables —
until an idle gap re-banks enough budget.  This reproduces the paper's
TDP-limited behaviour exactly: a long constant-demand scenario converges to
the same 100 MHz bin (and thermal fixed point) the steady-state resolver
reports, while low-TDP configurations show the PL2-burst-then-throttle
transient on the way there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.pmu.cstates import PackageCState, cstate_for_idle_duration
from repro.pmu.dvfs import CandidateTable, CpuDemand, LimitingFactor, OperatingPoint
from repro.pmu.pcode import Pcode
from repro.pmu.turbo import TurboBudgetManager
from repro.power.budget import TurboLimits
from repro.power.thermal import TransientThermalModel
from repro.sim.metrics import DynamicRunResult
from repro.workloads.dynamics import AUTO_CSTATE, DynamicPhase, DynamicScenario


@dataclass(frozen=True)
class _SustainedPoint:
    """The static (TDP-table) operating point for one demand, pre-resolved."""

    bin_index: int
    limiting: LimitingFactor
    operating_point: OperatingPoint


class _TraceRecorder:
    """Accumulates the per-step traces of one run."""

    def __init__(self) -> None:
        self.times_s: List[float] = []
        self.frequencies_hz: List[float] = []
        self.package_powers_w: List[float] = []
        self.temperatures_c: List[float] = []
        self.average_powers_w: List[float] = []
        self.limiting_factors: List[str] = []
        self.package_cstates: List[str] = []

    def record(
        self,
        time_s: float,
        frequency_hz: float,
        package_power_w: float,
        temperature_c: float,
        average_power_w: float,
        limiting: LimitingFactor,
        cstate: str,
    ) -> None:
        self.times_s.append(time_s)
        self.frequencies_hz.append(frequency_hz)
        self.package_powers_w.append(package_power_w)
        self.temperatures_c.append(temperature_c)
        self.average_powers_w.append(average_power_w)
        self.limiting_factors.append(limiting.value)
        self.package_cstates.append(cstate)


class DynamicsSimulator:
    """Steps dynamic scenarios through the closed firmware loop.

    Parameters
    ----------
    pcode:
        The firmware-configured system (provides the DVFS policy, the
        C-state power model, the TDP, and the thermal design limits).
    """

    def __init__(self, pcode: Pcode) -> None:
        self._pcode = pcode
        self._sustained_cache: Dict[CpuDemand, _SustainedPoint] = {}

    @property
    def pcode(self) -> Pcode:
        """The firmware configuration this simulator drives."""
        return self._pcode

    # -- public API --------------------------------------------------------------------

    def run(self, scenario: DynamicScenario) -> DynamicRunResult:
        """Simulate *scenario* and return the full trajectory."""
        processor = self._pcode.processor
        thermal = TransientThermalModel(
            steady_state=processor.thermal_model(),
            capacitance_j_per_c=scenario.thermal_capacitance_j_per_c,
        )
        limits = TurboLimits.from_tdp(
            processor.tdp_w,
            pl2_ratio=scenario.pl2_ratio,
            tau_s=scenario.turbo_tau_s,
        )
        turbo = TurboBudgetManager(
            limits, initial_average_w=scenario.initial_average_power_w
        )
        temperature = (
            scenario.initial_temperature_c
            if scenario.initial_temperature_c is not None
            else thermal.limits.ambient_c
        )
        burst_armed = scenario.initial_average_power_w < limits.pl1_w
        recorder = _TraceRecorder()
        time_s = 0.0
        dt = scenario.time_step_s
        # Phase boundaries are quantised to the global step grid from the
        # *cumulative* timeline (each phase keeps at least one step), so
        # rounding never accumulates across a multi-phase scenario: the run
        # always ends within half a step of scenario.duration_s.
        elapsed_steps = 0
        scheduled_end_s = 0.0
        for phase in scenario.phases:
            scheduled_end_s += phase.duration_s
            steps = max(1, round(scheduled_end_s / dt) - elapsed_steps)
            elapsed_steps += steps
            if phase.is_idle:
                stepper = self._idle_stepper(phase)
            else:
                stepper = self._active_stepper(phase, limits, thermal, turbo)
            for _ in range(steps):
                frequency, power, limiting, cstate, exhausted = stepper(
                    temperature, burst_armed, dt
                )
                average = turbo.account(power, dt)
                temperature = thermal.step(temperature, power, dt)
                if exhausted:
                    burst_armed = False
                elif average <= limits.pl1_w * scenario.rebank_fraction:
                    burst_armed = True
                time_s += dt
                recorder.record(
                    time_s, frequency, power, temperature, average, limiting, cstate
                )
        return DynamicRunResult(
            scenario_name=scenario.name,
            time_step_s=dt,
            pl1_w=limits.pl1_w,
            pl2_w=limits.pl2_w,
            times_s=tuple(recorder.times_s),
            frequencies_hz=tuple(recorder.frequencies_hz),
            package_powers_w=tuple(recorder.package_powers_w),
            temperatures_c=tuple(recorder.temperatures_c),
            average_powers_w=tuple(recorder.average_powers_w),
            limiting_factors=tuple(recorder.limiting_factors),
            package_cstates=tuple(recorder.package_cstates),
        )

    # -- per-phase steppers ------------------------------------------------------------

    def _idle_stepper(self, phase: DynamicPhase):
        state = self._resolve_idle_state(phase)
        power = self._pcode.cstate_model.power_w(state)

        def step(
            temperature: float, burst_armed: bool, dt: float
        ) -> Tuple[float, float, LimitingFactor, str, bool]:
            return 0.0, power, LimitingFactor.NONE, state.value, False

        return step

    def _active_stepper(
        self,
        phase: DynamicPhase,
        limits: TurboLimits,
        thermal: TransientThermalModel,
        turbo: TurboBudgetManager,
    ):
        demand = phase.demand()
        table = self._pcode.dvfs_policy.candidate_table(demand)
        sustained = self._sustained_point(demand, table)

        def step(
            temperature: float, burst_armed: bool, dt: float
        ) -> Tuple[float, float, LimitingFactor, str, bool]:
            thermal_cap = thermal.max_power_keeping_tjmax_w(temperature, dt)
            powers = table.package_power_w(temperature)
            exhausted = False
            if burst_armed:
                budget = turbo.power_budget_w(dt)  # already PL2-clamped
                index, limiting = table.select(
                    min(budget, thermal_cap), temperature, package_power_w=powers
                )
                if limiting is LimitingFactor.TDP and thermal_cap < budget:
                    limiting = LimitingFactor.THERMAL
                # The power-limited search (EWMA budget or thermal throttle)
                # decaying onto or below the sustained bin means the turbo
                # bank is spent: latch the sustained (TDP-table) point until
                # an idle gap re-banks budget.
                if (
                    limiting in (LimitingFactor.TDP, LimitingFactor.THERMAL)
                    and index <= sustained.bin_index
                ):
                    exhausted = True
            else:
                # Bank exhausted: burst bins are off the table; the ceiling
                # is the sustained (TDP-table) bin, still subject to the
                # instantaneous PL2/thermal envelope.
                index, limiting = table.select(
                    min(limits.pl2_w, thermal_cap), temperature, package_power_w=powers
                )
                if limiting is LimitingFactor.TDP and thermal_cap < limits.pl2_w:
                    limiting = LimitingFactor.THERMAL
                if index >= sustained.bin_index:
                    index, limiting = sustained.bin_index, sustained.limiting
            power = float(powers[index])
            return float(table.frequencies_hz[index]), power, limiting, "C0", exhausted

        return step

    # -- helpers -----------------------------------------------------------------------

    def _resolve_idle_state(self, phase: DynamicPhase) -> PackageCState:
        deepest = self._pcode.deepest_package_cstate()
        name = phase.package_cstate.strip()
        if name.lower() == AUTO_CSTATE:
            return cstate_for_idle_duration(phase.duration_s, deepest)
        if name.lower() == "deepest":
            return deepest
        state = PackageCState.from_name(name)
        if state is PackageCState.C0:
            raise ConfigurationError(
                f"idle phase {phase.name!r} cannot pin package C0"
            )
        return state if state.depth <= deepest.depth else deepest

    def _sustained_point(
        self, demand: CpuDemand, table: CandidateTable
    ) -> _SustainedPoint:
        cached = self._sustained_cache.get(demand)
        if cached is None:
            point = self._pcode.resolve_cpu_operating_point(demand)
            index = int(np.argmin(np.abs(table.frequencies_hz - point.frequency_hz)))
            cached = _SustainedPoint(
                bin_index=index,
                limiting=point.limiting_factor,
                operating_point=point,
            )
            self._sustained_cache[demand] = cached
        return cached
