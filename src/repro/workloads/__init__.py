"""Workload substrate.

The paper evaluates three classes of workloads on real hardware; this
package provides descriptor-based models of each class that exercise the
same decision paths in the firmware/simulation stack.  All descriptors
satisfy the :class:`Workload` protocol (a ``name`` plus a ``kind`` tag), so
any of them can be handed to the engine's polymorphic ``run()`` or swept
through :class:`repro.analysis.study.Study`:

* :mod:`repro.workloads.descriptors` — the descriptor dataclasses and the
  :class:`Workload` protocol.
* :mod:`repro.workloads.spec` — SPEC CPU2006 base (single-core) and rate
  (all-core) workloads with per-benchmark frequency scalability and
  activity, the knobs Section 7.1 says drive the gains.
* :mod:`repro.workloads.graphics` — 3DMark-style graphics workloads.
* :mod:`repro.workloads.energy` — ENERGY STAR and Intel Ready Mode (RMT)
  idle-residency scenarios.
* :mod:`repro.workloads.power_virus` — power-virus workloads used for
  guardband and EDC sizing.
* :mod:`repro.workloads.phases` — simple activity-phase traces for the
  residency simulator.
* :mod:`repro.workloads.dynamics` — timed phase timelines
  (:class:`DynamicScenario`) for the closed-loop dynamics engine.
"""

from repro.workloads.descriptors import (
    CpuWorkload,
    EnergyScenario,
    GraphicsWorkload,
    ResidencyPhase,
    ScenarioPhase,
    Workload,
)
from repro.workloads.dynamics import (
    DynamicPhase,
    DynamicScenario,
    burst_scenario,
    sprint_and_rest_scenario,
    sustained_scenario,
)
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.power_virus import power_virus_workload
from repro.workloads.spec import (
    spec_cpu2006_base_suite,
    spec_cpu2006_rate_suite,
    spec_cpu2006_suite,
)

__all__ = [
    "Workload",
    "CpuWorkload",
    "EnergyScenario",
    "GraphicsWorkload",
    "ResidencyPhase",
    "ScenarioPhase",
    "DynamicPhase",
    "DynamicScenario",
    "burst_scenario",
    "sprint_and_rest_scenario",
    "sustained_scenario",
    "energy_star_scenario",
    "rmt_scenario",
    "three_dmark_suite",
    "power_virus_workload",
    "spec_cpu2006_base_suite",
    "spec_cpu2006_rate_suite",
    "spec_cpu2006_suite",
]
