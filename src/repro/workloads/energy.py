"""Energy-efficiency scenarios: ENERGY STAR and Intel Ready Mode (RMT).

These scenarios reproduce the structure the paper describes in Sections 6
and 7.3:

* **RMT** — the platform sits in Ready Mode: ~99 % of the time idle in its
  deepest supported package C-state and ~1 % of the time awake servicing
  network traffic, with a small slice of shallow idle covering the
  entry/exit transitions.
* **ENERGY STAR** — the desktop computers specification weights four modes
  (off, sleep, long idle, short idle); the long/short idle modes reach the
  deepest package C-state with, for short idle, the display pipeline still
  drawing power.

The average-power limits attached to each scenario model the pass/fail
thresholds drawn as horizontal lines in Fig. 10: the DarkGates part limited
to package C7 misses them, while DarkGates with package C8 (and the
non-DarkGates baseline) meet them.
"""

from __future__ import annotations

from repro.workloads.descriptors import EnergyScenario, ResidencyPhase


def rmt_scenario() -> EnergyScenario:
    """The Intel Ready Mode Technology idle-platform scenario."""
    return EnergyScenario(
        name="RMT",
        phases=(
            ResidencyPhase(
                name="active_wake",
                fraction=0.01,
                mode="active",
                active_power_hint_w=5.0,
            ),
            ResidencyPhase(
                name="shallow_idle_transitions",
                fraction=0.02,
                mode="package_idle",
                package_cstate="C2",
            ),
            ResidencyPhase(
                name="deep_idle",
                fraction=0.97,
                mode="package_idle",
                package_cstate="deepest",
            ),
        ),
        average_power_limit_w=0.50,
    )


def energy_star_scenario() -> EnergyScenario:
    """The ENERGY STAR desktop-computer usage profile.

    Mode weightings follow the conventional desktop duty cycle of the
    ENERGY STAR computers specification (off 25 %, sleep 35 %, long idle
    10 %, short idle 30 %).  Short idle keeps the display pipeline alive,
    modelled as a fixed power hint added on top of the package idle power.
    """
    return EnergyScenario(
        name="ENERGY STAR",
        phases=(
            ResidencyPhase(name="off", fraction=0.25, mode="off", active_power_hint_w=0.15),
            ResidencyPhase(
                name="sleep", fraction=0.35, mode="sleep", active_power_hint_w=0.45
            ),
            ResidencyPhase(
                name="long_idle",
                fraction=0.10,
                mode="package_idle",
                package_cstate="deepest",
            ),
            ResidencyPhase(
                name="short_idle",
                fraction=0.30,
                mode="package_idle",
                package_cstate="deepest",
                active_power_hint_w=0.70,
            ),
        ),
        average_power_limit_w=0.65,
    )


def energy_scenarios() -> tuple[EnergyScenario, EnergyScenario]:
    """Both energy-efficiency scenarios evaluated in Fig. 10."""
    return (energy_star_scenario(), rmt_scenario())
