"""SPEC CPU2006 workload descriptors.

The paper's Fig. 7 shows that the DarkGates gain of each SPEC CPU2006
benchmark is "positively correlated with the performance scalability of the
running workload with CPU frequency": highly scalable benchmarks such as
416.gamess and 444.namd gain the most (up to 8.1 %), memory-bound ones such
as 410.bwaves and 433.milc gain almost nothing.

The per-benchmark ``frequency_scalability`` values below encode that
published knowledge: they follow the well-known memory-boundedness of each
benchmark (compute-bound FP codes near 1.0, memory-streaming codes near 0).
``activity`` (Cdyn fraction) loosely tracks IPC/vector intensity and
``memory_intensity`` tracks DRAM traffic.  Absolute SPEC scores are not
modelled — only relative performance versus frequency, which is all the
reproduction needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.workloads.descriptors import CpuWorkload

#: name -> (category, frequency_scalability, activity, memory_intensity)
_SPEC_CPU2006_TABLE: Dict[str, tuple[str, float, float, float]] = {
    # --- SPECint ---------------------------------------------------------------
    "400.perlbench": ("int", 0.82, 0.66, 0.15),
    "401.bzip2": ("int", 0.68, 0.62, 0.30),
    "403.gcc": ("int", 0.55, 0.60, 0.45),
    "429.mcf": ("int", 0.12, 0.45, 0.90),
    "445.gobmk": ("int", 0.80, 0.64, 0.15),
    "456.hmmer": ("int", 0.90, 0.72, 0.08),
    "458.sjeng": ("int", 0.84, 0.66, 0.10),
    "462.libquantum": ("int", 0.10, 0.50, 0.95),
    "464.h264ref": ("int", 0.86, 0.72, 0.12),
    "471.omnetpp": ("int", 0.30, 0.52, 0.70),
    "473.astar": ("int", 0.48, 0.56, 0.50),
    "483.xalancbmk": ("int", 0.45, 0.58, 0.55),
    # --- SPECfp ----------------------------------------------------------------
    "410.bwaves": ("fp", 0.06, 0.55, 0.95),
    "416.gamess": ("fp", 0.97, 0.74, 0.05),
    "433.milc": ("fp", 0.08, 0.52, 0.92),
    "434.zeusmp": ("fp", 0.55, 0.62, 0.45),
    "435.gromacs": ("fp", 0.88, 0.72, 0.10),
    "436.cactusADM": ("fp", 0.40, 0.60, 0.60),
    "437.leslie3d": ("fp", 0.25, 0.58, 0.75),
    "444.namd": ("fp", 0.96, 0.74, 0.05),
    "447.dealII": ("fp", 0.78, 0.68, 0.20),
    "450.soplex": ("fp", 0.30, 0.54, 0.70),
    "453.povray": ("fp", 0.95, 0.72, 0.04),
    "454.calculix": ("fp", 0.90, 0.74, 0.10),
    "459.GemsFDTD": ("fp", 0.20, 0.56, 0.80),
    "465.tonto": ("fp", 0.85, 0.70, 0.15),
    "470.lbm": ("fp", 0.15, 0.58, 0.90),
    "481.wrf": ("fp", 0.60, 0.64, 0.40),
    "482.sphinx3": ("fp", 0.65, 0.62, 0.35),
}


def spec_benchmark_names() -> List[str]:
    """All modelled SPEC CPU2006 benchmark names."""
    return list(_SPEC_CPU2006_TABLE)


def spec_benchmark(name: str, active_cores: int = 1) -> CpuWorkload:
    """Build the descriptor of one SPEC CPU2006 benchmark.

    Parameters
    ----------
    name:
        Benchmark name (``"416.gamess"``).
    active_cores:
        1 for base (speed) mode; the machine's core count for rate mode.
    """
    try:
        category, scalability, activity, memory = _SPEC_CPU2006_TABLE[name]
    except KeyError as exc:
        raise ConfigurationError(f"unknown SPEC CPU2006 benchmark {name!r}") from exc
    return CpuWorkload(
        name=name,
        active_cores=active_cores,
        activity=activity,
        memory_intensity=memory,
        frequency_scalability=scalability,
        category=category,
    )


def spec_cpu2006_suite(
    active_cores: int = 1, category: Optional[str] = None
) -> List[CpuWorkload]:
    """The full SPEC CPU2006 suite as workload descriptors.

    Parameters
    ----------
    active_cores:
        Cores used per benchmark (1 == base mode).
    category:
        Restrict to ``"int"`` or ``"fp"``; None returns both.
    """
    if category is not None and category not in ("int", "fp"):
        raise ConfigurationError("category must be 'int', 'fp', or None")
    suite = []
    for name, (cat, _, _, _) in _SPEC_CPU2006_TABLE.items():
        if category is not None and cat != category:
            continue
        suite.append(spec_benchmark(name, active_cores))
    return suite


def spec_cpu2006_base_suite(category: Optional[str] = None) -> List[CpuWorkload]:
    """SPEC CPU2006 in base (single-core) mode."""
    return spec_cpu2006_suite(active_cores=1, category=category)


def spec_cpu2006_rate_suite(
    core_count: int = 4, category: Optional[str] = None
) -> List[CpuWorkload]:
    """SPEC CPU2006 in rate (all-core copies) mode."""
    if core_count < 1:
        raise ConfigurationError("core_count must be >= 1")
    return spec_cpu2006_suite(active_cores=core_count, category=category)


def average_scalability(category: Optional[str] = None) -> float:
    """Average frequency scalability across the (sub)suite."""
    suite = spec_cpu2006_suite(category=category)
    return sum(w.frequency_scalability for w in suite) / len(suite)
