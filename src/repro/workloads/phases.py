"""Activity-phase traces.

A phase trace is a time-weighted sequence of activity levels that the
residency simulator replays against a processor configuration.  It is the
generalisation underlying the energy scenarios: each phase pins the system
in one mode (active at a given demand, a package idle state, sleep, or off)
for a fraction of the observation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive
from repro.pmu.dvfs import CpuDemand


@dataclass(frozen=True)
class TracePhase:
    """One timed phase of a trace."""

    duration_s: float
    demand: Optional[CpuDemand]  # None == fully idle
    label: str = ""

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")

    @property
    def is_idle(self) -> bool:
        """True when no core is executing during this phase."""
        return self.demand is None


@dataclass(frozen=True)
class PhaseTrace:
    """A sequence of timed phases."""

    name: str
    phases: Tuple[TracePhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("a trace needs at least one phase")

    @property
    def duration_s(self) -> float:
        """Total trace duration."""
        return sum(phase.duration_s for phase in self.phases)

    def idle_fraction(self) -> float:
        """Fraction of the trace spent fully idle."""
        idle = sum(phase.duration_s for phase in self.phases if phase.is_idle)
        return idle / self.duration_s

    def labels(self) -> List[str]:
        """Labels of the phases in order."""
        return [phase.label for phase in self.phases]


def bursty_idle_trace(
    name: str = "bursty_idle",
    burst_duration_s: float = 0.01,
    idle_duration_s: float = 0.99,
    repetitions: int = 10,
    burst_demand: Optional[CpuDemand] = None,
) -> PhaseTrace:
    """A trace alternating short compute bursts with long idle periods.

    This is the shape of the RMT / connected-standby style workloads: the
    processor wakes for about 1 % of the time and idles for the rest.
    """
    if repetitions < 1:
        raise ConfigurationError("repetitions must be >= 1")
    demand = burst_demand or CpuDemand(active_cores=1, activity=0.4, memory_intensity=0.2)
    phases: List[TracePhase] = []
    for index in range(repetitions):
        phases.append(
            TracePhase(duration_s=burst_duration_s, demand=demand, label=f"burst{index}")
        )
        phases.append(
            TracePhase(duration_s=idle_duration_s, demand=None, label=f"idle{index}")
        )
    return PhaseTrace(name=name, phases=tuple(phases))


def sustained_compute_trace(
    name: str = "sustained_compute",
    duration_s: float = 60.0,
    demand: Optional[CpuDemand] = None,
) -> PhaseTrace:
    """A trace of one long fully-active phase (a SPEC-style run)."""
    resolved = demand or CpuDemand(active_cores=4, activity=0.65, memory_intensity=0.3)
    return PhaseTrace(
        name=name,
        phases=(TracePhase(duration_s=duration_s, demand=resolved, label="compute"),),
    )
