"""Power-virus workloads.

A power-virus is a synthetic instruction stream that exercises the maximum
dynamic capacitance a core can draw (paper Fig. 2).  It is never a shipping
workload; the firmware uses it for guardband sizing, EDC checks, and the
multi-level virus scheme.  The descriptor here lets the simulation engine
and the tests exercise the worst-case corner explicitly.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.workloads.descriptors import CpuWorkload


def power_virus_workload(active_cores: int = 4) -> CpuWorkload:
    """A power-virus running on *active_cores* cores."""
    if active_cores < 1:
        raise ConfigurationError("active_cores must be >= 1")
    return CpuWorkload(
        name=f"power_virus_{active_cores}c",
        active_cores=active_cores,
        activity=1.0,
        memory_intensity=0.3,
        frequency_scalability=1.0,
        category="int",
    )


def tdp_sizing_workload(active_cores: int = 4) -> CpuWorkload:
    """The "maximum theoretical load, but not a power-virus" TDP workload."""
    if active_cores < 1:
        raise ConfigurationError("active_cores must be >= 1")
    return CpuWorkload(
        name=f"tdp_workload_{active_cores}c",
        active_cores=active_cores,
        activity=0.80,
        memory_intensity=0.4,
        frequency_scalability=0.95,
        category="int",
    )
