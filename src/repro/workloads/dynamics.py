"""Time-stepped (dynamic) workload scenarios.

The steady-state workload classes describe *what* runs; a
:class:`DynamicScenario` additionally describes *when*: a declarative
timeline of :class:`DynamicPhase` entries (compute bursts, sustained
stretches, idle gaps) that the closed-loop dynamics engine
(:mod:`repro.sim.dynamics`) steps through while re-resolving DVFS under the
instantaneous turbo/thermal limits.  This is the workload shape behind the
paper's time-dependent firmware behaviour: turbo bursts above TDP, the decay
to the sustained (TDP-limited) frequency, and package C-state entry during
idle gaps.

Scenarios are frozen and hashable, so they key study caches and pickle
across process-pool executors like every other workload class.  The phase
timeline deliberately reuses the vocabulary of
:class:`~repro.workloads.descriptors.ScenarioPhase`:
:meth:`DynamicPhase.from_scenario_phase` and
:meth:`DynamicScenario.from_energy_scenario` turn a residency mix into a
concrete timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range, ensure_positive
from repro.pmu.dvfs import CpuDemand
from repro.workloads.descriptors import EnergyScenario, ScenarioPhase

#: ``package_cstate`` value asking the engine to pick the idle state from the
#: gap duration via the break-even ladder.
AUTO_CSTATE = "auto"


@dataclass(frozen=True)
class DynamicPhase:
    """One timed phase of a dynamic scenario.

    Parameters
    ----------
    name:
        Phase label (shows up in traces and reports).
    duration_s:
        How long the phase lasts.
    active_cores:
        Cores executing during the phase; 0 makes this an idle gap.
    activity:
        Cdyn fraction of the running code (active phases only).
    memory_intensity:
        0..1 memory-traffic intensity (active phases only).
    package_cstate:
        Idle state of an idle phase: a state name (any case),
        ``"deepest"``, or :data:`AUTO_CSTATE` to derive it from the gap
        duration through the break-even ladder.
    """

    name: str
    duration_s: float
    active_cores: int = 0
    activity: float = 0.62
    memory_intensity: float = 0.2
    package_cstate: str = AUTO_CSTATE

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must be a non-empty string")
        ensure_positive(self.duration_s, "duration_s")
        if self.active_cores < 0:
            raise ConfigurationError("active_cores must be >= 0")
        ensure_in_range(self.activity, 0.0, 1.0, "activity")
        ensure_in_range(self.memory_intensity, 0.0, 1.0, "memory_intensity")

    @property
    def is_idle(self) -> bool:
        """True when no core executes during this phase."""
        return self.active_cores == 0

    def demand(self) -> CpuDemand:
        """The DVFS demand of an active phase."""
        if self.is_idle:
            raise ConfigurationError(f"phase {self.name!r} is idle; it has no demand")
        return CpuDemand(
            active_cores=self.active_cores,
            activity=self.activity,
            memory_intensity=self.memory_intensity,
        )

    @classmethod
    def from_scenario_phase(
        cls, phase: ScenarioPhase, duration_s: float
    ) -> "DynamicPhase":
        """A timed phase from an energy-scenario residency phase.

        ``"active"`` phases keep their core count; every idle mode
        (``"package_idle"``, ``"sleep"``, ``"off"``) becomes an idle gap at
        the phase's package C-state (platform-clamped by the engine).
        """
        if phase.mode == "active":
            return cls(
                name=phase.name,
                duration_s=duration_s,
                active_cores=phase.active_cores,
            )
        cstate = phase.package_cstate if phase.mode == "package_idle" else "deepest"
        return cls(
            name=phase.name,
            duration_s=duration_s,
            active_cores=0,
            package_cstate=cstate,
        )


@dataclass(frozen=True)
class DynamicScenario:
    """A declarative phase timeline the dynamics engine can step through.

    Parameters
    ----------
    name:
        Scenario name (keys study results).
    phases:
        The timeline, in order.
    time_step_s:
        Simulation step of the closed loop.
    pl2_ratio:
        Burst power limit as a multiple of the configuration's TDP
        (PL1 is always the TDP itself).
    turbo_tau_s:
        EWMA window of the turbo power accounting.
    thermal_capacitance_j_per_c:
        Lumped thermal capacitance closing the thermal loop.
    initial_temperature_c:
        Junction temperature at t=0; ``None`` starts at the design ambient.
    initial_average_power_w:
        EWMA of package power at t=0 (0 == fully banked turbo budget).
    rebank_fraction:
        Once a sustained stretch exhausts the turbo budget, bursting is
        re-enabled only after the moving average falls back below this
        fraction of PL1 (normally during an idle gap).
    """

    kind: ClassVar[str] = "dynamic"

    name: str
    phases: Tuple[DynamicPhase, ...]
    time_step_s: float = 0.1
    pl2_ratio: float = 1.25
    turbo_tau_s: float = 10.0
    thermal_capacitance_j_per_c: float = 60.0
    initial_temperature_c: Optional[float] = None
    initial_average_power_w: float = 0.0
    rebank_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be a non-empty string")
        if not self.phases:
            raise ConfigurationError("a dynamic scenario needs at least one phase")
        ensure_positive(self.time_step_s, "time_step_s")
        if self.pl2_ratio < 1.0:
            raise ConfigurationError("pl2_ratio must be >= 1.0")
        ensure_positive(self.turbo_tau_s, "turbo_tau_s")
        ensure_positive(self.thermal_capacitance_j_per_c, "thermal_capacitance_j_per_c")
        if self.initial_temperature_c is not None:
            ensure_positive(self.initial_temperature_c, "initial_temperature_c")
        if self.initial_average_power_w < 0:
            raise ConfigurationError("initial_average_power_w must be >= 0")
        ensure_in_range(self.rebank_fraction, 0.0, 1.0, "rebank_fraction")

    @property
    def duration_s(self) -> float:
        """Total timeline duration."""
        return sum(phase.duration_s for phase in self.phases)

    def phase_names(self) -> List[str]:
        """Names of the phases in order."""
        return [phase.name for phase in self.phases]

    # -- derivation --------------------------------------------------------------------

    @classmethod
    def from_energy_scenario(
        cls,
        scenario: EnergyScenario,
        total_duration_s: float,
        name: Optional[str] = None,
        **overrides,
    ) -> "DynamicScenario":
        """Unroll an energy scenario's residency mix into a timed scenario.

        Each :class:`~repro.workloads.descriptors.ScenarioPhase` becomes one
        :class:`DynamicPhase` lasting its residency fraction of
        *total_duration_s* (zero-fraction phases are dropped).
        """
        ensure_positive(total_duration_s, "total_duration_s")
        phases = tuple(
            DynamicPhase.from_scenario_phase(
                phase, duration_s=phase.fraction * total_duration_s
            )
            for phase in scenario.phases
            if phase.fraction > 0.0
        )
        return cls(name=name or scenario.name, phases=phases, **overrides)


# -- scenario builders ------------------------------------------------------------------


def sustained_scenario(
    duration_s: float = 120.0,
    active_cores: int = 4,
    activity: float = 0.62,
    memory_intensity: float = 0.2,
    name: str = "sustained",
    **overrides,
) -> DynamicScenario:
    """One long constant-demand stretch (the steady-state parity workload)."""
    phase = DynamicPhase(
        name="compute",
        duration_s=duration_s,
        active_cores=active_cores,
        activity=activity,
        memory_intensity=memory_intensity,
    )
    return DynamicScenario(name=name, phases=(phase,), **overrides)


def burst_scenario(
    idle_lead_s: float = 20.0,
    burst_s: float = 100.0,
    active_cores: int = 4,
    activity: float = 0.62,
    memory_intensity: float = 0.2,
    name: str = "burst",
    **overrides,
) -> DynamicScenario:
    """An idle lead (banking the turbo budget) followed by one long burst.

    On a TDP-limited configuration the burst opens at the PL2-backed turbo
    frequency and decays to the sustained frequency as the EWMA reaches PL1
    — the paper's burst-then-throttle story.  On a high-TDP configuration
    the same timeline stays Vmax-limited throughout.
    """
    phases = (
        DynamicPhase(name="idle_lead", duration_s=idle_lead_s),
        DynamicPhase(
            name="burst",
            duration_s=burst_s,
            active_cores=active_cores,
            activity=activity,
            memory_intensity=memory_intensity,
        ),
    )
    return DynamicScenario(name=name, phases=phases, **overrides)


def sprint_and_rest_scenario(
    sprint_s: float = 30.0,
    rest_s: float = 30.0,
    cycles: int = 3,
    active_cores: int = 4,
    activity: float = 0.62,
    memory_intensity: float = 0.2,
    name: str = "sprint_and_rest",
    **overrides,
) -> DynamicScenario:
    """Alternating sprints and idle rests (the duty-cycled turbo workload).

    Each rest lets the moving average decay and re-bank turbo budget, so a
    TDP-limited part sprints above its sustained frequency at every cycle
    start — the repeated-burst behaviour of bursty interactive workloads.
    """
    if cycles < 1:
        raise ConfigurationError("cycles must be >= 1")
    phases: List[DynamicPhase] = []
    for cycle in range(cycles):
        phases.append(
            DynamicPhase(
                name=f"sprint{cycle}",
                duration_s=sprint_s,
                active_cores=active_cores,
                activity=activity,
                memory_intensity=memory_intensity,
            )
        )
        phases.append(DynamicPhase(name=f"rest{cycle}", duration_s=rest_s))
    return DynamicScenario(name=name, phases=tuple(phases), **overrides)


# -- scenario registry ------------------------------------------------------------------

#: Name -> builder for every canonical dynamic scenario, so callers that
#: only hold a string (the ``python -m repro`` CLI, config files) can build
#: the same scenarios the examples use.
SCENARIO_BUILDERS: Dict[str, Callable[..., DynamicScenario]] = {
    "sustained": sustained_scenario,
    "burst": burst_scenario,
    "sprint_and_rest": sprint_and_rest_scenario,
}


def scenario_names() -> List[str]:
    """The names :func:`build_scenario` accepts, sorted."""
    return sorted(SCENARIO_BUILDERS)


def build_scenario(name: str, **overrides) -> DynamicScenario:
    """Build a registered dynamic scenario by name.

    *overrides* are passed straight to the builder, so both builder knobs
    (``burst_s=10``) and :class:`DynamicScenario` fields routed through the
    builder's ``**overrides`` (``time_step_s=0.5``) work.
    """
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown dynamic scenario {name!r}; known scenarios: "
            f"{', '.join(scenario_names())}"
        )
    try:
        return builder(**overrides)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad options for scenario {name!r}: {exc}"
        ) from exc
