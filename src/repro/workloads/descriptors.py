"""Workload descriptor types.

Workloads are described by the handful of properties that determine how the
paper's mechanisms act on them:

* CPU workloads: how many cores they keep busy, how much dynamic
  capacitance they exercise, how memory-bound they are, and — decisive for
  Fig. 7 — how their performance scales with core frequency.
* Graphics workloads: how graphics-frequency-scalable they are and how much
  CPU support they need.
* Energy scenarios: how long the system sits in each idle mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Protocol, Tuple, runtime_checkable

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range, ensure_positive


@runtime_checkable
class Workload(Protocol):
    """Anything the simulation engine can run polymorphically.

    A workload carries a ``name`` (used to key results) and a ``kind`` tag
    (``"cpu"``, ``"graphics"``, or ``"energy"``) that
    :meth:`repro.sim.engine.SimulationEngine.run` dispatches on.
    """

    name: str
    kind: ClassVar[str]


@dataclass(frozen=True)
class CpuWorkload:
    """A CPU-bound workload (one SPEC benchmark in base or rate mode).

    Parameters
    ----------
    name:
        Benchmark name, e.g. ``"416.gamess"``.
    active_cores:
        Cores kept busy (1 for SPEC base, all cores for SPEC rate).
    activity:
        Cdyn fraction exercised (1.0 == power-virus).
    memory_intensity:
        0..1; how much of the time the workload stresses DRAM.
    frequency_scalability:
        Fraction of runtime that scales with core frequency at the reference
        frequency (1.0 == perfectly core-bound).  Performance follows the
        standard two-component model: ``time(f) = scalable / f + flat``.
    reference_frequency_hz:
        Frequency at which ``frequency_scalability`` was characterised.
    category:
        "int" or "fp", used for Fig. 3-style per-category averages.
    """

    kind: ClassVar[str] = "cpu"

    name: str
    active_cores: int
    activity: float
    memory_intensity: float
    frequency_scalability: float
    reference_frequency_hz: float = 3.5e9
    category: str = "int"

    def __post_init__(self) -> None:
        if self.active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")
        ensure_in_range(self.activity, 0.0, 1.0, "activity")
        ensure_in_range(self.memory_intensity, 0.0, 1.0, "memory_intensity")
        ensure_in_range(self.frequency_scalability, 0.0, 1.0, "frequency_scalability")
        ensure_positive(self.reference_frequency_hz, "reference_frequency_hz")
        if self.category not in ("int", "fp"):
            raise ConfigurationError("category must be 'int' or 'fp'")

    # -- performance model -----------------------------------------------------------

    def relative_performance(self, frequency_hz: float) -> float:
        """Performance at *frequency_hz* relative to the reference frequency.

        Runtime is split into a frequency-scalable part and a flat
        (memory/IO-bound) part at the reference frequency; only the former
        shrinks as frequency rises.  This reproduces the paper's observation
        that 416.gamess/444.namd gain the most and 410.bwaves/433.milc gain
        almost nothing.
        """
        ensure_positive(frequency_hz, "frequency_hz")
        scalable = self.frequency_scalability
        flat = 1.0 - scalable
        relative_time = scalable * (self.reference_frequency_hz / frequency_hz) + flat
        return 1.0 / relative_time

    def speedup(self, from_frequency_hz: float, to_frequency_hz: float) -> float:
        """Speedup when moving between two frequencies."""
        return self.relative_performance(to_frequency_hz) / self.relative_performance(
            from_frequency_hz
        )

    def with_active_cores(self, active_cores: int) -> "CpuWorkload":
        """The same benchmark run on a different number of cores (rate mode)."""
        return CpuWorkload(
            name=self.name,
            active_cores=active_cores,
            activity=self.activity,
            memory_intensity=self.memory_intensity,
            frequency_scalability=self.frequency_scalability,
            reference_frequency_hz=self.reference_frequency_hz,
            category=self.category,
        )


@dataclass(frozen=True)
class GraphicsWorkload:
    """A graphics (3DMark-style) workload."""

    kind: ClassVar[str] = "graphics"

    name: str
    graphics_activity: float = 0.9
    graphics_scalability: float = 0.85
    driver_cores: int = 1
    driver_activity: float = 0.45
    memory_intensity: float = 0.5
    reference_graphics_frequency_hz: float = 1.0e9

    def __post_init__(self) -> None:
        ensure_in_range(self.graphics_activity, 0.0, 1.0, "graphics_activity")
        ensure_in_range(self.graphics_scalability, 0.0, 1.0, "graphics_scalability")
        ensure_in_range(self.driver_activity, 0.0, 1.0, "driver_activity")
        ensure_in_range(self.memory_intensity, 0.0, 1.0, "memory_intensity")
        if self.driver_cores < 1:
            raise ConfigurationError("driver_cores must be >= 1")
        ensure_positive(
            self.reference_graphics_frequency_hz, "reference_graphics_frequency_hz"
        )

    def relative_fps(self, graphics_frequency_hz: float) -> float:
        """Frames-per-second metric relative to the reference frequency."""
        ensure_positive(graphics_frequency_hz, "graphics_frequency_hz")
        scalable = self.graphics_scalability
        flat = 1.0 - scalable
        relative_time = (
            scalable * (self.reference_graphics_frequency_hz / graphics_frequency_hz)
            + flat
        )
        return 1.0 / relative_time


@dataclass(frozen=True)
class ResidencyPhase:
    """One phase of an energy-efficiency scenario.

    Parameters
    ----------
    name / fraction / mode:
        Phase identity, residency fraction, and one of ``"active"``,
        ``"package_idle"``, ``"sleep"``, ``"off"``.
    package_cstate:
        Idle state of ``"package_idle"`` phases; a state name (any case) or
        ``"deepest"`` for the deepest the platform supports.
    active_power_hint_w:
        Configuration-independent power share of the phase.
    active_cores:
        Cores awake during an ``"active"`` phase; on a bypassed part the
        remaining (dark) cores leak at the resolved wake rail voltage.
    """

    name: str
    fraction: float
    mode: str  # "active", "package_idle", "sleep", or "off"
    package_cstate: str = "C7"
    active_power_hint_w: float = 0.0
    active_cores: int = 1

    _VALID_MODES = ("active", "package_idle", "sleep", "off")

    def __post_init__(self) -> None:
        ensure_in_range(self.fraction, 0.0, 1.0, "fraction")
        if self.mode not in self._VALID_MODES:
            raise ConfigurationError(
                f"mode must be one of {self._VALID_MODES}, got {self.mode!r}"
            )
        if self.active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")


#: Canonical name for a phase of an energy scenario as seen by the engine.
ScenarioPhase = ResidencyPhase


@dataclass(frozen=True)
class EnergyScenario:
    """An energy-efficiency scenario: a weighted mix of residency phases.

    Parameters
    ----------
    name:
        Scenario name ("ENERGY STAR", "RMT").
    phases:
        Phases whose fractions must sum to 1.
    average_power_limit_w:
        The pass/fail limit the scenario's benchmark imposes on average
        processor power (the horizontal limit lines of Fig. 10).
    """

    kind: ClassVar[str] = "energy"

    name: str
    phases: Tuple[ResidencyPhase, ...]
    average_power_limit_w: float

    def __post_init__(self) -> None:
        ensure_positive(self.average_power_limit_w, "average_power_limit_w")
        total = sum(phase.fraction for phase in self.phases)
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"phase fractions must sum to 1.0, got {total:.6f}"
            )

    def phase_names(self) -> List[str]:
        """Names of the phases in order."""
        return [phase.name for phase in self.phases]
