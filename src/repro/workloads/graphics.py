"""3DMark-style graphics workload descriptors.

The paper evaluates DarkGates' graphics impact with 3DMark (Fig. 9).  What
matters for the reproduction is only that the workloads are heavily
graphics-frequency-scalable, keep one CPU core lightly busy running the
driver, and stress memory moderately — that is what routes their fate
through the power-budget manager.
"""

from __future__ import annotations

from typing import List

from repro.workloads.descriptors import GraphicsWorkload


def three_dmark_suite() -> List[GraphicsWorkload]:
    """The 3DMark-style graphics tests used for the Fig. 9 reproduction."""
    return [
        GraphicsWorkload(
            name="3dmark.cloud_gate_gt1",
            graphics_activity=0.88,
            graphics_scalability=0.86,
            driver_activity=0.42,
            memory_intensity=0.45,
        ),
        GraphicsWorkload(
            name="3dmark.cloud_gate_gt2",
            graphics_activity=0.92,
            graphics_scalability=0.88,
            driver_activity=0.45,
            memory_intensity=0.50,
        ),
        GraphicsWorkload(
            name="3dmark.sky_diver_gt1",
            graphics_activity=0.90,
            graphics_scalability=0.84,
            driver_activity=0.48,
            memory_intensity=0.55,
        ),
        GraphicsWorkload(
            name="3dmark.sky_diver_gt2",
            graphics_activity=0.93,
            graphics_scalability=0.87,
            driver_activity=0.50,
            memory_intensity=0.60,
        ),
        GraphicsWorkload(
            name="3dmark.fire_strike_gt1",
            graphics_activity=0.95,
            graphics_scalability=0.90,
            driver_activity=0.40,
            memory_intensity=0.65,
        ),
        GraphicsWorkload(
            name="3dmark.fire_strike_gt2",
            graphics_activity=0.96,
            graphics_scalability=0.91,
            driver_activity=0.42,
            memory_intensity=0.70,
        ),
    ]
