"""Frequency grids.

Modern Intel processors change CPU core frequency in discrete steps of one
bus-clock multiple (100 MHz on Skylake-class parts).  The paper leans on
this granularity twice:

* Section 3, Observation 1 — the *relative* frequency gain from a reduced
  guardband is larger at low TDP because the extra headroom converts into
  the same number of 100 MHz bins on top of a lower baseline frequency.
* Section 7.1 — the reported SPEC gains are produced by the firmware
  stepping frequency bin by bin until a limit (TDP, Vmax, or Iccmax) is hit.

:class:`FrequencyGrid` models that quantisation.  All frequencies are in Hz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.errors import ConfigurationError
from repro.common.units import MHZ
from repro.common.validation import ensure_positive


@dataclass(frozen=True)
class FrequencyGrid:
    """A quantised range of operating frequencies.

    Parameters
    ----------
    min_hz:
        Lowest selectable frequency (inclusive).  On Skylake client parts
        this is the 800 MHz "Pn-ish" floor of the core domain.
    max_hz:
        Highest selectable frequency (inclusive).
    step_hz:
        Bin size; 100 MHz for every SKU modelled in this library.
    """

    min_hz: float
    max_hz: float
    step_hz: float = 100 * MHZ

    def __post_init__(self) -> None:
        ensure_positive(self.min_hz, "min_hz")
        ensure_positive(self.max_hz, "max_hz")
        ensure_positive(self.step_hz, "step_hz")
        if self.max_hz < self.min_hz:
            raise ConfigurationError(
                f"max_hz ({self.max_hz}) must be >= min_hz ({self.min_hz})"
            )

    # -- quantisation ---------------------------------------------------------

    def floor(self, frequency_hz: float) -> float:
        """Quantise *frequency_hz* down to the nearest selectable bin.

        The result is clamped to the grid: anything below ``min_hz`` maps to
        ``min_hz`` and anything above ``max_hz`` maps to ``max_hz``.
        """
        if frequency_hz >= self.max_hz:
            return self.max_hz
        if frequency_hz <= self.min_hz:
            return self.min_hz
        bins = int((frequency_hz - self.min_hz) / self.step_hz + 1e-9)
        return self.min_hz + bins * self.step_hz

    def ceil(self, frequency_hz: float) -> float:
        """Quantise *frequency_hz* up to the nearest selectable bin (clamped)."""
        floored = self.floor(frequency_hz)
        if floored >= frequency_hz - 1e-9 or floored >= self.max_hz:
            return floored
        return min(self.max_hz, floored + self.step_hz)

    def clamp(self, frequency_hz: float) -> float:
        """Clamp *frequency_hz* into [min_hz, max_hz] without quantising."""
        return min(self.max_hz, max(self.min_hz, frequency_hz))

    def contains(self, frequency_hz: float) -> bool:
        """Return True when *frequency_hz* is (within tolerance) a grid point.

        ``max_hz`` always counts as selectable even when the span is not an
        exact multiple of the step (the top bin is clamped there).
        """
        if not self.min_hz - 1e-6 <= frequency_hz <= self.max_hz + 1e-6:
            return False
        if abs(frequency_hz - self.max_hz) <= 1e-6 * max(1.0, self.max_hz):
            return True
        offset = (frequency_hz - self.min_hz) / self.step_hz
        return abs(offset - round(offset)) < 1e-6

    # -- iteration ------------------------------------------------------------

    def points(self) -> List[float]:
        """Return every selectable frequency, ascending."""
        return list(self)

    def descending(self) -> List[float]:
        """Return every selectable frequency, descending.

        The firmware search loops in this library walk down from the highest
        bin, mirroring how turbo resolution works on the real part.
        """
        return list(reversed(self.points()))

    def __iter__(self) -> Iterator[float]:
        value = self.min_hz
        while value <= self.max_hz + 1e-6:
            yield min(value, self.max_hz)
            value += self.step_hz

    def __len__(self) -> int:
        return int((self.max_hz - self.min_hz) / self.step_hz + 1e-9) + 1

    def step_down(self, frequency_hz: float) -> float:
        """Return the next lower grid point, clamped at ``min_hz``."""
        return max(self.min_hz, self.floor(frequency_hz - self.step_hz))

    def step_up(self, frequency_hz: float) -> float:
        """Return the next higher grid point, clamped at ``max_hz``."""
        return min(self.max_hz, self.ceil(frequency_hz + self.step_hz))
