"""Shared utilities for the DarkGates reproduction library.

This package holds the small building blocks used across every other
subpackage: unit conversion helpers, physical constants, input validation,
frequency grids, and the library's exception hierarchy.
"""

from repro.common.errors import (
    CalibrationError,
    ConfigurationError,
    ConstraintViolation,
    ReproError,
    SimulationError,
)
from repro.common.grid import FrequencyGrid
from repro.common.units import (
    GHZ,
    KHZ,
    MHZ,
    MICRO,
    MILLI,
    NANO,
    PICO,
    celsius_to_kelvin,
    from_ghz,
    from_mhz,
    from_mohm,
    from_mv,
    kelvin_to_celsius,
    to_ghz,
    to_mhz,
    to_mohm,
    to_mv,
)
from repro.common.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ConstraintViolation",
    "SimulationError",
    "CalibrationError",
    "GHZ",
    "MHZ",
    "KHZ",
    "MILLI",
    "MICRO",
    "NANO",
    "PICO",
    "from_ghz",
    "from_mhz",
    "from_mv",
    "from_mohm",
    "to_ghz",
    "to_mhz",
    "to_mv",
    "to_mohm",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "FrequencyGrid",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in_range",
]
