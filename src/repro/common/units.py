"""Unit helpers.

The library stores every physical quantity internally in SI base units:
volts, amperes, ohms, henries, farads, hertz, watts, seconds and kelvin.
The paper, its figures, and processor datasheets quote values in scaled
units (millivolts, milliohms, megahertz, ...), so this module provides a
small set of explicit conversion helpers.  Explicit helpers are preferred
over ad-hoc ``* 1e-3`` literals scattered through the code because the
conversion direction is then obvious at the call site.
"""

from __future__ import annotations

# Scale factors ---------------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

_KELVIN_OFFSET = 273.15


# Frequency -------------------------------------------------------------------

def from_ghz(value_ghz: float) -> float:
    """Convert a frequency expressed in GHz to Hz."""
    return value_ghz * GHZ


def to_ghz(value_hz: float) -> float:
    """Convert a frequency expressed in Hz to GHz."""
    return value_hz / GHZ


def from_mhz(value_mhz: float) -> float:
    """Convert a frequency expressed in MHz to Hz."""
    return value_mhz * MHZ


def to_mhz(value_hz: float) -> float:
    """Convert a frequency expressed in Hz to MHz."""
    return value_hz / MHZ


# Voltage ---------------------------------------------------------------------

def from_mv(value_mv: float) -> float:
    """Convert a voltage expressed in millivolts to volts."""
    return value_mv * MILLI


def to_mv(value_v: float) -> float:
    """Convert a voltage expressed in volts to millivolts."""
    return value_v / MILLI


# Resistance ------------------------------------------------------------------

def from_mohm(value_mohm: float) -> float:
    """Convert a resistance expressed in milliohms to ohms."""
    return value_mohm * MILLI


def to_mohm(value_ohm: float) -> float:
    """Convert a resistance expressed in ohms to milliohms."""
    return value_ohm / MILLI


# Temperature -----------------------------------------------------------------

def celsius_to_kelvin(value_c: float) -> float:
    """Convert a temperature in degrees Celsius to kelvin."""
    return value_c + _KELVIN_OFFSET


def kelvin_to_celsius(value_k: float) -> float:
    """Convert a temperature in kelvin to degrees Celsius."""
    return value_k - _KELVIN_OFFSET
