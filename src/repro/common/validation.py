"""Input validation helpers.

The model classes in this library are configured with many numeric
parameters (resistances, capacitances, frequencies, power limits).  A bad
parameter usually produces a silently wrong figure rather than a crash,
so constructors validate their inputs eagerly with the helpers below and
raise :class:`~repro.common.errors.ConfigurationError` with a message that
names the offending parameter.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError


def ensure_positive(value: float, name: str) -> float:
    """Return *value* if it is a finite number strictly greater than zero."""
    _ensure_finite(value, name)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return *value* if it is a finite number greater than or equal to zero."""
    _ensure_finite(value, name)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_in_range(
    value: float, low: float, high: float, name: str
) -> float:
    """Return *value* if it lies in the inclusive range [*low*, *high*]."""
    _ensure_finite(value, name)
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low!r}, {high!r}], got {value!r}"
        )
    return value


def _ensure_finite(value: float, name: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
