"""Shared deprecation plumbing.

Every deprecated shim in the library warns through :func:`warn_deprecated`,
so the message format is uniform, the warning category is always
:class:`DeprecationWarning`, and the stacklevel lands on the *caller* of
the shim rather than the shim itself.  Tests assert these warnings
(``pytest.warns``), which makes the deprecations enforceable: a shim that
stops warning — or a caller inside the library that still uses one — fails
the suite instead of silently lingering.
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the library's standard deprecation warning.

    Parameters
    ----------
    old:
        The deprecated call, as the caller wrote it (e.g.
        ``"darkgates_system()"``).
    new:
        The replacement the caller should migrate to.
    stacklevel:
        Frames between this helper and the user's call site; the default of
        3 fits the usual shim -> helper nesting.
    """
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
