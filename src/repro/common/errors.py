"""Exception hierarchy for the DarkGates reproduction library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a model is constructed with inconsistent parameters.

    Examples include a SKU whose minimum frequency exceeds its maximum
    frequency, a package that references a voltage domain the die does not
    define, or a power-management policy given an empty frequency grid.
    """


class ConstraintViolation(ReproError):
    """Raised when an operating point violates a hard platform limit.

    Hard limits are the ones described in Section 2.4 of the paper: TDP,
    Tjmax, Vmax, Vmin, Iccmax (EDC), and thermal-design current (TDC).
    The power-management firmware normally clips operating points so this
    error signals a bug in a caller that bypassed the firmware.
    """

    def __init__(self, limit: str, requested: float, allowed: float) -> None:
        self.limit = limit
        self.requested = requested
        self.allowed = allowed
        super().__init__(
            f"{limit} violated: requested {requested:.6g}, allowed {allowed:.6g}"
        )


class SimulationError(ReproError):
    """Raised when a simulation cannot make forward progress.

    Typical causes are a singular PDN admittance matrix (floating node),
    a workload trace with zero duration, or a fixed-point power/thermal
    iteration that fails to converge.
    """


class CalibrationError(ReproError):
    """Raised when calibration targets cannot be met by the model."""


class StoreError(ReproError):
    """Raised when the persistent run store cannot honour a request.

    Typical causes are a manifest that fails validation, a result payload
    written by a newer schema than this library understands, or a value
    that cannot be JSON-encoded faithfully for persistence.
    """
