"""Vectorized die-population sampling.

:class:`DiePopulationSampler` draws N dice from a
:class:`~repro.variation.distributions.VariationModel` as plain numpy
arrays — one array per silicon knob — held by a :class:`DiePopulation`.
The population materialises in two interchangeable ways:

* ``population.specs(base_spec)`` — N frozen ``SystemSpec.variant()``s, one
  per die, each carrying its :class:`DieVariation`.  This is the *reference
  path*: every die builds its own firmware system and steps through the
  engine like any other spec.
* The raw arrays themselves — consumed by
  :meth:`repro.sim.dynamics.BatchedDynamicsSimulator.run_population`, which
  injects them straight into the batched (lockstep) dynamics state with no
  per-die Python objects.  This is the *fast path*.

Both paths funnel every knob through the same element-wise transforms, so a
given seed produces bit-identical trajectories either way.

Seeded draws are **block-based** for shard determinism: die *i* of a
seed-``s`` population is always drawn from the fixed-size sampling block
``i // SAMPLE_BLOCK_DICE``, whose generator derives from
``np.random.SeedSequence(entropy=s, spawn_key=(block,))``.  A die's knobs
therefore depend only on ``(seed, die index)`` — :meth:`sample_range` yields
bit-identical dice whether a shard is drawn alone or as part of the full
population, and a seed-``s`` population is a prefix of any larger seed-``s``
population.  This is the foundation of the streaming population engine
(:mod:`repro.variation.streaming`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive
from repro.variation.distributions import (
    NOMINAL_PARAMETERS,
    POSITIVE_PARAMETERS,
    VariationModel,
)

#: Dice per deterministic sampling block.  Seeded draws always generate
#: whole blocks (then slice), so the value is part of the sampling contract:
#: changing it changes which dice a seed yields.
SAMPLE_BLOCK_DICE = 1024


@dataclass(frozen=True)
class DieVariation:
    """The silicon knobs of one sampled die, relative to the nominal part.

    Parameters
    ----------
    leakage_scale:
        Multiplier on every leakage power term of the die.
    leakage_kt_delta_per_c:
        Additive shift of the exponential leakage temperature coefficient
        ``kt``.
    vf_offset_v:
        Additive shift of the silicon's V/F voltage requirement (a slow die
        needs more voltage per bin; a fast die less).
    vmin_offset_v:
        Additive shift of the die's minimum functional voltage (used by SKU
        binning).
    thermal_resistance_scale:
        Multiplier on the junction-to-ambient thermal resistance (die
        attach / TIM quality).
    powergate_resistance_scale:
        Multiplier on the power-gate on-resistance.  Only gated parts pay
        for it (as extra IR-drop guardband); bypassed parts are immune —
        one of the variability upsides of the DarkGates bypass.
    """

    leakage_scale: float = 1.0
    leakage_kt_delta_per_c: float = 0.0
    vf_offset_v: float = 0.0
    vmin_offset_v: float = 0.0
    thermal_resistance_scale: float = 1.0
    powergate_resistance_scale: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.leakage_scale, "leakage_scale")
        ensure_positive(self.thermal_resistance_scale, "thermal_resistance_scale")
        ensure_positive(
            self.powergate_resistance_scale, "powergate_resistance_scale"
        )

    @property
    def is_nominal(self) -> bool:
        """True when every knob sits at its nominal value."""
        return all(
            getattr(self, name) == nominal
            for name, nominal in NOMINAL_PARAMETERS.items()
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this die."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DieVariation":
        """Rebuild a die variation from a :meth:`to_dict` payload."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown DieVariation field(s) {sorted(unknown)} in payload"
            )
        return cls(**dict(data))


#: The nominal die: every knob at its reference value.
NOMINAL_DIE = DieVariation()


class DiePopulation:
    """N sampled dice held as one numpy array per silicon knob.

    Knobs absent from the sampled mapping sit at their nominal values.  The
    arrays are exposed read-only as attributes named like the
    :class:`DieVariation` fields (``population.leakage_scale`` and so on).

    Parameters
    ----------
    values:
        Knob name -> ``(count,)`` array of sampled values.
    seed:
        The seed the population was drawn with (``None`` when the caller
        supplied an external generator); recorded so any population run can
        be replayed exactly.
    """

    leakage_scale: np.ndarray
    leakage_kt_delta_per_c: np.ndarray
    vf_offset_v: np.ndarray
    vmin_offset_v: np.ndarray
    thermal_resistance_scale: np.ndarray
    powergate_resistance_scale: np.ndarray

    def __init__(
        self, values: Mapping[str, np.ndarray], seed: Optional[int] = None
    ) -> None:
        unknown = set(values) - set(NOMINAL_PARAMETERS)
        if unknown:
            raise ConfigurationError(
                f"unknown die parameter(s) {sorted(unknown)}; "
                f"known: {sorted(NOMINAL_PARAMETERS)}"
            )
        lengths = {len(np.asarray(column)) for column in values.values()}
        if len(lengths) != 1:
            raise ConfigurationError(
                "every sampled parameter column must have the same length"
            )
        (count,) = lengths
        if count < 1:
            raise ConfigurationError("a population needs at least one die")
        self._count = count
        self._seed = seed
        for name, nominal in NOMINAL_PARAMETERS.items():
            if name in values:
                column = np.asarray(values[name], dtype=float).copy()
            else:
                column = np.full(count, nominal, dtype=float)
            if name in POSITIVE_PARAMETERS and (column <= 0.0).any():
                raise ConfigurationError(
                    f"{name} must stay strictly positive; use a lognormal or "
                    f"bounded distribution"
                )
            column.flags.writeable = False
            setattr(self, name, column)

    # -- introspection -----------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of dice in the population."""
        return self._count

    @property
    def seed(self) -> Optional[int]:
        """Seed the population was drawn with (``None`` if externally fed)."""
        return self._seed

    def __len__(self) -> int:
        return self._count

    def column(self, parameter: str) -> np.ndarray:
        """The sampled values of one knob."""
        if parameter not in NOMINAL_PARAMETERS:
            raise ConfigurationError(
                f"unknown die parameter {parameter!r}; "
                f"known: {sorted(NOMINAL_PARAMETERS)}"
            )
        return getattr(self, parameter)

    # -- materialisation ---------------------------------------------------------------

    def die(self, index: int) -> DieVariation:
        """One die as a scalar :class:`DieVariation`."""
        if not 0 <= index < self._count:
            raise ConfigurationError(
                f"die index {index} out of range for {self._count} dice"
            )
        return DieVariation(
            **{
                name: float(getattr(self, name)[index])
                for name in NOMINAL_PARAMETERS
            }
        )

    def dice(self) -> Iterator[DieVariation]:
        """Iterate the population die by die."""
        return (self.die(index) for index in range(self._count))

    def slice(self, start: int, stop: int) -> "DiePopulation":
        """Dice ``[start, stop)`` as a new population (seed not carried).

        The slice's seed is unset on purpose: a sub-range is replayable via
        ``(parent seed, start, stop)`` — recording the parent seed alone
        would claim the slice equals a fresh ``sample(stop - start, seed)``.
        """
        if not 0 <= start < stop <= self._count:
            raise ConfigurationError(
                f"bad population slice [{start}, {stop}): indices must "
                f"satisfy 0 <= start < stop <= count ({self._count})"
            )
        return DiePopulation(
            {
                name: getattr(self, name)[start:stop]
                for name in NOMINAL_PARAMETERS
            }
        )

    def specs(self, base_spec: "Any") -> List["Any"]:
        """The reference-path materialisation: one spec variant per die.

        *base_spec* is a :class:`~repro.core.spec.SystemSpec`; each variant
        carries the die's :class:`DieVariation` and a die-stamped name so
        the variants stay distinct study-grid keys.
        """
        return [
            base_spec.variant(
                name=f"{base_spec.name}#die{index}", die_variation=self.die(index)
            )
            for index in range(self._count)
        ]


class DiePopulationSampler:
    """Draws seeded die populations from a variation model.

    Parameters
    ----------
    model:
        The declarative variation model to sample.
    """

    def __init__(self, model: VariationModel) -> None:
        self._model = model

    @property
    def model(self) -> VariationModel:
        """The variation model being sampled."""
        return self._model

    def sample(
        self,
        count: int,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> DiePopulation:
        """Draw *count* dice.

        Passing *seed* (the normal path) records it on the population so
        the draw can be replayed, and draws block-wise so the population is
        shard-stable: ``sample(count, seed)`` equals the concatenation of
        ``sample_range`` over any partition of ``[0, count)``.  Passing an
        explicit *rng* instead draws a single legacy stream and leaves the
        population's seed unset — that path is **not** shard-stable.
        """
        if rng is not None and seed is not None:
            raise ConfigurationError("pass either seed or rng, not both")
        if rng is None:
            if count < 1:
                raise ConfigurationError("count must be >= 1")
            return self.sample_range(0, count, seed=seed)
        return DiePopulation(self._model.draw(count, rng), seed=None)

    def sample_range(
        self, start: int, stop: int, seed: Optional[int]
    ) -> DiePopulation:
        """Draw dice ``[start, stop)`` of the seed-*seed* population.

        Bit-identical to slicing ``sample(n, seed)`` for any ``n >= stop``:
        each fixed-size block of :data:`SAMPLE_BLOCK_DICE` dice is drawn
        whole from its own spawned generator
        (``SeedSequence(entropy=seed, spawn_key=(block,))``) and sliced, so
        a die's knobs depend only on ``(seed, die index)``.  This is what
        lets streaming shards run anywhere — any process, any shard size —
        and still see exactly the dice of the monolithic draw.
        """
        if seed is None:
            # An unseeded population still pins a deterministic stream:
            # entropy draws would make shards of "the same" population
            # disagree across processes.
            seed = 0
        if start < 0 or stop <= start:
            raise ConfigurationError(
                f"bad die range [{start}, {stop}): need 0 <= start < stop"
            )
        first_block = start // SAMPLE_BLOCK_DICE
        last_block = (stop - 1) // SAMPLE_BLOCK_DICE
        blocks = [
            self._draw_block(int(seed), block)
            for block in range(first_block, last_block + 1)
        ]
        offset = first_block * SAMPLE_BLOCK_DICE
        values = {
            name: np.concatenate([block[name] for block in blocks])[
                start - offset : stop - offset
            ]
            for name in blocks[0]
        }
        return DiePopulation(values, seed=seed)

    def _draw_block(self, seed: int, block: int) -> Dict[str, np.ndarray]:
        """One whole sampling block (the unit of seeded determinism)."""
        sequence = np.random.SeedSequence(entropy=seed, spawn_key=(block,))
        rng = np.random.default_rng(sequence)
        return self._model.draw(SAMPLE_BLOCK_DICE, rng)
