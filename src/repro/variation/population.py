"""Population-scale studies: Monte Carlo sweeps over sampled die fleets.

:class:`PopulationStudy` crosses base system specs x TDP levels x dynamic
scenarios with a seeded die population and executes the grid through the
:mod:`repro.analysis.study` executor machinery:

* ``method="fast"`` (default) — each grid cell is **one** task that steps
  the whole population in lockstep through
  :meth:`~repro.sim.engine.SimulationEngine.run_population` (stacked
  parameter arrays, no per-die Python objects);
* ``method="reference"`` — each grid cell expands to one task **per die**,
  every die a full ``SystemSpec.variant(die_variation=...)`` build stepped
  through the ordinary engine.
* ``method="streaming"`` — each grid cell expands to one task per
  fixed-size **die shard** (``shard_size`` dice each); shards sample their
  own die range deterministically, condense into the bounded accumulators
  of :mod:`repro.variation.streaming`, and merge associatively — peak
  memory is O(shard), never O(population), so million-die studies fit.

Fast and reference produce identical numbers (the fast path is
bit-compatible with per-die stepping); streaming matches them exactly on
every discrete statistic (frequency percentile traces, limiting factors,
bin yields) and within a documented one-histogram-bin bound on continuous
ones.  The population benchmark and the equivalence tests assert all of
this.  Results condense into a :class:`PopulationResult`: percentile
traces, summary metrics, limiting-factor histograms, SKU-bin yields — all
JSON-round-tripping, with the seed recorded so any run can be replayed
exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.analysis.study import (
    CallableTask,
    Executor,
    Study,
    StudyTask,
    SweepRequest,
)
from repro.common.errors import ConfigurationError
from repro.core.spec import SystemSpec, build_engine, resolve_spec
from repro.pmu.dvfs import LimitingFactor
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    RESULT_SCHEMA_VERSION,
    DynamicRunResult,
    check_payload_schema,
)
from repro.variation.binning import (
    SCRAP_BIN,
    BinningPolicy,
    BinReport,
    die_metrics,
    skylake_binning_policy,
)
from repro.variation.distributions import VariationModel
from repro.variation.sampler import DiePopulation, DiePopulationSampler
from repro.variation.streaming import (
    ShardPlan,
    StreamingBinningResult,
    StreamingCellResult,
    merge_binning_shards,
    merge_cell_shards,
    run_binning_shard,
    run_cell_shard,
)
from repro.workloads.dynamics import DynamicScenario

#: Seed pinned when a :class:`PopulationStudy` is built with ``seed=None``.
#: Deliberately a constant, not OS entropy: every stochastic path must be
#: replayable from recorded inputs alone, and a magic per-process draw
#: would give "unseeded" runs distinct content-addressed run IDs on every
#: invocation.  Pass an explicit seed for statistically independent
#: populations.
UNSEEDED_DEFAULT_SEED = 0x5EED

#: Percentiles reported for every population trace.
TRACE_PERCENTILES: Tuple[float, ...] = (5.0, 50.0, 95.0)

_PERCENTILE_KEYS = tuple(f"p{int(p)}" for p in TRACE_PERCENTILES)


# -- study task functions (module-level so process pools can pickle them) --------------


def _run_fast_cell(
    spec: SystemSpec,
    scenario: DynamicScenario,
    variations: VariationModel,
    count: int,
    seed: Optional[int],
) -> "PopulationCellResult":
    """One fast-path grid cell: the whole population in lockstep."""
    population = DiePopulationSampler(variations).sample(count, seed=seed)
    traces = build_engine(spec).run_population(scenario, population)
    return _cell_from_matrices(
        spec=spec,
        scenario_name=scenario.name,
        time_step_s=traces.time_step_s,
        pl1_w=traces.pl1_w,
        pl2_w=traces.pl2_w,
        times_s=traces.times_s,
        frequencies_hz=traces.frequencies_hz,
        package_powers_w=traces.package_powers_w,
        temperatures_c=traces.temperatures_c,
        limiting_names=traces.limiting_factor_names(),
        cstate_names=tuple(traces.package_cstate_names()),
    )


def _run_reference_die(spec: SystemSpec, scenario: DynamicScenario) -> DynamicRunResult:
    """One reference-path task: one sampled die through the ordinary engine.

    Engines are built fresh (not through the shared ``build_engine`` cache):
    every die is a distinct system, so caching would only hoard memory.
    """
    return SimulationEngine(spec.build()).run(scenario)


# -- result condensation ---------------------------------------------------------------


def _cell_from_matrices(
    spec: SystemSpec,
    scenario_name: str,
    time_step_s: float,
    pl1_w: float,
    pl2_w: float,
    times_s: np.ndarray,
    frequencies_hz: np.ndarray,
    package_powers_w: np.ndarray,
    temperatures_c: np.ndarray,
    limiting_names: np.ndarray,
    cstate_names: Tuple[str, ...],
) -> "PopulationCellResult":
    """Condense ``(steps, dice)`` trace matrices into one cell result.

    Shared verbatim by the fast and reference paths — both hand identical
    matrices here, so the condensed cells compare equal.  Matrices are
    forced C-contiguous first: numpy's pairwise reductions depend on the
    memory layout, and the reference path arrives transposed.
    """
    frequencies_hz = np.ascontiguousarray(frequencies_hz)
    package_powers_w = np.ascontiguousarray(package_powers_w)
    temperatures_c = np.ascontiguousarray(temperatures_c)

    def percentiles(matrix: np.ndarray) -> Dict[str, Tuple[float, ...]]:
        values = np.percentile(matrix, TRACE_PERCENTILES, axis=1)
        return {
            key: tuple(values[row].tolist())
            for row, key in enumerate(_PERCENTILE_KEYS)
        }

    active_rows = np.flatnonzero((frequencies_hz > 0.0).any(axis=1))
    if len(active_rows):
        tail = active_rows[-max(1, len(active_rows) // 10) :]
        sustained = frequencies_hz[tail].mean(axis=0)
        final_limiting = tuple(limiting_names[active_rows[-1]].tolist())
        flat = limiting_names[active_rows].ravel()
        names, counts = np.unique(flat, return_counts=True)
        histogram = {
            str(name): float(count / flat.size)
            for name, count in zip(names, counts)
        }
    else:
        sustained = np.zeros(frequencies_hz.shape[1])
        final_limiting = tuple(
            LimitingFactor.NONE.value for _ in range(frequencies_hz.shape[1])
        )
        histogram = {}
    return PopulationCellResult(
        spec=spec,
        scenario_name=scenario_name,
        time_step_s=time_step_s,
        pl1_w=pl1_w,
        pl2_w=pl2_w,
        times_s=tuple(np.asarray(times_s).tolist()),
        frequency_percentiles_hz=percentiles(frequencies_hz),
        power_percentiles_w=percentiles(package_powers_w),
        temperature_percentiles_c=percentiles(temperatures_c),
        limiting_histogram=histogram,
        sustained_frequency_hz=tuple(sustained.tolist()),
        average_power_w=tuple(package_powers_w.mean(axis=0).tolist()),
        peak_temperature_c=tuple(temperatures_c.max(axis=0).tolist()),
        final_limiting=final_limiting,
        package_cstates=cstate_names,
    )


def _cell_from_run_results(
    spec: SystemSpec,
    scenario: DynamicScenario,
    results: Sequence[DynamicRunResult],
) -> "PopulationCellResult":
    """Condense per-die reference results into the same cell shape."""
    first = results[0]
    limiting = np.array(
        [result.limiting_factors for result in results], dtype=object
    ).T
    return _cell_from_matrices(
        spec=spec,
        scenario_name=scenario.name,
        time_step_s=first.time_step_s,
        pl1_w=first.pl1_w,
        pl2_w=first.pl2_w,
        times_s=np.array(first.times_s),
        frequencies_hz=np.array([r.frequencies_hz for r in results]).T,
        package_powers_w=np.array([r.package_powers_w for r in results]).T,
        temperatures_c=np.array([r.temperatures_c for r in results]).T,
        limiting_names=limiting,
        cstate_names=first.package_cstates,
    )


# -- result types ----------------------------------------------------------------------


@dataclass(frozen=True)
class PopulationCellResult:
    """Population summary of one (spec variant, scenario) grid cell.

    Percentile traces are per-step quantiles across the dice; the per-die
    tuples (sustained frequency, average power, peak temperature, final
    limiting factor) keep die index order, so they join against the
    population's bin assignments.
    """

    spec: SystemSpec
    scenario_name: str
    time_step_s: float
    pl1_w: float
    pl2_w: float
    times_s: Tuple[float, ...]
    frequency_percentiles_hz: Dict[str, Tuple[float, ...]]
    power_percentiles_w: Dict[str, Tuple[float, ...]]
    temperature_percentiles_c: Dict[str, Tuple[float, ...]]
    limiting_histogram: Dict[str, float]
    sustained_frequency_hz: Tuple[float, ...]
    average_power_w: Tuple[float, ...]
    peak_temperature_c: Tuple[float, ...]
    final_limiting: Tuple[str, ...]
    package_cstates: Tuple[str, ...]

    @property
    def count(self) -> int:
        """Number of dice summarised."""
        return len(self.sustained_frequency_hz)

    def sustained_quantiles_ghz(
        self, quantiles: Sequence[float] = (5.0, 50.0, 95.0)
    ) -> Tuple[float, ...]:
        """Quantiles of the per-die sustained frequency, in GHz."""
        values = np.percentile(
            np.array(self.sustained_frequency_hz), list(quantiles)
        )
        return tuple(float(v) / 1e9 for v in values)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this cell."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "scenario_name": self.scenario_name,
            "time_step_s": self.time_step_s,
            "pl1_w": self.pl1_w,
            "pl2_w": self.pl2_w,
            "times_s": list(self.times_s),
            "frequency_percentiles_hz": {
                key: list(trace)
                for key, trace in self.frequency_percentiles_hz.items()
            },
            "power_percentiles_w": {
                key: list(trace) for key, trace in self.power_percentiles_w.items()
            },
            "temperature_percentiles_c": {
                key: list(trace)
                for key, trace in self.temperature_percentiles_c.items()
            },
            "limiting_histogram": dict(self.limiting_histogram),
            "sustained_frequency_hz": list(self.sustained_frequency_hz),
            "average_power_w": list(self.average_power_w),
            "peak_temperature_c": list(self.peak_temperature_c),
            "final_limiting": list(self.final_limiting),
            "package_cstates": list(self.package_cstates),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PopulationCellResult":
        """Rebuild a cell from a :meth:`to_dict` payload."""
        check_payload_schema(dict(data), "population cell")
        return cls(
            spec=SystemSpec.from_dict(data["spec"]),
            scenario_name=data["scenario_name"],
            time_step_s=data["time_step_s"],
            pl1_w=data["pl1_w"],
            pl2_w=data["pl2_w"],
            times_s=tuple(data["times_s"]),
            frequency_percentiles_hz={
                key: tuple(trace)
                for key, trace in data["frequency_percentiles_hz"].items()
            },
            power_percentiles_w={
                key: tuple(trace)
                for key, trace in data["power_percentiles_w"].items()
            },
            temperature_percentiles_c={
                key: tuple(trace)
                for key, trace in data["temperature_percentiles_c"].items()
            },
            limiting_histogram=dict(data["limiting_histogram"]),
            sustained_frequency_hz=tuple(data["sustained_frequency_hz"]),
            average_power_w=tuple(data["average_power_w"]),
            peak_temperature_c=tuple(data["peak_temperature_c"]),
            final_limiting=tuple(data["final_limiting"]),
            package_cstates=tuple(data["package_cstates"]),
        )


@dataclass(frozen=True)
class SpecBinningResult:
    """SKU binning of the population measured on one base spec's design."""

    spec_name: str
    assignments: Tuple[int, ...]
    report: BinReport

    @property
    def yield_fractions(self) -> Dict[str, float]:
        """Yield fraction per bin — the interface shared with streaming."""
        return dict(self.report.yield_fractions)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this binning."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "spec_name": self.spec_name,
            "assignments": list(self.assignments),
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpecBinningResult":
        """Rebuild a binning result from a :meth:`to_dict` payload."""
        check_payload_schema(dict(data), "spec binning")
        return cls(
            spec_name=data["spec_name"],
            assignments=tuple(int(a) for a in data["assignments"]),
            report=BinReport.from_dict(data["report"]),
        )


@dataclass(frozen=True)
class PopulationResult:
    """The completed grid of a population study.

    Everything needed to replay the run rides along: the variation model,
    the seed, the die count, the method and (for streaming runs) the shard
    size.  Cells are addressable by (spec variant, scenario name); binning
    is per *base* spec (the design the dice were measured on).  In-memory
    runs carry :class:`PopulationCellResult` / :class:`SpecBinningResult`
    entries with per-die tuples; streaming runs carry the bounded
    :class:`~repro.variation.streaming.StreamingCellResult` /
    :class:`~repro.variation.streaming.StreamingBinningResult` shapes.
    """

    name: str
    seed: Optional[int]
    count: int
    method: str
    variations: VariationModel
    binning_policy: BinningPolicy
    cells: Tuple[Union[PopulationCellResult, StreamingCellResult], ...]
    binning: Tuple[Union[SpecBinningResult, StreamingBinningResult], ...]
    shard_size: Optional[int] = None

    # -- lookup ------------------------------------------------------------------------

    def cell(
        self, spec: Union[SystemSpec, str], scenario: Union[DynamicScenario, str]
    ) -> Union[PopulationCellResult, StreamingCellResult]:
        """The cell of one (spec variant, scenario) pair.

        *spec* may be the expanded variant, its label (``"name@45W"``), or
        a plain spec name when only one TDP level was swept.
        """
        scenario_name = scenario if isinstance(scenario, str) else scenario.name
        for candidate in self.cells:
            if candidate.scenario_name != scenario_name:
                continue
            if isinstance(spec, SystemSpec):
                if candidate.spec == spec:
                    return candidate
            elif spec in (candidate.spec.label, candidate.spec.name):
                return candidate
        raise ConfigurationError(
            f"population study {self.name!r} has no cell "
            f"({spec!r}, {scenario_name!r})"
        )

    def spec_binning(
        self, spec_name: str
    ) -> Union[SpecBinningResult, StreamingBinningResult]:
        """Binning of the population measured on one base spec."""
        for candidate in self.binning:
            if candidate.spec_name == spec_name:
                return candidate
        raise ConfigurationError(
            f"population study {self.name!r} has no binning for "
            f"{spec_name!r}; known: {[b.spec_name for b in self.binning]}"
        )

    def bin_yields(self, spec_name: str) -> Dict[str, float]:
        """Yield fraction per bin (including scrap) on one base spec."""
        return dict(self.spec_binning(spec_name).yield_fractions)

    def sustained_by_bin(
        self,
        cell: Union[PopulationCellResult, StreamingCellResult],
        spec_name: str,
        quantiles: Sequence[float] = (5.0, 95.0),
    ) -> Dict[str, Tuple[float, ...]]:
        """Per-bin quantiles of sustained frequency (GHz) for one cell.

        In-memory cells join their per-die sustained frequencies against
        the bin assignments of *spec_name*'s binning; streaming cells carry
        per-bin accumulators built from the same (TDP-invariant) bin
        assignments at condense time.  Empty bins are omitted either way.
        """
        if isinstance(cell, StreamingCellResult):
            return cell.sustained_by_bin_ghz(quantiles)
        binning = self.spec_binning(spec_name)
        if not isinstance(binning, SpecBinningResult):
            raise ConfigurationError(
                "in-memory cells need per-die bin assignments, but "
                f"{spec_name!r} carries a streaming binning result"
            )
        assignments = np.array(binning.assignments)
        sustained = np.array(cell.sustained_frequency_hz)
        names = (*binning.report.bin_names, SCRAP_BIN)
        out: Dict[str, Tuple[float, ...]] = {}
        for index, bin_name in enumerate(names):
            selector = -1 if bin_name == SCRAP_BIN else index
            members = assignments == selector
            if members.any():
                values = np.percentile(sustained[members], list(quantiles))
                out[bin_name] = tuple(float(v) / 1e9 for v in values)
        return out

    # -- serialisation -----------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise this result to a JSON document."""
        payload = {
            "name": self.name,
            "schema_version": RESULT_SCHEMA_VERSION,
            "seed": self.seed,
            "count": self.count,
            "method": self.method,
            "shard_size": self.shard_size,
            "variations": self.variations.to_dict(),
            "binning_policy": self.binning_policy.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
            "binning": [binning.to_dict() for binning in self.binning],
        }
        return json.dumps(
            payload, indent=indent, sort_keys=True, allow_nan=False
        )

    @classmethod
    def from_json(cls, text: str) -> "PopulationResult":
        """Rebuild a population result from :meth:`to_json` output."""
        payload = json.loads(text)
        check_payload_schema(payload, "population result")

        def load_cell(
            entry: Mapping[str, Any]
        ) -> Union[PopulationCellResult, StreamingCellResult]:
            if entry.get("kind") == "streaming_cell":
                return StreamingCellResult.from_dict(entry)
            return PopulationCellResult.from_dict(entry)

        def load_binning(
            entry: Mapping[str, Any]
        ) -> Union[SpecBinningResult, StreamingBinningResult]:
            if entry.get("kind") == "streaming_binning":
                return StreamingBinningResult.from_dict(entry)
            return SpecBinningResult.from_dict(entry)

        shard_size = payload.get("shard_size")
        return cls(
            name=payload["name"],
            seed=payload["seed"],
            count=payload["count"],
            method=payload["method"],
            variations=VariationModel.from_dict(payload["variations"]),
            binning_policy=BinningPolicy.from_dict(payload["binning_policy"]),
            cells=tuple(load_cell(cell) for cell in payload["cells"]),
            binning=tuple(load_binning(entry) for entry in payload["binning"]),
            shard_size=None if shard_size is None else int(shard_size),
        )


# -- the study runner ------------------------------------------------------------------


class PopulationStudy:
    """A Monte Carlo sweep: specs x TDP levels x scenarios x N sampled dice.

    Parameters
    ----------
    specs:
        Base system specs (or registered names) — the designs the dice are
        dropped into.  Must be nominal (no ``die_variation``).
    scenarios:
        Dynamic scenarios every die steps through.
    variations:
        The process-variation model to sample.
    count:
        Population size (dice).
    tdp_levels_w:
        Optional TDP sweep; every spec expands to one variant per level.
    seed:
        RNG seed; recorded in the result so the run can be replayed.
        ``None`` draws one fresh seed up front — every grid cell, the
        binning pass and the reference path still share that one draw (the
        population must be the *same* dice everywhere), and the drawn seed
        is recorded like an explicit one.
    binning:
        SKU binning policy; defaults to
        :func:`~repro.variation.binning.skylake_binning_policy`.
    method:
        ``"fast"`` (lockstep population per cell, default),
        ``"reference"`` (one engine task per die), or ``"streaming"``
        (one bounded-memory task per die shard; needs *shard_size*).
    shard_size:
        Dice per shard for ``method="streaming"``.  Validated up front:
        shard-infeasible configurations (``shard_size < 1``,
        ``shard_size > count``, empty populations) raise
        :class:`~repro.common.errors.ConfigurationError` with actionable
        messages.  Forbidden for the in-memory methods.
    executor:
        Study executor the tasks run through (``"serial"``, ``"process"``,
        or an executor object).
    max_workers:
        Pool size when *executor* is ``"process"``.
    cache:
        Optional task-result cache (typically a
        :class:`~repro.store.cache.StoreCache`) shared with the inner grid
        study, so population runs land in the persistent store and warm
        re-runs execute zero tasks.
    name:
        Study name used in reports.
    """

    METHODS = ("fast", "reference", "streaming")

    def __init__(
        self,
        specs: Sequence[Union[SystemSpec, str]],
        scenarios: Sequence[DynamicScenario],
        variations: VariationModel,
        count: int,
        *,
        tdp_levels_w: Optional[Sequence[float]] = None,
        seed: Optional[int] = 0,
        binning: Optional[BinningPolicy] = None,
        method: str = "fast",
        shard_size: Optional[int] = None,
        executor: Union[str, Executor] = "serial",
        max_workers: Optional[int] = None,
        cache: Optional[MutableMapping[StudyTask, Any]] = None,
        name: str = "population-study",
        request: Optional[SweepRequest] = None,
    ) -> None:
        if request is not None:
            # The unified sweep-request path (Study.over_population); the
            # individual execution keywords keep working for direct use.
            executor = request.executor
            max_workers = request.max_workers
            cache = request.cache
            seed = request.seed
            name = request.name
        else:
            SweepRequest(
                executor=executor,
                max_workers=max_workers,
                cache=cache,
                seed=seed,
                name=name,
            ).validate("PopulationStudy")
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        if method not in self.METHODS:
            raise ConfigurationError(
                f"unknown population method {method!r}; known: {list(self.METHODS)}"
            )
        if method == "streaming":
            if shard_size is None:
                raise ConfigurationError(
                    "method='streaming' needs a shard_size (dice per shard; "
                    "4096 is a good default)"
                )
            # ShardPlan owns the actionable shard-feasibility errors.
            ShardPlan(count=count, shard_size=int(shard_size))
            shard_size = int(shard_size)
        elif shard_size is not None:
            raise ConfigurationError(
                f"shard_size only applies to method='streaming' "
                f"(got shard_size={shard_size} with method={method!r}); "
                "drop it or switch methods"
            )
        self._base_specs = tuple(resolve_spec(spec) for spec in specs)
        if not self._base_specs:
            raise ConfigurationError("a population study needs at least one spec")
        for spec in self._base_specs:
            if spec.die_variation is not None:
                raise ConfigurationError(
                    f"base spec {spec.name!r} already carries a die variation; "
                    "population studies vary nominal specs"
                )
        self._scenarios = tuple(scenarios)
        if not self._scenarios:
            raise ConfigurationError(
                "a population study needs at least one scenario"
            )
        self._variations = variations
        self._count = count
        # Cell tasks re-draw the population from the seed (they must be
        # pure and picklable), so an unseeded study pins one seed up front
        # — otherwise every cell would sample different dice.  The pinned
        # seed is the documented default rather than OS entropy: an
        # "unseeded" run is then replayable by construction (same dice in
        # every process, same content-addressed run IDs), and a caller who
        # wants fresh dice passes a seed of their own choosing.
        if seed is None:
            seed = UNSEEDED_DEFAULT_SEED
        self._seed = int(seed)
        self._binning = binning if binning is not None else skylake_binning_policy()
        self._method = method
        self._shard_size = shard_size
        self._executor = executor
        self._max_workers = max_workers
        self._cache = cache
        self._name = name
        self._tasks_total = 0
        self._tasks_executed = 0
        if tdp_levels_w is None:
            self._cell_specs = self._base_specs
            self._cell_base_specs = self._base_specs
        else:
            expanded = [
                (spec.variant(tdp_w=tdp), spec)
                for tdp in tdp_levels_w
                for spec in self._base_specs
            ]
            self._cell_specs = tuple(cell for cell, _ in expanded)
            self._cell_base_specs = tuple(base for _, base in expanded)

    # -- introspection -----------------------------------------------------------------

    @property
    def name(self) -> str:
        """Study name."""
        return self._name

    @property
    def seed(self) -> int:
        """The seed threaded through every stochastic path of this study."""
        return self._seed

    @property
    def count(self) -> int:
        """Population size."""
        return self._count

    @property
    def method(self) -> str:
        """Execution method (``"fast"``, ``"reference"`` or ``"streaming"``)."""
        return self._method

    @property
    def shard_size(self) -> Optional[int]:
        """Dice per shard (``None`` for the in-memory methods)."""
        return self._shard_size

    @property
    def tasks_total(self) -> int:
        """Grid tasks of the last :meth:`run` (0 before any run)."""
        return self._tasks_total

    @property
    def tasks_executed(self) -> int:
        """Cache-miss tasks of the last :meth:`run` (0 before any run)."""
        return self._tasks_executed

    @property
    def cell_specs(self) -> Tuple[SystemSpec, ...]:
        """The (TDP-expanded) spec axis of the grid."""
        return self._cell_specs

    def sample(self) -> DiePopulation:
        """The study's population (deterministic in the seed)."""
        return DiePopulationSampler(self._variations).sample(
            self._count, seed=self._seed
        )

    # -- execution ---------------------------------------------------------------------

    def run(self) -> PopulationResult:
        """Execute the grid and return the condensed population result."""
        if self._method == "streaming":
            return self._run_streaming()
        population = self.sample()
        tasks: List[CallableTask] = []
        if self._method == "fast":
            for spec in self._cell_specs:
                for scenario in self._scenarios:
                    tasks.append(
                        CallableTask(
                            key=f"{spec.label}/{scenario.name}",
                            fn=_run_fast_cell,
                            args=(
                                spec, scenario, self._variations, self._count,
                                self._seed,
                            ),
                        )
                    )
        else:
            die_specs = {
                spec: population.specs(spec) for spec in self._cell_specs
            }
            for spec in self._cell_specs:
                for scenario in self._scenarios:
                    for index, die_spec in enumerate(die_specs[spec]):
                        tasks.append(
                            CallableTask(
                                key=f"{spec.label}/{scenario.name}/die{index}",
                                fn=_run_reference_die,
                                args=(die_spec, scenario),
                            )
                        )
        grid = self._run_grid(tasks)
        cells: List[Union[PopulationCellResult, StreamingCellResult]] = []
        for spec in self._cell_specs:
            for scenario in self._scenarios:
                if self._method == "fast":
                    cells.append(grid.task(f"{spec.label}/{scenario.name}"))
                else:
                    results = [
                        grid.task(f"{spec.label}/{scenario.name}/die{index}")
                        for index in range(self._count)
                    ]
                    cells.append(
                        _cell_from_run_results(spec, scenario, results)
                    )
        binning = tuple(
            self._bin_population(spec, population) for spec in self._base_specs
        )
        return PopulationResult(
            name=self._name,
            seed=self._seed,
            count=self._count,
            method=self._method,
            variations=self._variations,
            binning_policy=self._binning,
            cells=tuple(cells),
            binning=binning,
        )

    def _run_grid(self, tasks: Sequence[CallableTask]) -> Any:
        """Run the grid tasks through the executor (store-cached if given)."""
        study = Study(
            tasks=list(tasks),
            request=SweepRequest(
                executor=self._executor,
                max_workers=self._max_workers,
                cache=self._cache,
                seed=self._seed,
                name=f"{self._name}-grid",
            ),
        )
        grid = study.run()
        self._tasks_total = len(study)
        self._tasks_executed = study.tasks_executed
        return grid

    def _run_streaming(self) -> PopulationResult:
        """The streaming path: one bounded task per (cell, shard).

        Never materialises the full population — each shard task samples
        only its own die range, and the merged accumulators stay O(shard
        x trace length), so the peak footprint is independent of
        ``count``.
        """
        assert self._shard_size is not None  # validated in __init__
        plan = ShardPlan(count=self._count, shard_size=self._shard_size)
        tasks: List[CallableTask] = []
        for spec, base_spec in zip(self._cell_specs, self._cell_base_specs):
            for scenario in self._scenarios:
                for shard in range(plan.n_shards):
                    tasks.append(
                        CallableTask(
                            key=f"{spec.label}/{scenario.name}/shard{shard}",
                            fn=run_cell_shard,
                            args=(
                                spec, scenario, self._variations, self._count,
                                self._seed, shard, self._shard_size,
                                self._binning, base_spec,
                            ),
                        )
                    )
        for spec in self._base_specs:
            for shard in range(plan.n_shards):
                tasks.append(
                    CallableTask(
                        key=f"binning/{spec.name}/shard{shard}",
                        fn=run_binning_shard,
                        args=(
                            spec, self._variations, self._count, self._seed,
                            shard, self._shard_size, self._binning,
                        ),
                    )
                )
        grid = self._run_grid(tasks)
        cells: List[Union[PopulationCellResult, StreamingCellResult]] = []
        for spec in self._cell_specs:
            for scenario in self._scenarios:
                shards = [
                    grid.task(f"{spec.label}/{scenario.name}/shard{shard}")
                    for shard in range(plan.n_shards)
                ]
                cells.append(
                    merge_cell_shards(shards).finalize(self._shard_size)
                )
        binning = tuple(
            merge_binning_shards(
                spec.name,
                [
                    grid.task(f"binning/{spec.name}/shard{shard}")
                    for shard in range(plan.n_shards)
                ],
                self._count,
            )
            for spec in self._base_specs
        )
        return PopulationResult(
            name=self._name,
            seed=self._seed,
            count=self._count,
            method=self._method,
            variations=self._variations,
            binning_policy=self._binning,
            cells=tuple(cells),
            binning=binning,
            shard_size=self._shard_size,
        )

    def _bin_population(
        self, spec: SystemSpec, population: DiePopulation
    ) -> SpecBinningResult:
        metrics = die_metrics(build_engine(spec).pcode, population)
        assignments = self._binning.assign(metrics)
        return SpecBinningResult(
            spec_name=spec.name,
            assignments=tuple(int(a) for a in assignments),
            report=self._binning.report(metrics, assignments),
        )
