"""Process-variation Monte Carlo substrate.

Real silicon is not the nominal die the rest of the library models: leakage,
V/F requirement, Vmin, thermal interface quality and power-gate resistance
all vary die to die, so the paper's bypass-versus-gated verdict at each TDP
level is really a statement about a *population* of parts.  This package
turns the repo's single-die models into population-scale studies:

* :mod:`repro.variation.distributions` — declarative, frozen
  :class:`ParameterVariation` specs over the named silicon knobs, optionally
  correlated through a small Cholesky covariance helper, collected into a
  :class:`VariationModel`.
* :mod:`repro.variation.sampler` — :class:`DiePopulationSampler` draws N
  dice as numpy arrays from a seeded :class:`numpy.random.Generator` and
  materialises them either as N ``SystemSpec.variant()``s (the per-die
  reference path) or as stacked parameter arrays injected straight into the
  batched dynamics engine (the fast path — no per-die Python objects).
* :mod:`repro.variation.binning` — SKU binning rules (frequency / leakage /
  Vmin cutoffs mapped onto the parts of :mod:`repro.soc.skus`) producing
  yield fractions, bin populations and per-bin quantile metrics.
* :mod:`repro.variation.population` — :class:`PopulationStudy` /
  ``Study.over_population``: population x scenario x TDP sweeps through the
  study executor machinery, summarised as a JSON-round-tripping
  :class:`PopulationResult`.
* :mod:`repro.variation.streaming` — the sharded million-die engine:
  deterministic fixed-size die shards (bit-identical alone or inside the
  full population) condensed into mergeable online accumulators — exact
  frequency/limiting/yield statistics, one-histogram-bin-bounded continuous
  quantiles — so population studies run in O(shard), not O(population),
  memory.

``population`` and ``streaming`` are imported lazily (module
``__getattr__``) because they sit above :mod:`repro.analysis.study` /
:mod:`repro.sim` in the import graph, which themselves import this
package's sampler.
"""

from typing import Tuple

from repro.variation.binning import (
    BinReport,
    BinningPolicy,
    DieMetrics,
    SkuBin,
    die_metrics,
    skylake_binning_policy,
)
from repro.variation.distributions import (
    ParameterVariation,
    VariationModel,
    cholesky_factor,
    skylake_process_variation,
)
from repro.variation.sampler import (
    NOMINAL_DIE,
    DiePopulation,
    DiePopulationSampler,
    DieVariation,
)

#: Names resolved lazily from :mod:`repro.variation.population`.
_POPULATION_EXPORTS: Tuple[str, ...] = (
    "PopulationStudy",
    "PopulationResult",
    "PopulationCellResult",
    "SpecBinningResult",
)

#: Names resolved lazily from :mod:`repro.variation.streaming`.
_STREAMING_EXPORTS: Tuple[str, ...] = (
    "ShardPlan",
    "HistogramSpec",
    "ScalarAccumulator",
    "ScalarSummary",
    "StreamingCellShard",
    "StreamingCellResult",
    "StreamingBinningResult",
    "condense_population_traces",
    "merge_cell_shards",
    "weighted_percentile",
)


def __getattr__(name: str):
    if name in _POPULATION_EXPORTS:
        from repro.variation import population

        return getattr(population, name)
    if name in _STREAMING_EXPORTS:
        from repro.variation import streaming

        return getattr(streaming, name)
    raise AttributeError(  # repro-lint: disable=RPR005 -- PEP 562 module __getattr__ protocol requires AttributeError
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "ParameterVariation",
    "VariationModel",
    "cholesky_factor",
    "skylake_process_variation",
    "DieVariation",
    "NOMINAL_DIE",
    "DiePopulation",
    "DiePopulationSampler",
    "BinningPolicy",
    "SkuBin",
    "BinReport",
    "DieMetrics",
    "die_metrics",
    "skylake_binning_policy",
    "PopulationStudy",
    "PopulationResult",
    "PopulationCellResult",
    "SpecBinningResult",
    "ShardPlan",
    "HistogramSpec",
    "ScalarAccumulator",
    "ScalarSummary",
    "StreamingCellShard",
    "StreamingCellResult",
    "StreamingBinningResult",
    "condense_population_traces",
    "merge_cell_shards",
    "weighted_percentile",
]
