"""SKU binning: sorting a die population into sellable parts.

After manufacturing, every die is tested and *binned*: fast, low-leakage
dice become the premium SKU, slower dice the mainstream part, and dice that
miss every cutoff are scrapped.  This module reproduces that flow on a
sampled :class:`~repro.variation.sampler.DiePopulation`:

* :func:`die_metrics` derives the three classic test metrics per die —
  Vmax-limited single-core Fmax, reference-point leakage, and Vmin — as
  vectorized arrays from a nominal system plus the population's knobs;
* :class:`BinningPolicy` applies an ordered list of :class:`SkuBin` cutoff
  rules (first match wins, leftovers are scrap), which makes the assignment
  a *partition* by construction: every die lands in exactly one bin or in
  scrap;
* :meth:`BinningPolicy.report` summarises counts, yield fractions and
  per-bin metric quantiles as a JSON-round-tripping :class:`BinReport`.

Bins reference the datasheet registry of :mod:`repro.soc.skus`
(:data:`~repro.soc.skus.SKU_DESCRIPTIONS`), so a bin is not just a label —
it is one of the paper's evaluated parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.pmu.dvfs import CpuDemand, die_voltage_offsets
from repro.pmu.pcode import Pcode
from repro.soc.skus import SKU_DESCRIPTIONS
from repro.variation.sampler import DiePopulation

#: Pseudo-bin name for dice that miss every cutoff.
SCRAP_BIN = "scrap"

#: Metric quantiles reported per bin.
_QUANTILES = (5.0, 50.0, 95.0)


@dataclass(frozen=True)
class DieMetrics:
    """Per-die test metrics of a population (arrays of equal length)."""

    fmax_hz: np.ndarray
    leakage_w: np.ndarray
    vmin_v: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.fmax_hz) == len(self.leakage_w) == len(self.vmin_v)):
            raise ConfigurationError("metric columns must have equal lengths")

    @property
    def count(self) -> int:
        """Number of dice measured."""
        return len(self.fmax_hz)

    def as_mapping(self) -> Dict[str, np.ndarray]:
        """Metric name -> column, for quantile reporting."""
        return {
            "fmax_hz": self.fmax_hz,
            "leakage_w": self.leakage_w,
            "vmin_v": self.vmin_v,
        }


def die_metrics(
    pcode: Pcode,
    population: DiePopulation,
    demand: Optional[CpuDemand] = None,
) -> DieMetrics:
    """Vectorized test metrics of *population* measured on *pcode*'s design.

    *pcode* must be the nominal system (it supplies the nominal candidate
    table the per-die voltage offsets perturb); *demand* defaults to the
    single-core virus-free demand classic speed binning uses.  Fmax is the
    highest grid bin whose shifted VR voltage clears Vmax (0 Hz when a die
    clears none — scrap material); leakage is the die's reference-point
    leakage; Vmin is the die's shifted minimum functional voltage.
    """
    if pcode.die_variation is not None:
        raise ConfigurationError(
            "die_metrics needs the nominal system; per-die variation comes "
            "from the population"
        )
    resolved = demand if demand is not None else CpuDemand(active_cores=1)
    table = pcode.dvfs_policy.candidate_table(resolved)
    processor = pcode.processor
    vr_offset, _ = die_voltage_offsets(
        population.vf_offset_v,
        population.powergate_resistance_scale,
        processor.die.cores[0].power_gate.on_resistance_ohm,
        pcode.bypass_mode,
    )
    feasible = (
        (table.vr_voltages_v + np.asarray(vr_offset)[:, None])
        <= table.vmax_v + 1e-9
    ) & table.iccmax_ok
    bins = feasible.shape[1]
    top = bins - 1 - np.argmax(feasible[:, ::-1], axis=1)
    fmax = np.where(feasible.any(axis=1), table.frequencies_hz[top], 0.0)
    reference_leakage = sum(
        core.leakage.base_power_w(core.leakage.reference_voltage_v)
        for core in processor.die.cores
    )
    return DieMetrics(
        fmax_hz=fmax,
        leakage_w=reference_leakage * population.leakage_scale,
        vmin_v=processor.die.vmin_v + population.vmin_offset_v,
    )


@dataclass(frozen=True)
class SkuBin:
    """One binning rule: cutoffs a die must clear to sell as this part.

    Parameters
    ----------
    name:
        Bin label used in reports.
    sku:
        Key into :data:`~repro.soc.skus.SKU_DESCRIPTIONS` naming the part
        this bin ships as (empty string for a part-less bin).
    min_fmax_hz:
        Minimum Vmax-limited single-core Fmax.
    max_leakage_w:
        Maximum reference-point die leakage.
    max_vmin_v:
        Maximum functional Vmin (a die needing more voltage than the
        platform's retention rails provide cannot ship).
    """

    name: str
    sku: str = ""
    min_fmax_hz: float = 0.0
    max_leakage_w: float = float("inf")
    max_vmin_v: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("bin name must be a non-empty string")
        if self.name == SCRAP_BIN:
            raise ConfigurationError(
                f"bin name {SCRAP_BIN!r} is reserved for the leftovers"
            )
        if self.sku and self.sku not in SKU_DESCRIPTIONS:
            raise ConfigurationError(
                f"bin {self.name!r} references unknown sku {self.sku!r}; "
                f"known: {sorted(SKU_DESCRIPTIONS)}"
            )

    def passes(self, metrics: DieMetrics) -> np.ndarray:
        """Boolean mask of dice clearing this bin's cutoffs."""
        return (
            (metrics.fmax_hz >= self.min_fmax_hz)
            & (metrics.leakage_w <= self.max_leakage_w)
            & (metrics.vmin_v <= self.max_vmin_v)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this bin."""
        return {
            "name": self.name,
            "sku": self.sku,
            "min_fmax_hz": self.min_fmax_hz,
            "max_leakage_w": self.max_leakage_w,
            "max_vmin_v": self.max_vmin_v,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SkuBin":
        """Rebuild a bin from a :meth:`to_dict` payload."""
        return cls(**dict(data))


@dataclass(frozen=True)
class BinReport:
    """Yield and per-bin quantile summary of one binned population.

    ``counts`` / ``yield_fractions`` cover every bin plus ``"scrap"``;
    ``metric_quantiles`` maps bin -> metric -> (p5, p50, p95) and omits
    empty bins.
    """

    bin_names: Tuple[str, ...]
    counts: Dict[str, int]
    yield_fractions: Dict[str, float]
    metric_quantiles: Dict[str, Dict[str, Tuple[float, float, float]]]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this report."""
        return {
            "bin_names": list(self.bin_names),
            "counts": dict(self.counts),
            "yield_fractions": dict(self.yield_fractions),
            "metric_quantiles": {
                name: {metric: list(q) for metric, q in metrics.items()}
                for name, metrics in self.metric_quantiles.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BinReport":
        """Rebuild a report from a :meth:`to_dict` payload."""
        return cls(
            bin_names=tuple(data["bin_names"]),
            counts={name: int(count) for name, count in data["counts"].items()},
            yield_fractions=dict(data["yield_fractions"]),
            metric_quantiles={
                name: {
                    metric: tuple(q) for metric, q in metrics.items()
                }
                for name, metrics in data["metric_quantiles"].items()
            },
        )


@dataclass(frozen=True)
class BinningPolicy:
    """An ordered list of SKU bins; first match wins, leftovers are scrap."""

    bins: Tuple[SkuBin, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "bins", tuple(self.bins))
        if not self.bins:
            raise ConfigurationError("a binning policy needs at least one bin")
        names = [sku_bin.name for sku_bin in self.bins]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate bin names in {names}")

    @property
    def bin_names(self) -> Tuple[str, ...]:
        """Bin names in priority order (scrap excluded)."""
        return tuple(sku_bin.name for sku_bin in self.bins)

    def assign(self, metrics: DieMetrics) -> np.ndarray:
        """Bin index per die (-1 == scrap).

        Dice are offered to bins in order; a die joins the first bin whose
        cutoffs it clears.  Every die therefore lands in exactly one bin or
        in scrap — the partition property the yield accounting relies on.
        """
        assignments = np.full(metrics.count, -1, dtype=np.int64)
        for index, sku_bin in enumerate(self.bins):
            unassigned = assignments < 0
            assignments[unassigned & sku_bin.passes(metrics)] = index
        return assignments

    def report(
        self, metrics: DieMetrics, assignments: Optional[np.ndarray] = None
    ) -> BinReport:
        """Yield fractions and per-bin metric quantiles of *metrics*."""
        if assignments is None:
            assignments = self.assign(metrics)
        if len(assignments) != metrics.count:
            raise ConfigurationError("assignments must cover every die")
        counts: Dict[str, int] = {}
        fractions: Dict[str, float] = {}
        quantiles: Dict[str, Dict[str, Tuple[float, float, float]]] = {}
        columns = metrics.as_mapping()
        for index, name in enumerate((*self.bin_names, SCRAP_BIN)):
            selector = -1 if name == SCRAP_BIN else index
            members = assignments == selector
            count = int(members.sum())
            counts[name] = count
            fractions[name] = count / metrics.count
            if count:
                quantiles[name] = {
                    metric: tuple(
                        float(q)
                        for q in np.percentile(column[members], _QUANTILES)
                    )
                    for metric, column in columns.items()
                }
        return BinReport(
            bin_names=self.bin_names,
            counts=counts,
            yield_fractions=fractions,
            metric_quantiles=quantiles,
        )

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this policy."""
        return {"bins": [sku_bin.to_dict() for sku_bin in self.bins]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BinningPolicy":
        """Rebuild a policy from a :meth:`to_dict` payload."""
        return cls(
            bins=tuple(SkuBin.from_dict(entry) for entry in data["bins"])
        )


def skylake_binning_policy(
    premium_fmax_hz: float = 4.4e9,
    mainstream_fmax_hz: float = 4.0e9,
    max_leakage_w: float = 1.05,
    max_vmin_v: float = 0.585,
) -> BinningPolicy:
    """The default two-part Skylake binning ladder.

    Premium dice (Table 2's i7-6700K speed grade, measured on the bypassed
    desktop design) must clear a 4.4 GHz single-core turbo; the mainstream
    bin (shipped as the mobile i7-6920HQ grade, whose lower cTDP points
    hide the lost speed) accepts 4.0 GHz parts with a tighter leakage cap —
    a leaky die is unsellable in a thermally-constrained mobile chassis.
    Everything else is scrap.  With the default
    :func:`~repro.variation.distributions.skylake_process_variation` model
    the split lands near 52 / 43 / 5 percent.
    """
    return BinningPolicy(
        bins=(
            SkuBin(
                name="premium-desktop",
                sku="skylake-s",
                min_fmax_hz=premium_fmax_hz,
                max_leakage_w=max_leakage_w * 1.25,
                max_vmin_v=max_vmin_v + 0.03,
            ),
            SkuBin(
                name="mainstream-mobile",
                sku="skylake-h",
                min_fmax_hz=mainstream_fmax_hz,
                max_leakage_w=max_leakage_w,
                max_vmin_v=max_vmin_v,
            ),
        )
    )
