"""Streaming sharded population execution with mergeable online accumulators.

The in-memory population fast path materialises full ``(steps, dice)`` trace
matrices, so memory — not compute — is the wall between 4k and 1M dice.
This module replaces those matrices with **bounded, mergeable accumulators**
condensed per fixed-size die shard:

* Shard determinism — :class:`ShardPlan` splits ``count`` dice into
  fixed-size shards; shard *i* samples its dice through
  :meth:`~repro.variation.sampler.DiePopulationSampler.sample_range`, whose
  block-based ``SeedSequence`` spawn keys make every die a pure function of
  ``(seed, die index)``.  A shard therefore sees bit-identical dice whether
  it runs alone, in-process, or on a process-pool worker.
* Exact discrete statistics — per-step frequencies live on the candidate
  table's shared grid, so :class:`TraceValueCounts` keeps exact value
  counts and :func:`weighted_percentile` reproduces ``np.percentile``
  (linear interpolation) **bit for bit**.  Limiting-factor histograms,
  final-limiting counts and SKU bin yields are integer counts — exact under
  any merge order.
* Bounded continuous statistics — per-step power/temperature traces and
  per-die summary metrics stream through fixed-range histograms
  (:class:`HistogramSpec`, :class:`TraceHistogram`,
  :class:`ScalarAccumulator`).  **Documented error bound:** every reported
  quantile lies within one bin width ``(hi - lo) / bins`` of the exact
  in-memory quantile, because the interpolated order statistics are each
  located inside their true bin.  The bound per metric rides along in
  :attr:`StreamingCellResult.quantile_error_bounds`.
* Merge discipline — every accumulator merge is associative, and the final
  statistics are order-independent: integer counts commute exactly, and
  float sums are keyed by shard index and reduced in ascending shard order
  at finalize time, so any re-chunking of the merge tree yields the same
  bits.  Exact per-shard partial sums double as a double-count guard: a
  shard contributing twice raises.

:class:`~repro.variation.population.PopulationStudy` with
``method="streaming"`` fans one :class:`StreamingCellShard` task per (cell,
shard) plus one binning task per (base spec, shard) through the Study
executor machinery and merges the results into the ordinary
:class:`~repro.variation.population.PopulationResult` shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.spec import SystemSpec, build_engine
from repro.pmu.dvfs import LIMITING_FACTOR_ORDER, LimitingFactor
from repro.pmu.pcode import Pcode
from repro.sim.metrics import RESULT_SCHEMA_VERSION, check_payload_schema
from repro.variation.binning import SCRAP_BIN, BinningPolicy, die_metrics
from repro.variation.distributions import VariationModel
from repro.variation.sampler import DiePopulation, DiePopulationSampler
from repro.workloads.dynamics import DynamicScenario

#: Default histogram resolution for continuous streaming statistics.  The
#: documented quantile error bound is ``(hi - lo) / bins`` per metric.
DEFAULT_HISTOGRAM_BINS = 256

#: Percentiles reported by every streaming trace/summary.
STREAM_PERCENTILES: Tuple[float, ...] = (5.0, 50.0, 95.0)

_PERCENTILE_KEYS = tuple(f"p{int(p)}" for p in STREAM_PERCENTILES)

_FACTOR_NAMES = tuple(factor.value for factor in LIMITING_FACTOR_ORDER)


# -- shard planning --------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """How a ``count``-die population splits into fixed-size shards.

    Construction validates shard feasibility with actionable errors — the
    error path shared by :meth:`BatchedDynamicsSimulator.run_population`,
    :class:`~repro.variation.population.PopulationStudy` and the CLI.
    """

    count: int
    shard_size: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"cannot shard an empty population: count must be >= 1 "
                f"(got {self.count}); sample at least one die"
            )
        if self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1 (got {self.shard_size}); pick a "
                f"positive shard size (4096 is a good default)"
            )
        if self.shard_size > self.count:
            raise ConfigurationError(
                f"shard_size {self.shard_size} exceeds the population count "
                f"{self.count}; use shard_size <= count (a single shard of "
                f"{self.count} dice already streams the whole population)"
            )

    @property
    def n_shards(self) -> int:
        """Number of shards (the last one may be short)."""
        return math.ceil(self.count / self.shard_size)

    def shard_bounds(self, index: int) -> Tuple[int, int]:
        """The die range ``[start, stop)`` of shard *index*."""
        if not 0 <= index < self.n_shards:
            raise ConfigurationError(
                f"shard index {index} out of range for {self.n_shards} "
                f"shard(s) of {self.count} dice"
            )
        start = index * self.shard_size
        return start, min(start + self.shard_size, self.count)

    def bounds(self) -> Tuple[Tuple[int, int], ...]:
        """Every shard's ``[start, stop)`` range, in shard order."""
        return tuple(
            self.shard_bounds(index) for index in range(self.n_shards)
        )


# -- exact weighted percentiles --------------------------------------------------------


def weighted_percentile(
    values: np.ndarray, counts: np.ndarray, percentiles: Sequence[float]
) -> np.ndarray:
    """``np.percentile`` (linear) of the multiset ``{values[i] x counts[i]}``.

    *values* must be sorted ascending.  Reproduces numpy's interpolation
    exactly — including the two-sided lerp numpy uses for accuracy — so
    exact value-count accumulators yield **bit-identical** percentiles to
    the in-memory ``np.percentile`` over the materialised samples.
    """
    values = np.asarray(values, dtype=float)
    counts = np.asarray(counts, dtype=np.int64)
    if values.shape != counts.shape or values.ndim != 1:
        raise ConfigurationError(
            "values and counts must be 1-D arrays of equal length"
        )
    if (counts < 0).any():
        raise ConfigurationError("counts must be non-negative")
    if values.size > 1 and (np.diff(values) < 0).any():
        raise ConfigurationError("values must be sorted ascending")
    ps = np.asarray(percentiles, dtype=float)
    if ((ps < 0.0) | (ps > 100.0)).any():
        raise ConfigurationError("percentiles must lie in [0, 100]")
    total = int(counts.sum())
    if total < 1:
        raise ConfigurationError("percentiles need at least one sample")
    ranks = ps / 100.0 * (total - 1)
    lower = np.floor(ranks).astype(np.int64)
    upper = np.ceil(ranks).astype(np.int64)
    cumulative = np.cumsum(counts)
    x_lo = values[np.searchsorted(cumulative, lower, side="right")]
    x_hi = values[np.searchsorted(cumulative, upper, side="right")]
    gamma = ranks - lower
    diff = x_hi - x_lo
    return np.where(gamma < 0.5, x_lo + diff * gamma, x_hi - diff * (1.0 - gamma))


# -- histogram substrate ---------------------------------------------------------------


@dataclass(frozen=True)
class HistogramSpec:
    """A fixed-range uniform histogram grid.

    The range is derived deterministically from the nominal system and the
    scenario (never from the data), so every shard of a population builds
    the *same* grid — the precondition for exact count merging.  Values
    outside the range clip into the edge bins; exact minima/maxima are
    tracked separately by the accumulators.
    """

    lo: float
    hi: float
    bins: int = DEFAULT_HISTOGRAM_BINS

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ConfigurationError("a histogram needs at least one bin")
        if not self.hi > self.lo:
            raise ConfigurationError(
                f"histogram range [{self.lo}, {self.hi}] must be non-empty"
            )

    @property
    def width(self) -> float:
        """Bin width — the documented quantile error bound of this grid."""
        return (self.hi - self.lo) / self.bins

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Bin index per value, clipped into ``[0, bins)``."""
        raw = np.floor(
            (np.asarray(values, dtype=float) - self.lo) / self.width
        )
        return np.clip(raw, 0, self.bins - 1).astype(np.int64)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this grid."""
        return {"lo": self.lo, "hi": self.hi, "bins": self.bins}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HistogramSpec":
        """Rebuild a grid from a :meth:`to_dict` payload."""
        return cls(lo=data["lo"], hi=data["hi"], bins=int(data["bins"]))


def _histogram_quantiles(
    counts: np.ndarray,
    spec: HistogramSpec,
    minimum: float,
    maximum: float,
    percentiles: Sequence[float],
) -> np.ndarray:
    """Quantile estimates of one histogram row, within ``spec.width``.

    Both order statistics flanking the target rank are located inside their
    true bins (and clipped to the exact min/max), so the interpolated
    estimate sits within one bin width of ``np.percentile`` — the
    documented error bound.
    """
    total = int(counts.sum())
    if total < 1:
        raise ConfigurationError("quantiles need at least one sample")
    ps = np.asarray(percentiles, dtype=float)
    ranks = ps / 100.0 * (total - 1)
    lower = np.floor(ranks).astype(np.int64)
    upper = np.ceil(ranks).astype(np.int64)
    cumulative = np.cumsum(counts)

    def order_statistic(k: np.ndarray) -> np.ndarray:
        bin_index = np.searchsorted(cumulative, k, side="right")
        before = np.where(bin_index > 0, cumulative[bin_index - 1], 0)
        inside = counts[bin_index]
        fraction = (k - before + 0.5) / inside
        estimate = spec.lo + spec.width * (bin_index + fraction)
        return np.clip(estimate, minimum, maximum)

    x_lo = order_statistic(lower)
    x_hi = order_statistic(upper)
    gamma = ranks - lower
    diff = x_hi - x_lo
    return np.where(gamma < 0.5, x_lo + diff * gamma, x_hi - diff * (1.0 - gamma))


# -- mergeable accumulators ------------------------------------------------------------


@dataclass(frozen=True)
class ScalarSummary:
    """Finalized distribution summary of one per-die scalar metric.

    ``minimum``/``maximum``/``mean``/``count`` are exact (the mean reduces
    per-shard partial sums in canonical shard order); the quantiles carry
    the histogram's one-bin-width error bound.
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    p5: float
    p50: float
    p95: float

    def quantiles(self) -> Tuple[float, float, float]:
        """The (p5, p50, p95) triple."""
        return (self.p5, self.p50, self.p95)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this summary."""
        return {
            "count": self.count,
            "mean": self.mean,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "p5": self.p5,
            "p50": self.p50,
            "p95": self.p95,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScalarSummary":
        """Rebuild a summary from a :meth:`to_dict` payload."""
        return cls(
            count=int(data["count"]),
            mean=data["mean"],
            minimum=data["minimum"],
            maximum=data["maximum"],
            p5=data["p5"],
            p50=data["p50"],
            p95=data["p95"],
        )


@dataclass(eq=False)
class ScalarAccumulator:
    """Streaming distribution of one scalar per die (histogram + exact bits).

    Exact: count, min, max, and the mean (per-shard ``(count, sum)``
    partials keyed by shard index, reduced in ascending shard order at
    finalize — bitwise invariant under merge order and re-chunking).
    Within ``spec.width``: the quantiles.
    """

    spec: HistogramSpec
    counts: np.ndarray
    minimum: float
    maximum: float
    shard_sums: Dict[int, Tuple[int, float]] = field(default_factory=dict)

    @classmethod
    def from_values(
        cls, spec: HistogramSpec, values: np.ndarray, shard_index: int
    ) -> "ScalarAccumulator":
        """Accumulate one shard's values."""
        values = np.asarray(values, dtype=float)
        if values.size < 1:
            raise ConfigurationError("an accumulator shard needs >= 1 value")
        counts = np.bincount(spec.bin_of(values), minlength=spec.bins)
        return cls(
            spec=spec,
            counts=counts.astype(np.int64),
            minimum=float(values.min()),
            maximum=float(values.max()),
            shard_sums={int(shard_index): (int(values.size), float(values.sum()))},
        )

    @property
    def count(self) -> int:
        """Total samples accumulated."""
        return int(self.counts.sum())

    def merge(self, other: "ScalarAccumulator") -> "ScalarAccumulator":
        """Associative, order-independent merge of two accumulators."""
        if self.spec != other.spec:
            raise ConfigurationError(
                "cannot merge accumulators over different histogram grids"
            )
        overlap = set(self.shard_sums) & set(other.shard_sums)
        if overlap:
            raise ConfigurationError(
                f"shard(s) {sorted(overlap)} contributed twice to the merge"
            )
        sums = dict(self.shard_sums)
        sums.update(other.shard_sums)
        return ScalarAccumulator(
            spec=self.spec,
            counts=self.counts + other.counts,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            shard_sums=sums,
        )

    def mean(self) -> float:
        """Exact mean: partial sums reduced in ascending shard order."""
        total = 0
        acc = 0.0
        for shard in sorted(self.shard_sums):
            n, s = self.shard_sums[shard]
            total += n
            acc += s
        return acc / total

    def quantiles(
        self, percentiles: Sequence[float] = STREAM_PERCENTILES
    ) -> Tuple[float, ...]:
        """Quantile estimates, each within ``spec.width`` of the exact value."""
        return tuple(
            float(v)
            for v in _histogram_quantiles(
                self.counts, self.spec, self.minimum, self.maximum, percentiles
            )
        )

    def summary(self) -> ScalarSummary:
        """Condense to the finalized :class:`ScalarSummary`."""
        p5, p50, p95 = self.quantiles()
        return ScalarSummary(
            count=self.count,
            mean=self.mean(),
            minimum=self.minimum,
            maximum=self.maximum,
            p5=p5,
            p50=p50,
            p95=p95,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this accumulator."""
        return {
            "spec": self.spec.to_dict(),
            "counts": [int(c) for c in self.counts.tolist()],
            "minimum": self.minimum,
            "maximum": self.maximum,
            "shard_sums": {
                str(shard): [n, s] for shard, (n, s) in sorted(self.shard_sums.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScalarAccumulator":
        """Rebuild an accumulator from a :meth:`to_dict` payload."""
        return cls(
            spec=HistogramSpec.from_dict(data["spec"]),
            counts=np.asarray(data["counts"], dtype=np.int64),
            minimum=data["minimum"],
            maximum=data["maximum"],
            shard_sums={
                int(shard): (int(n), float(s))
                for shard, (n, s) in data["shard_sums"].items()
            },
        )


@dataclass(eq=False)
class TraceValueCounts:
    """Exact per-step value counts over a shared discrete value grid.

    Per-step frequencies live on the candidate table's common grid, so the
    union of observed values stays tiny no matter the population size —
    and :meth:`percentile_traces` reproduces the in-memory
    ``np.percentile(matrix, ..., axis=1)`` bit for bit via
    :func:`weighted_percentile`.
    """

    values: np.ndarray  # (V,) sorted ascending
    counts: np.ndarray  # (steps, V) int64

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "TraceValueCounts":
        """Accumulate one shard's ``(steps, dice)`` trace matrix."""
        matrix = np.ascontiguousarray(matrix, dtype=float)
        steps = matrix.shape[0]
        values = np.unique(matrix)
        index = np.searchsorted(values, matrix)
        rows = np.arange(steps)[:, None]
        flat = (rows * values.size + index).ravel()
        counts = np.bincount(flat, minlength=steps * values.size)
        return cls(values=values, counts=counts.reshape(steps, values.size))

    @property
    def steps(self) -> int:
        """Number of trace steps."""
        return self.counts.shape[0]

    def merge(self, other: "TraceValueCounts") -> "TraceValueCounts":
        """Associative merge: union the value grids, add the counts."""
        if self.steps != other.steps:
            raise ConfigurationError(
                "cannot merge trace counts with different step counts"
            )
        union = np.union1d(self.values, other.values)
        counts = np.zeros((self.steps, union.size), dtype=np.int64)
        counts[:, np.searchsorted(union, self.values)] += self.counts
        counts[:, np.searchsorted(union, other.values)] += other.counts
        return TraceValueCounts(values=union, counts=counts)

    def percentile_traces(
        self, percentiles: Sequence[float] = STREAM_PERCENTILES
    ) -> Dict[str, Tuple[float, ...]]:
        """Exact per-step percentile traces (``{"p5": (...), ...}``)."""
        traces = np.empty((self.steps, len(percentiles)))
        for step in range(self.steps):
            traces[step] = weighted_percentile(
                self.values, self.counts[step], percentiles
            )
        return {
            key: tuple(traces[:, column].tolist())
            for column, key in enumerate(_PERCENTILE_KEYS)
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this accumulator."""
        return {
            "values": [float(v) for v in self.values.tolist()],
            "counts": [[int(c) for c in row] for row in self.counts.tolist()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceValueCounts":
        """Rebuild an accumulator from a :meth:`to_dict` payload."""
        return cls(
            values=np.asarray(data["values"], dtype=float),
            counts=np.asarray(data["counts"], dtype=np.int64),
        )


@dataclass(eq=False)
class TraceHistogram:
    """Per-step histograms of one continuous trace over a fixed grid."""

    spec: HistogramSpec
    counts: np.ndarray  # (steps, bins) int64
    minima: np.ndarray  # (steps,) exact per-step minimum
    maxima: np.ndarray  # (steps,) exact per-step maximum

    @classmethod
    def from_matrix(
        cls, spec: HistogramSpec, matrix: np.ndarray
    ) -> "TraceHistogram":
        """Accumulate one shard's ``(steps, dice)`` trace matrix."""
        matrix = np.ascontiguousarray(matrix, dtype=float)
        steps = matrix.shape[0]
        index = spec.bin_of(matrix)
        rows = np.arange(steps)[:, None]
        flat = (rows * spec.bins + index).ravel()
        counts = np.bincount(flat, minlength=steps * spec.bins)
        return cls(
            spec=spec,
            counts=counts.reshape(steps, spec.bins),
            minima=matrix.min(axis=1),
            maxima=matrix.max(axis=1),
        )

    @property
    def steps(self) -> int:
        """Number of trace steps."""
        return self.counts.shape[0]

    def merge(self, other: "TraceHistogram") -> "TraceHistogram":
        """Associative merge: add counts, tighten per-step extrema."""
        if self.spec != other.spec or self.steps != other.steps:
            raise ConfigurationError(
                "cannot merge trace histograms with different grids or steps"
            )
        return TraceHistogram(
            spec=self.spec,
            counts=self.counts + other.counts,
            minima=np.minimum(self.minima, other.minima),
            maxima=np.maximum(self.maxima, other.maxima),
        )

    def percentile_traces(
        self, percentiles: Sequence[float] = STREAM_PERCENTILES
    ) -> Dict[str, Tuple[float, ...]]:
        """Per-step percentile traces, each within ``spec.width``."""
        traces = np.empty((self.steps, len(percentiles)))
        for step in range(self.steps):
            traces[step] = _histogram_quantiles(
                self.counts[step],
                self.spec,
                float(self.minima[step]),
                float(self.maxima[step]),
                percentiles,
            )
        return {
            key: tuple(traces[:, column].tolist())
            for column, key in enumerate(_PERCENTILE_KEYS)
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this accumulator."""
        return {
            "spec": self.spec.to_dict(),
            "counts": [[int(c) for c in row] for row in self.counts.tolist()],
            "minima": [float(v) for v in self.minima.tolist()],
            "maxima": [float(v) for v in self.maxima.tolist()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceHistogram":
        """Rebuild an accumulator from a :meth:`to_dict` payload."""
        return cls(
            spec=HistogramSpec.from_dict(data["spec"]),
            counts=np.asarray(data["counts"], dtype=np.int64),
            minima=np.asarray(data["minima"], dtype=float),
            maxima=np.asarray(data["maxima"], dtype=float),
        )


@dataclass(eq=False)
class TraceCounts:
    """Exact per-step counts over a fixed name alphabet (limiting factors)."""

    names: Tuple[str, ...]
    counts: np.ndarray  # (steps, len(names)) int64

    @classmethod
    def from_codes(
        cls, codes: np.ndarray, names: Tuple[str, ...]
    ) -> "TraceCounts":
        """Accumulate one shard's ``(steps, dice)`` integer code matrix."""
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        steps = codes.shape[0]
        rows = np.arange(steps)[:, None]
        flat = (rows * len(names) + codes).ravel()
        counts = np.bincount(flat, minlength=steps * len(names))
        return cls(names=names, counts=counts.reshape(steps, len(names)))

    @property
    def steps(self) -> int:
        """Number of trace steps."""
        return self.counts.shape[0]

    def merge(self, other: "TraceCounts") -> "TraceCounts":
        """Associative merge: add the exact counts."""
        if self.names != other.names or self.steps != other.steps:
            raise ConfigurationError(
                "cannot merge trace counts with different alphabets or steps"
            )
        return TraceCounts(names=self.names, counts=self.counts + other.counts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this accumulator."""
        return {
            "names": list(self.names),
            "counts": [[int(c) for c in row] for row in self.counts.tolist()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceCounts":
        """Rebuild an accumulator from a :meth:`to_dict` payload."""
        return cls(
            names=tuple(data["names"]),
            counts=np.asarray(data["counts"], dtype=np.int64),
        )


# -- the finalized streaming results ---------------------------------------------------


@dataclass(frozen=True)
class StreamingBinningResult:
    """Exact SKU binning of a streamed population (counts, no assignments).

    The per-die assignment tuple of the in-memory
    :class:`~repro.variation.population.SpecBinningResult` is O(N); the
    streaming path keeps only the exact integer bin counts, whose yield
    fractions equal the in-memory report's fractions bit for bit (same
    integers, same division).
    """

    spec_name: str
    counts: Dict[str, int]
    count: int

    @property
    def yield_fractions(self) -> Dict[str, float]:
        """Exact yield fraction per bin (including scrap)."""
        return {name: c / self.count for name, c in self.counts.items()}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this binning."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "streaming_binning",
            "spec_name": self.spec_name,
            "counts": dict(self.counts),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamingBinningResult":
        """Rebuild a binning result from a :meth:`to_dict` payload."""
        check_payload_schema(dict(data), "streaming binning")
        return cls(
            spec_name=data["spec_name"],
            counts={name: int(c) for name, c in data["counts"].items()},
            count=int(data["count"]),
        )


@dataclass(frozen=True)
class StreamingCellResult:
    """Streaming summary of one (spec variant, scenario) grid cell.

    The same percentile-trace shape as the in-memory
    :class:`~repro.variation.population.PopulationCellResult`, but with the
    O(N) per-die tuples replaced by exact counts and bounded summaries:

    * ``frequency_percentiles_hz``, ``limiting_histogram`` and
      ``final_limiting_counts`` are **exact** (equal to the in-memory path
      bit for bit);
    * ``power_percentiles_w``, ``temperature_percentiles_c`` and the
      per-die summaries carry the one-bin-width error bound recorded in
      ``quantile_error_bounds``.

    ``spec`` is ``None`` for cells finalized straight from the dynamics
    engine (``run_population(..., shard_size=N)``), which runs below the
    spec layer; study cells always carry their owning spec.
    """

    spec: Optional[SystemSpec]
    scenario_name: str
    time_step_s: float
    pl1_w: float
    pl2_w: float
    count: int
    shard_size: int
    times_s: Tuple[float, ...]
    frequency_percentiles_hz: Dict[str, Tuple[float, ...]]
    power_percentiles_w: Dict[str, Tuple[float, ...]]
    temperature_percentiles_c: Dict[str, Tuple[float, ...]]
    limiting_histogram: Dict[str, float]
    final_limiting_counts: Dict[str, int]
    sustained_summary: ScalarSummary
    average_power_summary: ScalarSummary
    peak_temperature_summary: ScalarSummary
    sustained_by_bin: Dict[str, ScalarSummary]
    package_cstates: Tuple[str, ...]
    quantile_error_bounds: Dict[str, float]

    @property
    def n_shards(self) -> int:
        """Number of shards the cell streamed through."""
        return math.ceil(self.count / self.shard_size)

    def sustained_quantiles_ghz(
        self, quantiles: Sequence[float] = STREAM_PERCENTILES
    ) -> Tuple[float, ...]:
        """Quantiles of the per-die sustained frequency, in GHz.

        Streaming cells keep the fixed (p5, p50, p95) summary; other
        quantiles would need the discarded per-die values.
        """
        return tuple(
            v / 1e9
            for v in self._select_quantiles(self.sustained_summary, quantiles)
        )

    def sustained_by_bin_ghz(
        self, quantiles: Sequence[float] = (5.0, 95.0)
    ) -> Dict[str, Tuple[float, ...]]:
        """Per-bin sustained-frequency quantiles (GHz); empty bins omitted."""
        return {
            name: tuple(
                v / 1e9 for v in self._select_quantiles(summary, quantiles)
            )
            for name, summary in self.sustained_by_bin.items()
        }

    @staticmethod
    def _select_quantiles(
        summary: ScalarSummary, quantiles: Sequence[float]
    ) -> Tuple[float, ...]:
        available = dict(zip(STREAM_PERCENTILES, summary.quantiles()))
        missing = [q for q in quantiles if q not in available]
        if missing:
            raise ConfigurationError(
                f"streaming cells keep only the {list(STREAM_PERCENTILES)} "
                f"quantiles; {missing} would need the per-die values the "
                f"streaming path discards (use method='fast' for those)"
            )
        return tuple(available[q] for q in quantiles)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this cell."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "streaming_cell",
            "spec": None if self.spec is None else self.spec.to_dict(),
            "scenario_name": self.scenario_name,
            "time_step_s": self.time_step_s,
            "pl1_w": self.pl1_w,
            "pl2_w": self.pl2_w,
            "count": self.count,
            "shard_size": self.shard_size,
            "times_s": list(self.times_s),
            "frequency_percentiles_hz": {
                key: list(trace)
                for key, trace in self.frequency_percentiles_hz.items()
            },
            "power_percentiles_w": {
                key: list(trace) for key, trace in self.power_percentiles_w.items()
            },
            "temperature_percentiles_c": {
                key: list(trace)
                for key, trace in self.temperature_percentiles_c.items()
            },
            "limiting_histogram": dict(self.limiting_histogram),
            "final_limiting_counts": dict(self.final_limiting_counts),
            "sustained_summary": self.sustained_summary.to_dict(),
            "average_power_summary": self.average_power_summary.to_dict(),
            "peak_temperature_summary": self.peak_temperature_summary.to_dict(),
            "sustained_by_bin": {
                name: summary.to_dict()
                for name, summary in self.sustained_by_bin.items()
            },
            "package_cstates": list(self.package_cstates),
            "quantile_error_bounds": dict(self.quantile_error_bounds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamingCellResult":
        """Rebuild a cell from a :meth:`to_dict` payload."""
        check_payload_schema(dict(data), "streaming cell")
        return cls(
            spec=(
                None
                if data["spec"] is None
                else SystemSpec.from_dict(data["spec"])
            ),
            scenario_name=data["scenario_name"],
            time_step_s=data["time_step_s"],
            pl1_w=data["pl1_w"],
            pl2_w=data["pl2_w"],
            count=int(data["count"]),
            shard_size=int(data["shard_size"]),
            times_s=tuple(data["times_s"]),
            frequency_percentiles_hz={
                key: tuple(trace)
                for key, trace in data["frequency_percentiles_hz"].items()
            },
            power_percentiles_w={
                key: tuple(trace)
                for key, trace in data["power_percentiles_w"].items()
            },
            temperature_percentiles_c={
                key: tuple(trace)
                for key, trace in data["temperature_percentiles_c"].items()
            },
            limiting_histogram=dict(data["limiting_histogram"]),
            final_limiting_counts={
                name: int(c) for name, c in data["final_limiting_counts"].items()
            },
            sustained_summary=ScalarSummary.from_dict(data["sustained_summary"]),
            average_power_summary=ScalarSummary.from_dict(
                data["average_power_summary"]
            ),
            peak_temperature_summary=ScalarSummary.from_dict(
                data["peak_temperature_summary"]
            ),
            sustained_by_bin={
                name: ScalarSummary.from_dict(summary)
                for name, summary in data["sustained_by_bin"].items()
            },
            package_cstates=tuple(data["package_cstates"]),
            quantile_error_bounds=dict(data["quantile_error_bounds"]),
        )


# -- the per-shard accumulator ---------------------------------------------------------


@dataclass(eq=False)
class StreamingCellShard:
    """One shard's (or a merged run of shards') cell accumulators.

    Produced by :func:`run_cell_shard` / :func:`condense_population_traces`,
    merged associatively, finalized into a :class:`StreamingCellResult`.
    Everything here is bounded by the trace length and the histogram
    resolution — never by the population size.
    """

    spec: Optional[SystemSpec]
    scenario_name: str
    time_step_s: float
    pl1_w: float
    pl2_w: float
    count: int
    times_s: np.ndarray
    active_steps: np.ndarray  # (steps,) bool; structural, equal across shards
    cstate_names: Tuple[str, ...]
    frequency: TraceValueCounts
    power: TraceHistogram
    temperature: TraceHistogram
    limiting: TraceCounts
    final_limiting_counts: Dict[str, int]
    sustained: ScalarAccumulator
    average_power: ScalarAccumulator
    peak_temperature: ScalarAccumulator
    sustained_by_bin: Dict[str, ScalarAccumulator]

    def merge(self, other: "StreamingCellShard") -> "StreamingCellShard":
        """Associative merge of two disjoint shard runs of the same cell."""
        if self.spec != other.spec or self.scenario_name != other.scenario_name:
            raise ConfigurationError(
                "cannot merge shards of different population cells"
            )
        structural = (
            self.time_step_s == other.time_step_s
            and self.pl1_w == other.pl1_w
            and self.pl2_w == other.pl2_w
            and np.array_equal(self.times_s, other.times_s)
            and np.array_equal(self.active_steps, other.active_steps)
            and self.cstate_names == other.cstate_names
        )
        if not structural:
            raise ConfigurationError(
                "shards of one cell disagree on the timeline structure; "
                "they were not produced from the same (system, scenario)"
            )
        final_counts = dict(self.final_limiting_counts)
        for name, c in other.final_limiting_counts.items():
            final_counts[name] = final_counts.get(name, 0) + c
        by_bin = dict(self.sustained_by_bin)
        for name, accumulator in other.sustained_by_bin.items():
            present = by_bin.get(name)
            by_bin[name] = (
                accumulator if present is None else present.merge(accumulator)
            )
        return StreamingCellShard(
            spec=self.spec,
            scenario_name=self.scenario_name,
            time_step_s=self.time_step_s,
            pl1_w=self.pl1_w,
            pl2_w=self.pl2_w,
            count=self.count + other.count,
            times_s=self.times_s,
            active_steps=self.active_steps,
            cstate_names=self.cstate_names,
            frequency=self.frequency.merge(other.frequency),
            power=self.power.merge(other.power),
            temperature=self.temperature.merge(other.temperature),
            limiting=self.limiting.merge(other.limiting),
            final_limiting_counts=final_counts,
            sustained=self.sustained.merge(other.sustained),
            average_power=self.average_power.merge(other.average_power),
            peak_temperature=self.peak_temperature.merge(other.peak_temperature),
            sustained_by_bin=by_bin,
        )

    def finalize(self, shard_size: int) -> StreamingCellResult:
        """Condense the merged accumulators into the cell result."""
        active_rows = np.flatnonzero(self.active_steps)
        histogram: Dict[str, float] = {}
        if len(active_rows):
            factor_counts = self.limiting.counts[active_rows].sum(axis=0)
            total = len(active_rows) * self.count
            for name, c in zip(self.limiting.names, factor_counts):
                if c:
                    histogram[str(name)] = float(int(c) / total)
        return StreamingCellResult(
            spec=self.spec,
            scenario_name=self.scenario_name,
            time_step_s=self.time_step_s,
            pl1_w=self.pl1_w,
            pl2_w=self.pl2_w,
            count=self.count,
            shard_size=int(shard_size),
            times_s=tuple(np.asarray(self.times_s).tolist()),
            frequency_percentiles_hz=self.frequency.percentile_traces(),
            power_percentiles_w=self.power.percentile_traces(),
            temperature_percentiles_c=self.temperature.percentile_traces(),
            limiting_histogram=histogram,
            final_limiting_counts=dict(self.final_limiting_counts),
            sustained_summary=self.sustained.summary(),
            average_power_summary=self.average_power.summary(),
            peak_temperature_summary=self.peak_temperature.summary(),
            sustained_by_bin={
                name: accumulator.summary()
                for name, accumulator in sorted(self.sustained_by_bin.items())
            },
            package_cstates=self.cstate_names,
            quantile_error_bounds={
                "frequency_hz": 0.0,
                "power_w": self.power.spec.width,
                "temperature_c": self.temperature.spec.width,
                "sustained_frequency_hz": self.sustained.spec.width,
                "average_power_w": self.average_power.spec.width,
                "peak_temperature_c": self.peak_temperature.spec.width,
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (the store codec for shard task results)."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "spec": None if self.spec is None else self.spec.to_dict(),
            "scenario_name": self.scenario_name,
            "time_step_s": self.time_step_s,
            "pl1_w": self.pl1_w,
            "pl2_w": self.pl2_w,
            "count": self.count,
            "times_s": [float(t) for t in np.asarray(self.times_s).tolist()],
            "active_steps": [bool(a) for a in self.active_steps.tolist()],
            "cstate_names": list(self.cstate_names),
            "frequency": self.frequency.to_dict(),
            "power": self.power.to_dict(),
            "temperature": self.temperature.to_dict(),
            "limiting": self.limiting.to_dict(),
            "final_limiting_counts": dict(self.final_limiting_counts),
            "sustained": self.sustained.to_dict(),
            "average_power": self.average_power.to_dict(),
            "peak_temperature": self.peak_temperature.to_dict(),
            "sustained_by_bin": {
                name: accumulator.to_dict()
                for name, accumulator in sorted(self.sustained_by_bin.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamingCellShard":
        """Rebuild a shard accumulator from a :meth:`to_dict` payload."""
        check_payload_schema(dict(data), "streaming cell shard")
        return cls(
            spec=(
                None
                if data["spec"] is None
                else SystemSpec.from_dict(data["spec"])
            ),
            scenario_name=data["scenario_name"],
            time_step_s=data["time_step_s"],
            pl1_w=data["pl1_w"],
            pl2_w=data["pl2_w"],
            count=int(data["count"]),
            times_s=np.asarray(data["times_s"], dtype=float),
            active_steps=np.asarray(data["active_steps"], dtype=bool),
            cstate_names=tuple(data["cstate_names"]),
            frequency=TraceValueCounts.from_dict(data["frequency"]),
            power=TraceHistogram.from_dict(data["power"]),
            temperature=TraceHistogram.from_dict(data["temperature"]),
            limiting=TraceCounts.from_dict(data["limiting"]),
            final_limiting_counts={
                name: int(c)
                for name, c in data["final_limiting_counts"].items()
            },
            sustained=ScalarAccumulator.from_dict(data["sustained"]),
            average_power=ScalarAccumulator.from_dict(data["average_power"]),
            peak_temperature=ScalarAccumulator.from_dict(
                data["peak_temperature"]
            ),
            sustained_by_bin={
                name: ScalarAccumulator.from_dict(accumulator)
                for name, accumulator in data["sustained_by_bin"].items()
            },
        )


# -- condensation ----------------------------------------------------------------------


def _cell_histogram_specs(
    pcode: Pcode,
    scenario: DynamicScenario,
    pl2_w: float,
    bins: int = DEFAULT_HISTOGRAM_BINS,
) -> Dict[str, HistogramSpec]:
    """Deterministic histogram grids for one cell's continuous metrics.

    Derived from the nominal system and the scenario only — never from the
    sampled data — so every shard of a population builds identical grids.
    """
    processor = pcode.processor
    thermal_limits = processor.thermal_model().limits
    fmax = 0.0
    for phase in scenario.phases:
        if not phase.is_idle:
            table = pcode.dvfs_policy.candidate_table(phase.demand())
            fmax = max(fmax, float(np.max(table.frequencies_hz)))
    if fmax <= 0.0:
        fmax = 1.0  # idle-only scenario: every frequency is exactly 0 Hz
    temp_lo = thermal_limits.ambient_c
    if scenario.initial_temperature_c is not None:
        temp_lo = min(temp_lo, scenario.initial_temperature_c)
    temp_hi = max(processor.tjmax_c, temp_lo + 1.0)
    power_hi = pl2_w if pl2_w > 0.0 else 1.0
    return {
        "frequency_hz": HistogramSpec(0.0, fmax, bins),
        "power_w": HistogramSpec(0.0, power_hi, bins),
        "temperature_c": HistogramSpec(temp_lo, temp_hi, bins),
    }


def condense_population_traces(
    pcode: Pcode,
    scenario: DynamicScenario,
    traces: Any,
    shard_index: int,
    spec: Optional[SystemSpec] = None,
    binning: Optional[BinningPolicy] = None,
    population: Optional[DiePopulation] = None,
    binning_pcode: Optional[Pcode] = None,
) -> StreamingCellShard:
    """Condense one shard's raw lockstep traces into bounded accumulators.

    Mirrors the in-memory ``_cell_from_matrices`` condensation exactly where
    exactness is promised (active rows, the sustained tail, limiting
    counts); continuous metrics land in the deterministic histogram grids of
    :func:`_cell_histogram_specs`.  When *binning* and *population* are
    given, per-bin sustained accumulators are built from the shard's bin
    assignments measured on *binning_pcode* (default: *pcode*) — pass the
    **base** spec's pcode to match the in-memory path, whose bin join uses
    the base design's candidate table (Fmax feasibility shifts with TDP, so
    a TDP variant's own table would bin edge dice differently).
    """
    frequencies = np.ascontiguousarray(traces.frequencies_hz)
    powers = np.ascontiguousarray(traces.package_powers_w)
    temperatures = np.ascontiguousarray(traces.temperatures_c)
    count = frequencies.shape[1]
    specs = _cell_histogram_specs(pcode, scenario, traces.pl2_w)
    sustained_spec = specs["frequency_hz"]
    active_steps = (frequencies > 0.0).any(axis=1)
    active_rows = np.flatnonzero(active_steps)
    final_counts: Dict[str, int] = {}
    if len(active_rows):
        tail = active_rows[-max(1, len(active_rows) // 10) :]
        sustained = frequencies[tail].mean(axis=0)
        last_codes = np.bincount(
            traces.limiting_codes[active_rows[-1]],
            minlength=len(_FACTOR_NAMES),
        )
        for name, c in zip(_FACTOR_NAMES, last_codes):
            if c:
                final_counts[name] = int(c)
    else:
        sustained = np.zeros(count)
        final_counts[LimitingFactor.NONE.value] = count
    by_bin: Dict[str, ScalarAccumulator] = {}
    if binning is not None:
        if population is None:
            raise ConfigurationError(
                "per-bin sustained accumulators need the shard population"
            )
        measured_on = binning_pcode if binning_pcode is not None else pcode
        assignments = binning.assign(die_metrics(measured_on, population))
        for index, name in enumerate((*binning.bin_names, SCRAP_BIN)):
            selector = -1 if name == SCRAP_BIN else index
            members = assignments == selector
            if members.any():
                by_bin[name] = ScalarAccumulator.from_values(
                    sustained_spec, sustained[members], shard_index
                )
    return StreamingCellShard(
        spec=spec,
        scenario_name=traces.scenario_name,
        time_step_s=traces.time_step_s,
        pl1_w=traces.pl1_w,
        pl2_w=traces.pl2_w,
        count=count,
        times_s=np.asarray(traces.times_s),
        active_steps=active_steps,
        cstate_names=tuple(traces.package_cstate_names()),
        frequency=TraceValueCounts.from_matrix(frequencies),
        power=TraceHistogram.from_matrix(specs["power_w"], powers),
        temperature=TraceHistogram.from_matrix(
            specs["temperature_c"], temperatures
        ),
        limiting=TraceCounts.from_codes(traces.limiting_codes, _FACTOR_NAMES),
        final_limiting_counts=final_counts,
        sustained=ScalarAccumulator.from_values(
            sustained_spec, sustained, shard_index
        ),
        average_power=ScalarAccumulator.from_values(
            specs["power_w"], powers.mean(axis=0), shard_index
        ),
        peak_temperature=ScalarAccumulator.from_values(
            specs["temperature_c"], temperatures.max(axis=0), shard_index
        ),
        sustained_by_bin=by_bin,
    )


def merge_cell_shards(
    shards: Sequence[StreamingCellShard],
) -> StreamingCellShard:
    """Merge shard accumulators (associative; any order yields the same bits)."""
    if not shards:
        raise ConfigurationError("cannot merge zero shards")
    merged = shards[0]
    for shard in shards[1:]:
        merged = merged.merge(shard)
    return merged


# -- study task functions (module-level so process pools can pickle them) --------------


def run_cell_shard(
    spec: SystemSpec,
    scenario: DynamicScenario,
    variations: VariationModel,
    count: int,
    seed: int,
    shard_index: int,
    shard_size: int,
    binning: BinningPolicy,
    binning_spec: Optional[SystemSpec] = None,
) -> StreamingCellShard:
    """One streaming grid-cell shard: sample, step in lockstep, condense.

    The task samples only its own die range (O(shard) memory even on a
    process-pool worker) and returns bounded accumulators — never a full
    trace matrix.  *binning_spec* (default: *spec*) is the design the bin
    assignments are measured on; population studies pass the base spec so
    every TDP variant's per-bin statistics join against the same bins.
    """
    plan = ShardPlan(count=count, shard_size=shard_size)
    start, stop = plan.shard_bounds(shard_index)
    population = DiePopulationSampler(variations).sample_range(
        start, stop, seed
    )
    engine = build_engine(spec)
    traces = engine.run_population(scenario, population)
    binning_pcode = (
        None
        if binning_spec is None or binning_spec == spec
        else build_engine(binning_spec).pcode
    )
    return condense_population_traces(
        engine.pcode,
        scenario,
        traces,
        shard_index,
        spec=spec,
        binning=binning,
        population=population,
        binning_pcode=binning_pcode,
    )


def run_binning_shard(
    spec: SystemSpec,
    variations: VariationModel,
    count: int,
    seed: int,
    shard_index: int,
    shard_size: int,
    binning: BinningPolicy,
) -> Dict[str, int]:
    """One streaming binning shard: exact bin counts of the shard's dice."""
    plan = ShardPlan(count=count, shard_size=shard_size)
    start, stop = plan.shard_bounds(shard_index)
    population = DiePopulationSampler(variations).sample_range(
        start, stop, seed
    )
    assignments = binning.assign(
        die_metrics(build_engine(spec).pcode, population)
    )
    counts: Dict[str, int] = {}
    for index, name in enumerate((*binning.bin_names, SCRAP_BIN)):
        selector = -1 if name == SCRAP_BIN else index
        counts[name] = int((assignments == selector).sum())
    return counts


def merge_binning_shards(
    spec_name: str,
    shard_counts: Sequence[Mapping[str, int]],
    count: int,
) -> StreamingBinningResult:
    """Merge per-shard bin counts into the exact streaming binning result."""
    if not shard_counts:
        raise ConfigurationError("cannot merge zero binning shards")
    names: List[str] = list(shard_counts[0])
    merged = {name: 0 for name in names}
    for counts in shard_counts:
        if set(counts) != set(merged):
            raise ConfigurationError(
                "binning shards disagree on the bin alphabet"
            )
        for name, c in counts.items():
            merged[name] += int(c)
    total = sum(merged.values())
    if total != count:
        raise ConfigurationError(
            f"binning shards cover {total} dice but the population has "
            f"{count}; a shard is missing or duplicated"
        )
    return StreamingBinningResult(
        spec_name=spec_name, counts=merged, count=count
    )
