"""Declarative process-variation distributions over named silicon knobs.

A :class:`ParameterVariation` describes how one silicon parameter varies die
to die — which knob, which distribution family, and its spread — as a
frozen, hashable, JSON-round-tripping spec.  A :class:`VariationModel`
collects several of them and optionally correlates their draws through a
correlation matrix factored by the small Cholesky helper
:func:`cholesky_factor` (leaky dice tend to be fast dice, slow dice tend to
have high Vmin, and so on).

Every distribution is expressed as a deterministic transform of standard
normal draws, so correlation composes cleanly: the model draws one
``(count, knobs)`` standard-normal matrix from a seeded
:class:`numpy.random.Generator`, mixes it with the Cholesky factor, and
pushes each column through its parameter's transform.  Fixing the seed
therefore fixes every sampled die bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_non_negative

#: The silicon knobs a die may vary, with their nominal values.  The names
#: are exactly the fields of :class:`repro.variation.sampler.DieVariation`.
NOMINAL_PARAMETERS: Dict[str, float] = {
    "leakage_scale": 1.0,
    "leakage_kt_delta_per_c": 0.0,
    "vf_offset_v": 0.0,
    "vmin_offset_v": 0.0,
    "thermal_resistance_scale": 1.0,
    "powergate_resistance_scale": 1.0,
}

#: Knobs that must stay strictly positive (they multiply physical models).
POSITIVE_PARAMETERS: Tuple[str, ...] = (
    "leakage_scale",
    "thermal_resistance_scale",
    "powergate_resistance_scale",
)

#: Distribution families supported by :class:`ParameterVariation`.
DISTRIBUTIONS: Tuple[str, ...] = ("normal", "lognormal", "truncated_normal")


@dataclass(frozen=True)
class ParameterVariation:
    """How one silicon knob varies die to die.

    Parameters
    ----------
    parameter:
        Knob name; one of :data:`NOMINAL_PARAMETERS`.
    distribution:
        ``"normal"`` (``center + sigma * z``), ``"lognormal"``
        (``center * exp(sigma * z)``; *center* is the median) or
        ``"truncated_normal"`` (a normal clipped to ``[lower, upper]``).
    center:
        Location of the distribution (mean for normal, median for
        lognormal).  Defaults to the knob's nominal value.
    sigma:
        Spread: the standard deviation of the underlying normal.
    lower / upper:
        Optional clip bounds applied to the transformed values.  At least
        one is required for ``"truncated_normal"``.
    """

    parameter: str
    distribution: str = "normal"
    center: Optional[float] = None
    sigma: float = 0.0
    lower: Optional[float] = None
    upper: Optional[float] = None

    def __post_init__(self) -> None:
        if self.parameter not in NOMINAL_PARAMETERS:
            raise ConfigurationError(
                f"unknown variation parameter {self.parameter!r}; "
                f"known: {sorted(NOMINAL_PARAMETERS)}"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}; "
                f"known: {list(DISTRIBUTIONS)}"
            )
        ensure_non_negative(self.sigma, "sigma")
        if self.center is None:
            object.__setattr__(
                self, "center", NOMINAL_PARAMETERS[self.parameter]
            )
        if self.lower is not None and self.upper is not None:
            if self.lower > self.upper:
                raise ConfigurationError("lower bound must not exceed upper")
        if self.distribution == "truncated_normal":
            if self.lower is None and self.upper is None:
                raise ConfigurationError(
                    "truncated_normal needs a lower and/or upper bound"
                )

    def transform(self, normals: np.ndarray) -> np.ndarray:
        """Map standard-normal draws to parameter values (vectorized)."""
        z = np.asarray(normals, dtype=float)
        if self.distribution == "lognormal":
            values = self.center * np.exp(self.sigma * z)
        else:
            values = self.center + self.sigma * z
        if self.lower is not None or self.upper is not None:
            values = np.clip(values, self.lower, self.upper)
        return values

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this variation."""
        return {
            "parameter": self.parameter,
            "distribution": self.distribution,
            "center": self.center,
            "sigma": self.sigma,
            "lower": self.lower,
            "upper": self.upper,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ParameterVariation":
        """Rebuild a variation from a :meth:`to_dict` payload."""
        return cls(**dict(data))


def cholesky_factor(matrix: Sequence[Sequence[float]]) -> np.ndarray:
    """Lower-triangular Cholesky factor of a validated correlation matrix.

    The matrix must be square, symmetric, carry a unit diagonal, and be
    positive definite; violations raise
    :class:`~repro.common.errors.ConfigurationError` instead of leaking
    numpy's :class:`~numpy.linalg.LinAlgError`.
    """
    corr = np.asarray(matrix, dtype=float)
    if corr.ndim != 2 or corr.shape[0] != corr.shape[1]:
        raise ConfigurationError(
            f"correlation matrix must be square, got shape {corr.shape}"
        )
    if not np.allclose(corr, corr.T, atol=1e-12):
        raise ConfigurationError("correlation matrix must be symmetric")
    if not np.allclose(np.diag(corr), 1.0, atol=1e-12):
        raise ConfigurationError("correlation matrix needs a unit diagonal")
    try:
        return np.linalg.cholesky(corr)
    except np.linalg.LinAlgError:
        raise ConfigurationError(
            "correlation matrix is not positive definite"
        ) from None


@dataclass(frozen=True)
class VariationModel:
    """A set of parameter variations, optionally correlated.

    Parameters
    ----------
    variations:
        One :class:`ParameterVariation` per varied knob (unique knobs).
    correlation:
        Optional correlation matrix between the *underlying standard
        normals* of the variations, in ``variations`` order.  ``None``
        draws every knob independently.
    """

    variations: Tuple[ParameterVariation, ...]
    correlation: Optional[Tuple[Tuple[float, ...], ...]] = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "variations", tuple(self.variations))
        if not self.variations:
            raise ConfigurationError(
                "a variation model needs at least one parameter variation"
            )
        names = [variation.parameter for variation in self.variations]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate variation parameters in {names}"
            )
        if self.correlation is not None:
            rows = tuple(tuple(float(x) for x in row) for row in self.correlation)
            object.__setattr__(self, "correlation", rows)
            factor = cholesky_factor(rows)
            if factor.shape[0] != len(self.variations):
                raise ConfigurationError(
                    f"correlation matrix is {factor.shape[0]}x{factor.shape[0]} "
                    f"but the model varies {len(self.variations)} parameters"
                )

    @property
    def parameters(self) -> Tuple[str, ...]:
        """Varied knob names, in draw order."""
        return tuple(variation.parameter for variation in self.variations)

    def cholesky(self) -> Optional[np.ndarray]:
        """Cholesky factor of the correlation matrix (``None`` if diagonal)."""
        if self.correlation is None:
            return None
        return cholesky_factor(self.correlation)

    def draw(self, count: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Draw *count* dice worth of parameter values from *rng*.

        One ``(count, knobs)`` standard-normal matrix is drawn, correlated
        through the Cholesky factor, and pushed through each parameter's
        transform — so a fixed seed yields bitwise-identical populations.
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        normals = rng.standard_normal((count, len(self.variations)))
        factor = self.cholesky()
        if factor is not None:
            normals = normals @ factor.T
        return {
            variation.parameter: variation.transform(normals[:, column])
            for column, variation in enumerate(self.variations)
        }

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this model."""
        return {
            "variations": [variation.to_dict() for variation in self.variations],
            "correlation": (
                [list(row) for row in self.correlation]
                if self.correlation is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VariationModel":
        """Rebuild a model from a :meth:`to_dict` payload."""
        correlation = data.get("correlation")
        return cls(
            variations=tuple(
                ParameterVariation.from_dict(entry) for entry in data["variations"]
            ),
            correlation=(
                tuple(tuple(row) for row in correlation)
                if correlation is not None
                else None
            ),
        )


def skylake_process_variation() -> VariationModel:
    """A plausible 14 nm client-die variation model.

    Spreads are in the range process literature quotes for mature FinFET
    nodes; the correlation block encodes the classic process corners: leaky
    dice are fast dice (leakage up, V/F requirement down) and slow dice have
    higher Vmin.  Thermal-interface quality and power-gate resistance vary
    independently of the transistor corner.
    """
    variations = (
        ParameterVariation("leakage_scale", "lognormal", sigma=0.20),
        ParameterVariation(
            "leakage_kt_delta_per_c", "normal", sigma=0.0012,
            lower=-0.004, upper=0.004,
        ),
        ParameterVariation(
            "vf_offset_v", "normal", sigma=0.020, lower=-0.06, upper=0.06
        ),
        ParameterVariation(
            "vmin_offset_v", "normal", sigma=0.012, lower=-0.05, upper=0.05
        ),
        ParameterVariation("thermal_resistance_scale", "lognormal", sigma=0.05),
        ParameterVariation("powergate_resistance_scale", "lognormal", sigma=0.08),
    )
    correlation = (
        (1.00, 0.30, -0.55, -0.25, 0.0, 0.0),
        (0.30, 1.00, -0.20, -0.10, 0.0, 0.0),
        (-0.55, -0.20, 1.00, 0.45, 0.0, 0.0),
        (-0.25, -0.10, 0.45, 1.00, 0.0, 0.0),
        (0.0, 0.0, 0.0, 0.0, 1.00, 0.0),
        (0.0, 0.0, 0.0, 0.0, 0.0, 1.00),
    )
    return VariationModel(variations=variations, correlation=correlation)
