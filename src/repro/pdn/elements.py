"""Lumped circuit elements used to model the power-delivery network.

Only three element kinds are needed to reproduce the paper's impedance
analysis: resistors, inductors, and capacitors.  Each element exposes its
complex admittance at a given angular frequency so the netlist can stamp it
into a nodal-analysis matrix, and its behaviour at DC so the load-line and
droop models can reuse the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import ensure_non_negative, ensure_positive

_OPEN_CIRCUIT_ADMITTANCE = 0.0 + 0.0j


@dataclass(frozen=True)
class Resistor:
    """An ideal resistor.

    Parameters
    ----------
    resistance_ohm:
        Resistance in ohms.  Must be strictly positive; a "shorting" branch
        (for example a bypassed power-gate) should use a small but non-zero
        value so the admittance matrix stays well conditioned.
    """

    resistance_ohm: float

    def __post_init__(self) -> None:
        ensure_positive(self.resistance_ohm, "resistance_ohm")

    def admittance(self, omega_rad_s: float) -> complex:
        """Complex admittance at angular frequency *omega_rad_s*."""
        del omega_rad_s  # resistors are frequency independent
        return 1.0 / self.resistance_ohm + 0.0j

    def dc_resistance(self) -> float:
        """Series resistance at DC, used by the load-line model."""
        return self.resistance_ohm


@dataclass(frozen=True)
class Inductor:
    """An inductor with an optional series resistance (DCR).

    Parameters
    ----------
    inductance_h:
        Inductance in henries.
    series_resistance_ohm:
        Parasitic series resistance in ohms (may be zero).
    """

    inductance_h: float
    series_resistance_ohm: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.inductance_h, "inductance_h")
        ensure_non_negative(self.series_resistance_ohm, "series_resistance_ohm")

    def admittance(self, omega_rad_s: float) -> complex:
        """Complex admittance of the series R + L branch."""
        impedance = self.series_resistance_ohm + 1j * omega_rad_s * self.inductance_h
        if impedance == 0:
            # Ideal inductor at DC is a short circuit; represent it with a
            # very large (but finite) admittance to keep the matrix solvable.
            return 1e12 + 0.0j
        return 1.0 / impedance

    def dc_resistance(self) -> float:
        """Series resistance at DC (an ideal inductor is a DC short)."""
        return self.series_resistance_ohm


@dataclass(frozen=True)
class Capacitor:
    """A capacitor with optional equivalent series resistance and inductance.

    Real decoupling capacitors are not ideal: their effective impedance is a
    series R-L-C.  The equivalent series inductance (ESL) is what creates the
    anti-resonance peaks visible in the paper's Fig. 4.

    Parameters
    ----------
    capacitance_f:
        Capacitance in farads.
    esr_ohm:
        Equivalent series resistance in ohms.
    esl_h:
        Equivalent series inductance in henries.
    """

    capacitance_f: float
    esr_ohm: float = 0.0
    esl_h: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.capacitance_f, "capacitance_f")
        ensure_non_negative(self.esr_ohm, "esr_ohm")
        ensure_non_negative(self.esl_h, "esl_h")

    def admittance(self, omega_rad_s: float) -> complex:
        """Complex admittance of the series C + ESR + ESL branch."""
        if omega_rad_s == 0:
            # A capacitor blocks DC entirely.
            return _OPEN_CIRCUIT_ADMITTANCE
        impedance = (
            self.esr_ohm
            + 1j * omega_rad_s * self.esl_h
            + 1.0 / (1j * omega_rad_s * self.capacitance_f)
        )
        return 1.0 / impedance

    def dc_resistance(self) -> float:
        """A capacitor is an open circuit at DC."""
        return float("inf")

    def self_resonance_hz(self) -> float:
        """Series self-resonant frequency of the capacitor, in Hz.

        Below this frequency the part behaves capacitively, above it the ESL
        dominates.  Returns ``inf`` for an ideal capacitor with no ESL.
        """
        if self.esl_h == 0:
            return float("inf")
        import math

        return 1.0 / (2.0 * math.pi * math.sqrt(self.esl_h * self.capacitance_f))
