"""Declarative transient load scenarios for the droop simulator.

The paper's transient ("droop") guardband story (Section 2.4.2, Figs. 4-6)
revolves around a handful of di/dt events: a power-gated core waking up, an
AVX burst starting mid-workload, several cores waking in a staggered
sequence, and the comparison of each event on the gated versus bypassed
network.  This module gives those events a declarative form:

* :class:`LoadTrace` — an immutable piecewise-linear load-current waveform
  ``i(t)`` with vectorized sampling and composition operators
  (:meth:`~LoadTrace.then`, :meth:`~LoadTrace.overlay`,
  :meth:`~LoadTrace.repeated`, ...).
* :class:`TraceBuilder` — an event builder for writing traces as a sequence
  of ``hold`` / ``ramp_to`` / ``step_to`` events.
* Scenario builders — :func:`core_wake_trace`, :func:`avx_burst_trace`,
  :func:`staggered_wake_trace`, and the generic :func:`step_trace`.
* :class:`TransientScenario` — a workload descriptor (``kind ==
  "transient"``) binding a trace to simulation parameters so that
  :meth:`repro.sim.engine.SimulationEngine.run` and
  :class:`repro.analysis.study.Study` can sweep transient scenarios like
  any other workload class.

Everything here is frozen and hashable, so scenarios key study caches and
pickle cleanly across process-pool executors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive


@dataclass(frozen=True)
class LoadTrace:
    """A piecewise-linear load-current waveform at the die node.

    Parameters
    ----------
    name:
        Trace name (used to label study cells and reports).
    times_s:
        Breakpoint times, strictly increasing, starting at 0.
    currents_a:
        Load current at each breakpoint; the current is linear between
        breakpoints and held constant beyond the last one.
    """

    name: str
    times_s: Tuple[float, ...]
    currents_a: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("trace name must be a non-empty string")
        times = tuple(float(t) for t in self.times_s)
        currents = tuple(float(i) for i in self.currents_a)
        if len(times) != len(currents):
            raise ConfigurationError(
                f"trace {self.name!r} has {len(times)} times but "
                f"{len(currents)} currents"
            )
        if len(times) < 2:
            raise ConfigurationError(
                f"trace {self.name!r} needs at least two breakpoints"
            )
        if times[0] != 0.0:
            raise ConfigurationError(
                f"trace {self.name!r} must start at t=0, got {times[0]!r}"
            )
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError(
                f"trace {self.name!r} breakpoint times must be strictly increasing"
            )
        if any(i < 0 for i in currents):
            raise ConfigurationError(
                f"trace {self.name!r} has a negative load current"
            )
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "currents_a", currents)

    # -- sampling ----------------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Time of the last breakpoint."""
        return self.times_s[-1]

    @property
    def peak_current_a(self) -> float:
        """Largest breakpoint current."""
        return max(self.currents_a)

    @property
    def initial_current_a(self) -> float:
        """Load current at t=0 (the network is settled here before the run)."""
        return self.currents_a[0]

    @property
    def final_current_a(self) -> float:
        """Load current held beyond the last breakpoint."""
        return self.currents_a[-1]

    def sample(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorized ``i(t)`` over an array of time points."""
        return np.interp(times_s, self.times_s, self.currents_a)

    def current_a(self, time_s: float) -> float:
        """Scalar ``i(t)``."""
        return float(np.interp(time_s, self.times_s, self.currents_a))

    def __call__(self, time_s: float) -> float:
        # LoadTrace doubles as the load_profile callable of the simulator.
        return self.current_a(time_s)

    # -- composition -------------------------------------------------------------------

    def with_name(self, name: str) -> "LoadTrace":
        """The same waveform under a different name."""
        return replace(self, name=name)

    def shifted(self, delay_s: float) -> "LoadTrace":
        """This trace delayed by *delay_s*, holding its initial current first."""
        ensure_positive(delay_s, "delay_s")
        times = (0.0,) + tuple(t + delay_s for t in self.times_s)
        currents = (self.currents_a[0],) + self.currents_a
        return LoadTrace(name=self.name, times_s=times, currents_a=currents)

    def scaled(self, factor: float) -> "LoadTrace":
        """This trace with every current multiplied by *factor*."""
        ensure_positive(factor, "factor")
        return replace(
            self, currents_a=tuple(i * factor for i in self.currents_a)
        )

    def then(self, other: "LoadTrace", name: Optional[str] = None) -> "LoadTrace":
        """This trace followed by *other* (time-shifted to start at its end)."""
        times = self.times_s + tuple(t + self.duration_s for t in other.times_s[1:])
        currents = self.currents_a + other.currents_a[1:]
        return LoadTrace(
            name=name or f"{self.name}+{other.name}",
            times_s=times,
            currents_a=currents,
        )

    def overlay(self, other: "LoadTrace", name: Optional[str] = None) -> "LoadTrace":
        """Sum of this trace and *other* (union of breakpoints)."""
        times = tuple(sorted(set(self.times_s) | set(other.times_s)))
        grid = np.array(times)
        currents = tuple((self.sample(grid) + other.sample(grid)).tolist())
        return LoadTrace(
            name=name or f"{self.name}|{other.name}",
            times_s=times,
            currents_a=currents,
        )

    def repeated(self, count: int, period_s: Optional[float] = None) -> "LoadTrace":
        """This trace repeated *count* times, one copy every *period_s*.

        Between copies the final current is held (the waveform a periodic
        event actually produces), not ramped toward the next copy's start.
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        period = period_s if period_s is not None else self.duration_s
        if period < self.duration_s:
            raise ConfigurationError(
                "period_s must be at least the trace duration"
            )
        times = list(self.times_s)
        currents = list(self.currents_a)
        for index in range(1, count):
            start = index * period
            if start > times[-1]:
                # Hold the settled current across the gap to the next copy.
                times.append(start)
                currents.append(currents[-1])
            for t, i in zip(self.times_s, self.currents_a):
                if t + start > times[-1]:
                    times.append(t + start)
                    currents.append(i)
        return LoadTrace(
            name=f"{self.name}x{count}",
            times_s=tuple(times),
            currents_a=tuple(currents),
        )

    def settle_tail(self, tail_s: float) -> "LoadTrace":
        """This trace extended by *tail_s* of constant final current."""
        ensure_positive(tail_s, "tail_s")
        return LoadTrace(
            name=self.name,
            times_s=self.times_s + (self.duration_s + tail_s,),
            currents_a=self.currents_a + (self.final_current_a,),
        )


class TraceBuilder:
    """Builds a :class:`LoadTrace` as a sequence of load events.

    Example::

        trace = (
            TraceBuilder(initial_current_a=2.0)
            .hold(100e-9)
            .ramp_to(25.0, 5e-9)     # core wakes over 5 ns
            .hold(1e-6)
            .ramp_to(2.0, 10e-9)     # back to idle
            .hold(1e-6)
            .build("wake_pulse")
        )
    """

    def __init__(self, initial_current_a: float = 0.0) -> None:
        if initial_current_a < 0:
            raise ConfigurationError("initial_current_a must be >= 0")
        self._times: List[float] = [0.0]
        self._currents: List[float] = [initial_current_a]

    def hold(self, duration_s: float) -> "TraceBuilder":
        """Hold the present current for *duration_s*."""
        ensure_positive(duration_s, "duration_s")
        self._times.append(self._times[-1] + duration_s)
        self._currents.append(self._currents[-1])
        return self

    def ramp_to(self, current_a: float, ramp_s: float) -> "TraceBuilder":
        """Ramp linearly to *current_a* over *ramp_s*."""
        if current_a < 0:
            raise ConfigurationError("current_a must be >= 0")
        ensure_positive(ramp_s, "ramp_s")
        self._times.append(self._times[-1] + ramp_s)
        self._currents.append(current_a)
        return self

    def step_to(self, current_a: float, rise_s: float = 1e-10) -> "TraceBuilder":
        """Near-instantaneous step to *current_a* (a very fast ramp)."""
        return self.ramp_to(current_a, rise_s)

    def build(self, name: str) -> LoadTrace:
        """Finish and return the trace."""
        return LoadTrace(
            name=name,
            times_s=tuple(self._times),
            currents_a=tuple(self._currents),
        )


# -- scenario builders ------------------------------------------------------------------


def step_trace(
    name: str,
    step_current_a: float,
    initial_current_a: float = 0.0,
    rise_time_s: float = 2e-9,
    duration_s: float = 4e-6,
) -> LoadTrace:
    """A single current step: the generic worst-case di/dt event."""
    return (
        TraceBuilder(initial_current_a)
        .ramp_to(step_current_a, rise_time_s)
        .hold(duration_s - rise_time_s)
        .build(name)
    )


def core_wake_trace(
    active_current_a: float = 25.0,
    idle_current_a: float = 0.5,
    wake_ramp_s: float = 5e-9,
    idle_lead_s: float = 50e-9,
    duration_s: float = 4e-6,
) -> LoadTrace:
    """A power-gated core waking up (paper Fig. 5 event).

    The core sits at its gated residual-leakage current, then its
    power-gate segments turn on in a staggered ramp of a few nanoseconds
    and the core starts drawing its active current.
    """
    return (
        TraceBuilder(idle_current_a)
        .hold(idle_lead_s)
        .ramp_to(active_current_a, wake_ramp_s)
        .hold(duration_s - idle_lead_s - wake_ramp_s)
        .build("core_wake")
    )


def avx_burst_trace(
    base_current_a: float = 12.0,
    burst_current_a: float = 30.0,
    rise_time_s: float = 2e-9,
    burst_duration_s: float = 500e-9,
    lead_s: float = 100e-9,
    tail_s: float = 2e-6,
) -> LoadTrace:
    """An AVX burst inside a running workload: up fast, down fast.

    Both edges excite the die resonance; the downward edge additionally
    produces an overshoot above nominal, which is why the trace keeps a
    settling tail after the burst ends.
    """
    return (
        TraceBuilder(base_current_a)
        .hold(lead_s)
        .ramp_to(burst_current_a, rise_time_s)
        .hold(burst_duration_s)
        .ramp_to(base_current_a, rise_time_s)
        .hold(tail_s)
        .build("avx_burst")
    )


def staggered_wake_trace(
    core_count: int = 4,
    per_core_current_a: float = 18.0,
    idle_current_a: float = 0.5,
    stagger_s: float = 150e-9,
    wake_ramp_s: float = 5e-9,
    duration_s: float = 4e-6,
) -> LoadTrace:
    """Several cores waking one after another (firmware-staggered).

    Each wake is the :func:`core_wake_trace` event; the overlays model the
    aggregate current the shared network actually sees, which is what makes
    the staggered case easier on the PDN than an aligned multi-core wake.
    """
    if core_count < 1:
        raise ConfigurationError("core_count must be >= 1")
    trace = core_wake_trace(
        active_current_a=per_core_current_a,
        idle_current_a=idle_current_a,
        duration_s=duration_s,
        wake_ramp_s=wake_ramp_s,
    )
    combined = trace
    for index in range(1, core_count):
        combined = combined.overlay(trace.shifted(index * stagger_s))
    return combined.with_name("staggered_wake")


def multi_event_trace(duration_s: float = 4e-6) -> LoadTrace:
    """A composite scenario: a core wakes, then runs into an AVX burst."""
    wake = core_wake_trace(duration_s=duration_s / 2.0)
    burst = avx_burst_trace(
        base_current_a=wake.final_current_a,
        burst_current_a=wake.final_current_a + 12.0,
        tail_s=max(duration_s / 2.0 - 704e-9, 200e-9),
    )
    return wake.then(burst, name="wake_then_avx")


# -- transient workloads ----------------------------------------------------------------


@dataclass(frozen=True)
class TransientScenario:
    """A transient droop evaluation the simulation engine can run.

    Parameters
    ----------
    name:
        Scenario name (keys study results).
    trace:
        The load-current waveform applied at the die node.
    time_step_s:
        Integration step of the droop simulation.
    duration_s:
        Simulated time; defaults to the trace duration.
    nominal_voltage_v:
        Rail voltage for the run; when ``None`` the engine derives it from
        the firmware's single-core operating point.
    method:
        Integration method passed to :class:`~repro.pdn.droop.DroopSimulator`
        (``None`` uses the simulator default).
    """

    kind: ClassVar[str] = "transient"

    name: str
    trace: LoadTrace
    time_step_s: float = 0.5e-9
    duration_s: Optional[float] = None
    nominal_voltage_v: Optional[float] = None
    method: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be a non-empty string")
        ensure_positive(self.time_step_s, "time_step_s")
        if self.duration_s is not None:
            ensure_positive(self.duration_s, "duration_s")
        if self.nominal_voltage_v is not None:
            ensure_positive(self.nominal_voltage_v, "nominal_voltage_v")

    @property
    def resolved_duration_s(self) -> float:
        """Simulated duration (trace duration unless overridden)."""
        return self.duration_s if self.duration_s is not None else self.trace.duration_s

    @classmethod
    def from_trace(
        cls,
        trace: LoadTrace,
        time_step_s: float = 0.5e-9,
        **kwargs,
    ) -> "TransientScenario":
        """A scenario named after its trace (and time step when non-default)."""
        name = trace.name
        if time_step_s != 0.5e-9:
            name = f"{trace.name}@{time_step_s * 1e9:g}ns"
        return cls(name=name, trace=trace, time_step_s=time_step_s, **kwargs)


def paper_transient_scenarios(
    duration_s: float = 4e-6, time_step_s: float = 0.5e-9
) -> Tuple[TransientScenario, ...]:
    """The four transient scenarios of the paper's droop discussion.

    Core wake, AVX burst, staggered multi-core wake, and a composite
    wake-then-AVX trace.  Run the same scenarios over a gated spec (e.g.
    ``"baseline"``) and a bypassed spec (``"darkgates"``) to reproduce the
    gated-versus-bypassed droop comparison of Fig. 6.
    """
    traces: Sequence[LoadTrace] = (
        core_wake_trace(duration_s=duration_s),
        avx_burst_trace(),
        staggered_wake_trace(duration_s=duration_s),
        multi_event_trace(duration_s=duration_s),
    )
    return tuple(
        TransientScenario.from_trace(trace, time_step_s=time_step_s)
        for trace in traces
    )
