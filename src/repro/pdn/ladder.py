"""Skylake-class PDN topology builder.

The builder produces two views of the same physical network:

* a :class:`~repro.pdn.netlist.Netlist` for small-signal AC impedance
  analysis (the paper's Fig. 4), and
* a list of :class:`LadderStage` objects for the time-domain droop simulator.

Two configurations are supported, matching the paper's Fig. 1 and Fig. 6:

* **gated** (Skylake-H / mobile) — the shared ungated domain ``VCU`` feeds
  four per-core gated domains ``VC0G..VC3G`` through per-core power-gates.
  The die MIM capacitance is partitioned between the gated domains, and each
  core only "sees" its own slice of package routing.
* **bypassed** (Skylake-S / desktop, DarkGates) — the package shorts all five
  domains into one.  Every core shares all MIM capacitance, all package
  decaps, and all package routing, and the gate resistance disappears from
  the supply path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range, ensure_positive
from repro.pdn.decap import (
    CapacitorBank,
    board_bulk_bank,
    die_mim_bank,
    package_decap_bank,
)
from repro.pdn.elements import Inductor
from repro.pdn.netlist import GROUND, Netlist
from repro.pdn.powergate import PowerGate
from repro.pdn.vr import VoltageRegulator

#: Node names used by the builder.
VR_NODE = "vr_out"
SOCKET_NODE = "socket"
PACKAGE_NODE = "vcu"


def core_node(index: int) -> str:
    """Die-side supply node of core *index* (``VC{i}G`` in the paper)."""
    return f"vc{index}g"


@dataclass(frozen=True)
class LadderStage:
    """One series R-L plus shunt capacitor stage of the simplified ladder.

    The droop simulator consumes the ladder representation because a chain of
    identical-topology stages admits a compact state-space form.
    """

    name: str
    series_resistance_ohm: float
    series_inductance_h: float
    shunt_capacitance_f: float
    shunt_esr_ohm: float

    def __post_init__(self) -> None:
        ensure_positive(self.series_resistance_ohm, "series_resistance_ohm")
        ensure_positive(self.series_inductance_h, "series_inductance_h")
        ensure_positive(self.shunt_capacitance_f, "shunt_capacitance_f")
        if self.shunt_esr_ohm < 0:
            raise ConfigurationError("shunt_esr_ohm must be >= 0")


@dataclass(frozen=True)
class PdnConfiguration:
    """Component values of the Skylake-class core-domain PDN.

    The defaults are calibrated so that the *gated* configuration lands in the
    impedance range of the paper's Fig. 4 red curve (roughly 5 mOhm at a few
    hundred kHz rising to ~16 mOhm at the die resonance) and the *bypassed*
    configuration lands near the blue curve (roughly half of that).

    Parameters
    ----------
    core_count:
        Number of CPU cores fed from the shared VR.
    vr:
        Motherboard voltage-regulator model; its load-line plus output
        parasitics form the low-frequency end of the profile.
    board_resistance_ohm / board_inductance_h:
        Motherboard plane and socket parasitics between VR and package.
    package_resistance_ohm / package_inductance_h:
        Package routing parasitics of the shared (ungated) domain.
    core_grid_resistance_ohm / core_grid_inductance_h:
        Die power-grid parasitics from the ungated domain to one core,
        *excluding* the power-gate itself.
    power_gate:
        Per-core power-gate electrical model (ignored when bypassed).
    bypassed:
        When True the per-core domains are shorted into the shared domain.
    package_routing_sharing_factor:
        Multiplier (< 1) applied to package R/L when bypassed, capturing the
        extra routing resources shared between cores (paper Section 4.1).
    die_grid_sharing_factor:
        Multiplier (< 1) applied to the die-grid R/L when bypassed, since all
        cores' grid straps work in parallel for any one core's current.
    board_bulk / package_decaps / die_mim:
        Decoupling capacitor banks at the socket, package, and die.
    """

    core_count: int = 4
    vr: VoltageRegulator = field(
        default_factory=lambda: VoltageRegulator(name="mbvr", loadline_ohm=1.8e-3)
    )
    board_resistance_ohm: float = 0.35e-3
    board_inductance_h: float = 70e-12
    package_resistance_ohm: float = 0.75e-3
    package_inductance_h: float = 14e-12
    core_grid_resistance_ohm: float = 1.3e-3
    core_grid_inductance_h: float = 8.0e-12
    power_gate: PowerGate = field(
        default_factory=lambda: PowerGate.sized_for_core(
            name="core_pg", core_area_mm2=8.5, area_overhead_fraction=0.03
        )
    )
    bypassed: bool = False
    package_routing_sharing_factor: float = 0.62
    die_grid_sharing_factor: float = 0.42
    board_bulk: CapacitorBank = field(default_factory=board_bulk_bank)
    package_decaps: CapacitorBank = field(default_factory=package_decap_bank)
    die_mim: CapacitorBank = field(default_factory=die_mim_bank)

    def __post_init__(self) -> None:
        if self.core_count < 1:
            raise ConfigurationError(f"core_count must be >= 1, got {self.core_count}")
        ensure_positive(self.board_resistance_ohm, "board_resistance_ohm")
        ensure_positive(self.board_inductance_h, "board_inductance_h")
        ensure_positive(self.package_resistance_ohm, "package_resistance_ohm")
        ensure_positive(self.package_inductance_h, "package_inductance_h")
        ensure_positive(self.core_grid_resistance_ohm, "core_grid_resistance_ohm")
        ensure_positive(self.core_grid_inductance_h, "core_grid_inductance_h")
        ensure_in_range(
            self.package_routing_sharing_factor,
            0.05,
            1.0,
            "package_routing_sharing_factor",
        )
        ensure_in_range(
            self.die_grid_sharing_factor, 0.05, 1.0, "die_grid_sharing_factor"
        )

    # -- derived configurations -----------------------------------------------------

    def with_bypass(self) -> "PdnConfiguration":
        """This configuration with the power-gates bypassed (Skylake-S)."""
        return replace(self, bypassed=True)

    def with_gates(self) -> "PdnConfiguration":
        """This configuration with the power-gates in the path (Skylake-H)."""
        return replace(self, bypassed=False)

    # -- effective component values ---------------------------------------------------

    def effective_package_resistance_ohm(self) -> float:
        """Package routing resistance after any bypass sharing."""
        if self.bypassed:
            return self.package_resistance_ohm * self.package_routing_sharing_factor
        return self.package_resistance_ohm

    def effective_package_inductance_h(self) -> float:
        """Package routing inductance after any bypass sharing."""
        if self.bypassed:
            return self.package_inductance_h * self.package_routing_sharing_factor
        return self.package_inductance_h

    def effective_die_path_resistance_ohm(self) -> float:
        """Die-grid (plus gate, if present) resistance seen by one core."""
        if self.bypassed:
            return self.core_grid_resistance_ohm * self.die_grid_sharing_factor
        return self.core_grid_resistance_ohm + self.power_gate.on_resistance_ohm

    def effective_die_path_inductance_h(self) -> float:
        """Die-grid inductance seen by one core."""
        if self.bypassed:
            return self.core_grid_inductance_h * self.die_grid_sharing_factor
        return self.core_grid_inductance_h

    def effective_die_mim(self) -> CapacitorBank:
        """The MIM capacitance available to one core's supply node."""
        if self.bypassed:
            return self.die_mim
        return self.die_mim.split(self.core_count)


class SkylakePdnBuilder:
    """Builds netlist and ladder views of a Skylake-class core-domain PDN."""

    def __init__(self, configuration: Optional[PdnConfiguration] = None) -> None:
        self._configuration = configuration or PdnConfiguration()

    @property
    def configuration(self) -> PdnConfiguration:
        """The configuration this builder instantiates."""
        return self._configuration

    # -- netlist view --------------------------------------------------------------

    def build_netlist(self) -> Netlist:
        """Build the AC-analysis netlist for the configured PDN."""
        cfg = self._configuration
        netlist = Netlist()

        # VR closed-loop output impedance: the regulated source is an AC
        # short behind its load-line resistance and output inductance.
        netlist.add(
            "vr_output",
            GROUND,
            VR_NODE,
            Inductor(
                inductance_h=cfg.vr.output_inductance_h,
                series_resistance_ohm=cfg.vr.loadline_ohm + cfg.vr.output_resistance_ohm,
            ),
        )

        # Board plane and socket up to the package balls.
        netlist.add(
            "board_path",
            VR_NODE,
            SOCKET_NODE,
            Inductor(
                inductance_h=cfg.board_inductance_h,
                series_resistance_ohm=cfg.board_resistance_ohm,
            ),
        )
        netlist.add("board_bulk", SOCKET_NODE, GROUND, cfg.board_bulk.as_capacitor())

        # Package routing of the shared (ungated) domain plus its decaps.
        netlist.add(
            "package_path",
            SOCKET_NODE,
            PACKAGE_NODE,
            Inductor(
                inductance_h=cfg.effective_package_inductance_h(),
                series_resistance_ohm=cfg.effective_package_resistance_ohm(),
            ),
        )
        netlist.add(
            "package_decaps", PACKAGE_NODE, GROUND, cfg.package_decaps.as_capacitor()
        )

        if cfg.bypassed:
            self._add_bypassed_die(netlist, cfg)
        else:
            self._add_gated_die(netlist, cfg)
        return netlist

    def observation_node(self) -> str:
        """Node at which a core observes its supply (for impedance sweeps)."""
        if self._configuration.bypassed:
            return PACKAGE_NODE
        return core_node(0)

    def _add_gated_die(self, netlist: Netlist, cfg: PdnConfiguration) -> None:
        per_core_mim = cfg.effective_die_mim()
        for index in range(cfg.core_count):
            node = core_node(index)
            netlist.add(
                f"die_grid_core{index}",
                PACKAGE_NODE,
                node,
                Inductor(
                    inductance_h=cfg.core_grid_inductance_h,
                    series_resistance_ohm=cfg.core_grid_resistance_ohm
                    + cfg.power_gate.on_resistance_ohm,
                ),
            )
            netlist.add(f"die_mim_core{index}", node, GROUND, per_core_mim.as_capacitor())

    def _add_bypassed_die(self, netlist: Netlist, cfg: PdnConfiguration) -> None:
        # With the domains shorted, the die grid of all cores works in
        # parallel and the full MIM bank hangs on the shared node.  A small
        # residual series path is kept so the die resonance survives.
        netlist.add(
            "die_grid_shared",
            PACKAGE_NODE,
            core_node(0),
            Inductor(
                inductance_h=cfg.effective_die_path_inductance_h(),
                series_resistance_ohm=cfg.effective_die_path_resistance_ohm(),
            ),
        )
        netlist.add("die_mim_shared", core_node(0), GROUND, cfg.die_mim.as_capacitor())

    # -- ladder view ---------------------------------------------------------------

    def build_ladder(self) -> List[LadderStage]:
        """Build the three-stage ladder used by the droop simulator.

        Stage 1: VR + board with bulk capacitance.
        Stage 2: package routing with package decaps.
        Stage 3: die grid (plus gate when not bypassed) with MIM capacitance.
        """
        cfg = self._configuration
        board_bulk = cfg.board_bulk.as_capacitor()
        package_caps = cfg.package_decaps.as_capacitor()
        die_caps = (
            cfg.die_mim.as_capacitor()
            if cfg.bypassed
            else cfg.effective_die_mim().as_capacitor()
        )
        return [
            LadderStage(
                name="vr_board",
                series_resistance_ohm=cfg.vr.loadline_ohm
                + cfg.vr.output_resistance_ohm
                + cfg.board_resistance_ohm,
                series_inductance_h=cfg.vr.output_inductance_h + cfg.board_inductance_h,
                shunt_capacitance_f=board_bulk.capacitance_f,
                shunt_esr_ohm=board_bulk.esr_ohm,
            ),
            LadderStage(
                name="package",
                series_resistance_ohm=cfg.effective_package_resistance_ohm(),
                series_inductance_h=cfg.effective_package_inductance_h(),
                shunt_capacitance_f=package_caps.capacitance_f,
                shunt_esr_ohm=package_caps.esr_ohm,
            ),
            LadderStage(
                name="die",
                series_resistance_ohm=cfg.effective_die_path_resistance_ohm(),
                series_inductance_h=cfg.effective_die_path_inductance_h(),
                shunt_capacitance_f=die_caps.capacitance_f,
                shunt_esr_ohm=die_caps.esr_ohm,
            ),
        ]

    # -- DC properties --------------------------------------------------------------

    def dc_resistance_ohm(self) -> float:
        """Total DC supply-path resistance seen by one core.

        This is the resistance that converts worst-case (power-virus) current
        into the IR-drop portion of the voltage guardband.
        """
        cfg = self._configuration
        return (
            cfg.vr.loadline_ohm
            + cfg.vr.output_resistance_ohm
            + cfg.board_resistance_ohm
            + cfg.effective_package_resistance_ohm()
            + cfg.effective_die_path_resistance_ohm()
        )

    def dc_resistance_beyond_loadline_ohm(self) -> float:
        """DC resistance downstream of the load-line (board + package + die).

        The VR's load-line droop is already compensated by adaptive voltage
        positioning, so only the resistance *behind* it needs an explicit IR
        guardband in the firmware's budget.
        """
        cfg = self._configuration
        return (
            cfg.vr.output_resistance_ohm
            + cfg.board_resistance_ohm
            + cfg.effective_package_resistance_ohm()
            + cfg.effective_die_path_resistance_ohm()
        )
