"""Motherboard voltage-regulator (MBVR) model.

The Skylake-S/H parts modelled in this library use a motherboard voltage
regulator shared by all CPU cores (paper Section 2.3).  For PDN analysis the
VR is an ideal voltage source behind an output impedance; for the firmware
model it is the component that accepts SVID voltage requests, enforces the
electrical limits (TDC/EDC), and implements the load-line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConstraintViolation
from repro.common.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class VoltageRegulator:
    """A motherboard CPU-core voltage regulator.

    Parameters
    ----------
    name:
        Identifier used in reports.
    loadline_ohm:
        Load-line (adaptive voltage positioning) resistance.  Recent client
        parts use 1.6 mOhm – 2.4 mOhm (paper Section 2.3).
    output_inductance_h:
        Effective output inductance of the VR plus its bulk filter, seen by
        the processor socket.
    output_resistance_ohm:
        Parasitic output resistance of the VR power stage and board plane,
        *excluding* the load-line (the load-line is a control behaviour, not
        a physical resistor, but it has the same V/I signature).
    tdc_a:
        Thermal design current — sustained current limit (paper Sec. 2.4.2).
    edc_a:
        Electrical design current (Iccmax / PL4) — instantaneous current
        limit (paper Sec. 2.4.2).
    vmax_v:
        Maximum voltage the VR will serve, matching the processor Vmax.
    min_voltage_v:
        Lowest programmable output voltage.
    """

    name: str
    loadline_ohm: float
    output_inductance_h: float = 150e-12
    output_resistance_ohm: float = 0.2e-3
    tdc_a: float = 100.0
    edc_a: float = 140.0
    vmax_v: float = 1.52
    min_voltage_v: float = 0.55

    def __post_init__(self) -> None:
        ensure_positive(self.loadline_ohm, "loadline_ohm")
        ensure_positive(self.output_inductance_h, "output_inductance_h")
        ensure_non_negative(self.output_resistance_ohm, "output_resistance_ohm")
        ensure_positive(self.tdc_a, "tdc_a")
        ensure_positive(self.edc_a, "edc_a")
        ensure_positive(self.vmax_v, "vmax_v")
        ensure_positive(self.min_voltage_v, "min_voltage_v")

    # -- load-line behaviour ----------------------------------------------------

    def output_voltage(self, setpoint_v: float, current_a: float) -> float:
        """Voltage at the VR output for a given setpoint and load current.

        The VR positions its output *setpoint_v* at zero current and lets it
        droop along the load-line as current increases:
        ``Vout = Vset - R_LL * Icc`` (paper Fig. 2(b)).
        """
        self.check_current(current_a)
        return setpoint_v - self.loadline_ohm * current_a

    def required_setpoint(self, load_voltage_v: float, current_a: float) -> float:
        """Setpoint needed so the load sees *load_voltage_v* at *current_a*."""
        return load_voltage_v + self.loadline_ohm * current_a

    # -- limit enforcement --------------------------------------------------------

    def check_current(self, current_a: float) -> float:
        """Validate an instantaneous current draw against the EDC limit."""
        ensure_non_negative(current_a, "current_a")
        if current_a > self.edc_a:
            raise ConstraintViolation("EDC (Iccmax)", current_a, self.edc_a)
        return current_a

    def check_sustained_current(self, current_a: float) -> float:
        """Validate a sustained current draw against the TDC limit."""
        ensure_non_negative(current_a, "current_a")
        if current_a > self.tdc_a:
            raise ConstraintViolation("TDC", current_a, self.tdc_a)
        return current_a

    def clamp_setpoint(self, setpoint_v: float) -> float:
        """Clamp a requested setpoint into the programmable range."""
        return min(self.vmax_v, max(self.min_voltage_v, setpoint_v))

    def is_setpoint_allowed(self, setpoint_v: float) -> bool:
        """True when the requested setpoint is within the programmable range."""
        return self.min_voltage_v <= setpoint_v <= self.vmax_v
