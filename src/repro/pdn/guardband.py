"""Voltage-guardband derivation from PDN characteristics.

The voltage guardband is the extra voltage the power-management firmware
adds on top of the silicon's nominal V/F requirement so that the weakest
spot of the die never sees less than its minimum functional voltage, even
under the worst-case (power-virus) current and the worst-case transient
droop.  The guardband is pure overhead: it raises power quadratically when
running and, crucially for this paper, it eats into the Vmax headroom and
therefore lowers the maximum attainable frequency (Fmax).

The guardband model here mirrors how the paper reasons about it:

* an **IR-drop component** proportional to the DC resistance of the supply
  path beyond the VR's load-line compensation (package routing plus die
  grid plus, in the gated configuration, the power-gate itself);
* a **transient-droop component** proportional to the peak AC impedance of
  the network (Fig. 4) and the size of fast current steps;
* a **reliability component** (Section 4.2) compensating additional aging
  stress, supplied by :mod:`repro.reliability`;
* a **fixed component** for sensor/process margin, identical in both
  configurations.

Because the bypassed network has roughly half the resistance and half the
peak impedance of the gated one, the first two components halve, which is
exactly Observation 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range, ensure_non_negative
from repro.pdn.ac import ACAnalysis, ImpedanceProfile
from repro.pdn.droop import DroopResult, DroopSimulator
from repro.pdn.ladder import PdnConfiguration, SkylakePdnBuilder
from repro.pdn.loadline import PowerVirusLevel

#: Transient-droop guardband derivations supported by :class:`GuardbandModel`.
DROOP_MODELS = ("impedance", "simulated")


@dataclass(frozen=True)
class GuardbandBreakdown:
    """The individual contributions to a voltage guardband, in volts."""

    ir_drop_v: float
    transient_droop_v: float
    reliability_v: float
    fixed_margin_v: float

    @property
    def total_v(self) -> float:
        """Total guardband applied on top of the nominal V/F voltage."""
        return (
            self.ir_drop_v
            + self.transient_droop_v
            + self.reliability_v
            + self.fixed_margin_v
        )

    def scaled(self, factor: float) -> "GuardbandBreakdown":
        """Return a breakdown with the PDN-dependent parts scaled by *factor*.

        Only the IR and transient components scale with the network; the
        reliability and fixed margins are independent of impedance.
        """
        return GuardbandBreakdown(
            ir_drop_v=self.ir_drop_v * factor,
            transient_droop_v=self.transient_droop_v * factor,
            reliability_v=self.reliability_v,
            fixed_margin_v=self.fixed_margin_v,
        )


class GuardbandModel:
    """Derives voltage guardbands for a PDN configuration.

    Parameters
    ----------
    configuration:
        The PDN being guardbanded (gated or bypassed).
    droop_step_fraction:
        Fraction of a single core's virus current assumed to change
        "instantly" (within tens of nanoseconds) and therefore excite the
        peak of the impedance profile.  Calibrated so that the absolute
        guardbands land in the 50 mV - 250 mV range typical of client parts.
    multi_core_droop_growth:
        Per-additional-core growth factor of the transient step, modelling
        partially-aligned activity shifts across cores.
    shared_path_diversity:
        De-rating factor applied to the current of cores beyond the first
        when sizing the shared-path IR guardband; the load-line's adaptive
        positioning already tracks slow multi-core current swings.
    fixed_margin_v:
        Configuration-independent margin for sensors, process, and
        temperature inaccuracy.
    reliability_margin_v:
        Extra guardband for lifetime-reliability compensation; the DarkGates
        firmware adds less than 5 mV / 20 mV at high / low TDP (Section 4.2).
    per_core_virus_current_a:
        Worst-case current drawn by a single core; used for the die-grid
        portion of the IR drop (the shared path carries the full virus
        current, each core's grid only its own share).
    droop_model:
        How the transient component is derived: ``"impedance"`` (default)
        sizes it from the peak of the AC impedance profile, the standard
        target-impedance rule; ``"simulated"`` runs the vectorized
        time-domain droop simulator on the worst-case current step and uses
        the observed transient overshoot beyond the DC drop (the IR
        component already covers the DC part).
    droop_sim_nominal_v / droop_sim_rise_time_s / droop_sim_duration_s /
    droop_sim_time_step_s:
        Operating point and integration parameters of the ``"simulated"``
        derivation; ignored by ``"impedance"``.
    """

    def __init__(
        self,
        configuration: PdnConfiguration,
        droop_step_fraction: float = 0.40,
        fixed_margin_v: float = 0.018,
        reliability_margin_v: float = 0.0,
        per_core_virus_current_a: float = 30.0,
        multi_core_droop_growth: float = 0.15,
        shared_path_diversity: float = 0.55,
        droop_model: str = "impedance",
        droop_sim_nominal_v: float = 1.0,
        droop_sim_rise_time_s: float = 2e-9,
        droop_sim_duration_s: float = 2e-6,
        droop_sim_time_step_s: float = 0.5e-9,
    ) -> None:
        ensure_in_range(droop_step_fraction, 0.0, 1.0, "droop_step_fraction")
        ensure_non_negative(fixed_margin_v, "fixed_margin_v")
        ensure_non_negative(reliability_margin_v, "reliability_margin_v")
        ensure_non_negative(per_core_virus_current_a, "per_core_virus_current_a")
        ensure_in_range(multi_core_droop_growth, 0.0, 1.0, "multi_core_droop_growth")
        ensure_in_range(shared_path_diversity, 0.0, 1.0, "shared_path_diversity")
        if droop_model not in DROOP_MODELS:
            raise ConfigurationError(
                f"unknown droop model {droop_model!r}; known: {list(DROOP_MODELS)}"
            )
        self._configuration = configuration
        self._builder = SkylakePdnBuilder(configuration)
        self._droop_step_fraction = droop_step_fraction
        self._fixed_margin_v = fixed_margin_v
        self._reliability_margin_v = reliability_margin_v
        self._per_core_virus_current_a = per_core_virus_current_a
        self._multi_core_droop_growth = multi_core_droop_growth
        self._shared_path_diversity = shared_path_diversity
        self._droop_model = droop_model
        self._droop_sim_nominal_v = droop_sim_nominal_v
        self._droop_sim_rise_time_s = droop_sim_rise_time_s
        self._droop_sim_duration_s = droop_sim_duration_s
        self._droop_sim_time_step_s = droop_sim_time_step_s
        self._cached_profile: Optional[ImpedanceProfile] = None
        self._cached_simulator: Optional[DroopSimulator] = None

    # -- properties ------------------------------------------------------------------

    @property
    def configuration(self) -> PdnConfiguration:
        """The PDN configuration this model guardbands."""
        return self._configuration

    @property
    def reliability_margin_v(self) -> float:
        """Reliability guardband currently applied."""
        return self._reliability_margin_v

    @property
    def droop_model(self) -> str:
        """Transient-droop derivation in use (``"impedance"`` or ``"simulated"``)."""
        return self._droop_model

    def with_reliability_margin(self, margin_v: float) -> "GuardbandModel":
        """Return a copy of this model with a different reliability margin."""
        return GuardbandModel(
            configuration=self._configuration,
            droop_step_fraction=self._droop_step_fraction,
            fixed_margin_v=self._fixed_margin_v,
            reliability_margin_v=margin_v,
            per_core_virus_current_a=self._per_core_virus_current_a,
            multi_core_droop_growth=self._multi_core_droop_growth,
            shared_path_diversity=self._shared_path_diversity,
            droop_model=self._droop_model,
            droop_sim_nominal_v=self._droop_sim_nominal_v,
            droop_sim_rise_time_s=self._droop_sim_rise_time_s,
            droop_sim_duration_s=self._droop_sim_duration_s,
            droop_sim_time_step_s=self._droop_sim_time_step_s,
        )

    # -- components -------------------------------------------------------------------

    def impedance_profile(self) -> ImpedanceProfile:
        """Impedance profile of the configured network (cached)."""
        if self._cached_profile is None:
            netlist = self._builder.build_netlist()
            analysis = ACAnalysis(netlist, self._builder.observation_node())
            label = "bypassed" if self._configuration.bypassed else "gated"
            self._cached_profile = analysis.sweep(label=label)
        return self._cached_profile

    def ir_drop_v(self, virus_level: PowerVirusLevel) -> float:
        """IR-drop guardband for *virus_level*.

        The shared path (VR output parasitics, board, package) carries the
        combined current of every covered core while each core's die grid
        (and power-gate, when present) carries only that core's share.  The
        current beyond the first core is de-rated by ``shared_path_diversity``
        because the worst-case alignment of all cores is already partially
        absorbed by the load-line's adaptive positioning.
        """
        cfg = self._configuration
        shared_resistance = (
            cfg.vr.output_resistance_ohm
            + cfg.board_resistance_ohm
            + cfg.effective_package_resistance_ohm()
        )
        per_core_resistance = cfg.effective_die_path_resistance_ohm()
        per_core_current = min(
            self._per_core_virus_current_a, virus_level.virus_current_a
        )
        shared_current = per_core_current + self._shared_path_diversity * max(
            0.0, virus_level.virus_current_a - per_core_current
        )
        return (
            shared_resistance * shared_current
            + per_core_resistance * per_core_current
        )

    def droop_simulator(self) -> DroopSimulator:
        """Vectorized time-domain droop simulator for this network (cached)."""
        if self._cached_simulator is None:
            self._cached_simulator = DroopSimulator(
                self._builder.build_ladder(),
                nominal_voltage_v=self._droop_sim_nominal_v,
            )
        return self._cached_simulator

    def _droop_step_current_a(self, virus_level: PowerVirusLevel) -> float:
        covered_cores = max(1, virus_level.max_active_cores)
        return (
            self._droop_step_fraction
            * self._per_core_virus_current_a
            * (1.0 + self._multi_core_droop_growth * (covered_cores - 1))
        )

    def simulated_droop_result(self, virus_level: PowerVirusLevel) -> DroopResult:
        """Time-domain response to the worst-case step of *virus_level*."""
        return self.droop_simulator().simulate_current_step(
            step_current_a=self._droop_step_current_a(virus_level),
            rise_time_s=self._droop_sim_rise_time_s,
            duration_s=self._droop_sim_duration_s,
            time_step_s=self._droop_sim_time_step_s,
        )

    def transient_droop_v(self, virus_level: PowerVirusLevel) -> float:
        """Transient-droop guardband for *virus_level*.

        With the default ``"impedance"`` model, approximated as the
        worst-case impedance peak excited by a fast current step — the
        standard target-impedance sizing rule of PDN design.  The step is
        sized from the *local* core's virus current (that is what excites
        the die-level resonance the core observes), grown mildly with the
        number of covered cores because simultaneous activity shifts across
        cores add up partially at the shared nodes.

        With the ``"simulated"`` model, the same step is run through the
        vectorized time-domain simulator and the guardband is the observed
        transient overshoot beyond the DC drop (the DC part belongs to the
        IR component).
        """
        if self._droop_model == "simulated":
            return self.simulated_droop_result(virus_level).transient_overshoot_v
        peak_impedance = self.impedance_profile().peak_magnitude_ohm()
        return peak_impedance * self._droop_step_current_a(virus_level)

    # -- totals ------------------------------------------------------------------------

    def breakdown(self, virus_level: PowerVirusLevel) -> GuardbandBreakdown:
        """Full guardband breakdown for *virus_level*."""
        return GuardbandBreakdown(
            ir_drop_v=self.ir_drop_v(virus_level),
            transient_droop_v=self.transient_droop_v(virus_level),
            reliability_v=self._reliability_margin_v,
            fixed_margin_v=self._fixed_margin_v,
        )

    def total_guardband_v(self, virus_level: PowerVirusLevel) -> float:
        """Total guardband for *virus_level*."""
        return self.breakdown(virus_level).total_v


class OffsetGuardbandModel:
    """A guardband model derived from another by a constant offset.

    The motivational experiment of the paper's Fig. 3 reduces the voltage
    guardband of a real Broadwell system by a flat 100 mV and measures the
    resulting performance.  This wrapper reproduces that manipulation: it
    delegates to an underlying :class:`GuardbandModel` and shifts the total
    by ``offset_v`` (never below zero), attributing the shift to the IR
    component for reporting purposes.
    """

    def __init__(self, inner: GuardbandModel, offset_v: float) -> None:
        self._inner = inner
        self._offset_v = offset_v

    @property
    def inner(self) -> GuardbandModel:
        """The wrapped guardband model."""
        return self._inner

    @property
    def offset_v(self) -> float:
        """The applied offset (negative values reduce the guardband)."""
        return self._offset_v

    @property
    def configuration(self) -> PdnConfiguration:
        """PDN configuration of the wrapped model."""
        return self._inner.configuration

    @property
    def reliability_margin_v(self) -> float:
        """Reliability guardband of the wrapped model."""
        return self._inner.reliability_margin_v

    def impedance_profile(self) -> ImpedanceProfile:
        """Impedance profile of the wrapped model's network."""
        return self._inner.impedance_profile()

    def breakdown(self, virus_level: PowerVirusLevel) -> GuardbandBreakdown:
        """Breakdown with the offset folded into the IR component."""
        base = self._inner.breakdown(virus_level)
        adjusted_ir = max(0.0, base.ir_drop_v + self._offset_v)
        return GuardbandBreakdown(
            ir_drop_v=adjusted_ir,
            transient_droop_v=base.transient_droop_v,
            reliability_v=base.reliability_v,
            fixed_margin_v=base.fixed_margin_v,
        )

    def total_guardband_v(self, virus_level: PowerVirusLevel) -> float:
        """Offset total guardband (never below zero)."""
        return max(0.0, self._inner.total_guardband_v(virus_level) + self._offset_v)
