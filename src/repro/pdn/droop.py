"""Time-domain di/dt droop simulation.

When a core suddenly raises its current demand (for example when a
power-gated core wakes up, or an AVX burst begins), the supply voltage at
the die droops below its DC value until the decoupling capacitors and the
VR catch up.  The worst-case droop sets the transient ("droop") portion of
the voltage guardband (paper Section 2.4.2, "Voltage Droop Effect on Fmax").

The simulator integrates the three-stage R-L / C ladder produced by
:class:`~repro.pdn.ladder.SkylakePdnBuilder` with a fixed-step fourth-order
Runge-Kutta scheme.  State variables are the series-branch currents and the
capacitor voltages of each stage; the load is an ideal current source at the
last (die) node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.validation import ensure_positive
from repro.pdn.ladder import LadderStage


@dataclass(frozen=True)
class DroopResult:
    """Outcome of a droop simulation.

    Attributes
    ----------
    time_s:
        Simulation time points.
    load_voltage_v:
        Voltage at the die (load) node over time.
    nominal_voltage_v:
        The unloaded rail voltage used for the run.
    """

    time_s: np.ndarray
    load_voltage_v: np.ndarray
    nominal_voltage_v: float

    @property
    def worst_droop_v(self) -> float:
        """Largest instantaneous drop below the pre-step settled voltage."""
        settled = self.load_voltage_v[0]
        return float(settled - self.load_voltage_v.min())

    @property
    def settled_drop_v(self) -> float:
        """DC (IR) drop after the transient has settled."""
        settled_initial = self.load_voltage_v[0]
        settled_final = float(np.mean(self.load_voltage_v[-max(5, len(self.load_voltage_v) // 50):]))
        return settled_initial - settled_final

    @property
    def transient_overshoot_v(self) -> float:
        """Droop in excess of the final DC drop (the purely transient part)."""
        return max(0.0, self.worst_droop_v - max(0.0, self.settled_drop_v))

    def minimum_voltage_v(self) -> float:
        """Lowest instantaneous load voltage observed."""
        return float(self.load_voltage_v.min())


class DroopSimulator:
    """Fixed-step transient simulator for an R-L / C ladder.

    Parameters
    ----------
    stages:
        Ladder stages from source to load.  The source end is an ideal
        voltage source at ``nominal_voltage_v``.
    nominal_voltage_v:
        Unloaded rail voltage.
    """

    def __init__(self, stages: Sequence[LadderStage], nominal_voltage_v: float = 1.0) -> None:
        if not stages:
            raise ConfigurationError("droop simulator needs at least one ladder stage")
        ensure_positive(nominal_voltage_v, "nominal_voltage_v")
        self._stages = list(stages)
        self._nominal_voltage_v = nominal_voltage_v

    # -- public API ------------------------------------------------------------------

    def simulate_current_step(
        self,
        step_current_a: float,
        initial_current_a: float = 0.0,
        rise_time_s: float = 2e-9,
        duration_s: float = 2e-6,
        time_step_s: float = 0.5e-9,
    ) -> DroopResult:
        """Simulate the response to a load-current step at the die node.

        Parameters
        ----------
        step_current_a:
            Final load current after the step.
        initial_current_a:
            Load current before the step (the network is settled at this
            current before the step is applied).
        rise_time_s:
            Linear ramp time of the current step; a few nanoseconds models
            the staggered power-gate wake-up or an instruction-mix change.
        duration_s:
            Simulated time after the step begins.
        time_step_s:
            Integration step.  Must resolve the fastest L/C time constant;
            the default of 0.5 ns is comfortable for die-level resonances of
            up to ~150 MHz.
        """
        ensure_positive(duration_s, "duration_s")
        ensure_positive(time_step_s, "time_step_s")
        if step_current_a < 0 or initial_current_a < 0:
            raise ConfigurationError("load currents must be >= 0")

        def load_current(time_s: float) -> float:
            if time_s <= 0:
                return initial_current_a
            if time_s >= rise_time_s:
                return step_current_a
            fraction = time_s / rise_time_s
            return initial_current_a + fraction * (step_current_a - initial_current_a)

        return self._integrate(load_current, duration_s, time_step_s, initial_current_a)

    def simulate_profile(
        self,
        load_profile: Callable[[float], float],
        duration_s: float,
        time_step_s: float = 0.5e-9,
        initial_current_a: float = 0.0,
    ) -> DroopResult:
        """Simulate an arbitrary load-current profile ``i(t)``."""
        ensure_positive(duration_s, "duration_s")
        ensure_positive(time_step_s, "time_step_s")
        return self._integrate(load_profile, duration_s, time_step_s, initial_current_a)

    # -- integration ------------------------------------------------------------------

    def _settled_state(self, load_current_a: float) -> np.ndarray:
        """Analytic DC steady state for a constant load current."""
        stage_count = len(self._stages)
        state = np.zeros(2 * stage_count)
        # All series branches carry the load current at DC.
        state[:stage_count] = load_current_a
        # Capacitor voltages equal their node voltages (no capacitor current).
        voltage = self._nominal_voltage_v
        for index, stage in enumerate(self._stages):
            voltage -= stage.series_resistance_ohm * load_current_a
            state[stage_count + index] = voltage
        return state

    def _derivative(
        self, state: np.ndarray, load_current_a: float
    ) -> np.ndarray:
        stage_count = len(self._stages)
        currents = state[:stage_count]
        cap_voltages = state[stage_count:]
        node_voltages = np.empty(stage_count)
        cap_currents = np.empty(stage_count)
        # Capacitor current of stage k is the series current into the node
        # minus the series current leaving it (or the load at the last node).
        for index in range(stage_count):
            downstream = currents[index + 1] if index + 1 < stage_count else load_current_a
            cap_currents[index] = currents[index] - downstream
            node_voltages[index] = (
                cap_voltages[index] + self._stages[index].shunt_esr_ohm * cap_currents[index]
            )
        derivative = np.empty_like(state)
        for index, stage in enumerate(self._stages):
            upstream_voltage = (
                self._nominal_voltage_v if index == 0 else node_voltages[index - 1]
            )
            derivative[index] = (
                upstream_voltage
                - node_voltages[index]
                - stage.series_resistance_ohm * currents[index]
            ) / stage.series_inductance_h
            derivative[stage_count + index] = (
                cap_currents[index] / stage.shunt_capacitance_f
            )
        return derivative

    def _integrate(
        self,
        load_profile: Callable[[float], float],
        duration_s: float,
        time_step_s: float,
        initial_current_a: float,
    ) -> DroopResult:
        steps = int(round(duration_s / time_step_s))
        if steps < 2:
            raise SimulationError("duration too short for the chosen time step")
        stage_count = len(self._stages)
        state = self._settled_state(initial_current_a)
        times = np.empty(steps + 1)
        load_voltages = np.empty(steps + 1)
        times[0] = 0.0
        load_voltages[0] = self._node_voltage(state, load_profile(0.0), stage_count - 1)
        time_s = 0.0
        for step in range(1, steps + 1):
            state = self._rk4_step(state, time_s, time_step_s, load_profile)
            time_s += time_step_s
            times[step] = time_s
            load_voltages[step] = self._node_voltage(
                state, load_profile(time_s), stage_count - 1
            )
            if not np.all(np.isfinite(state)):
                raise SimulationError(
                    "droop integration diverged; reduce time_step_s"
                )
        return DroopResult(
            time_s=times,
            load_voltage_v=load_voltages,
            nominal_voltage_v=self._nominal_voltage_v,
        )

    def _rk4_step(
        self,
        state: np.ndarray,
        time_s: float,
        time_step_s: float,
        load_profile: Callable[[float], float],
    ) -> np.ndarray:
        half = time_step_s / 2.0
        k1 = self._derivative(state, load_profile(time_s))
        k2 = self._derivative(state + half * k1, load_profile(time_s + half))
        k3 = self._derivative(state + half * k2, load_profile(time_s + half))
        k4 = self._derivative(state + time_step_s * k3, load_profile(time_s + time_step_s))
        return state + (time_step_s / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)

    def _node_voltage(
        self, state: np.ndarray, load_current_a: float, node_index: int
    ) -> float:
        stage_count = len(self._stages)
        currents = state[:stage_count]
        cap_voltage = state[stage_count + node_index]
        downstream = (
            currents[node_index + 1] if node_index + 1 < stage_count else load_current_a
        )
        cap_current = currents[node_index] - downstream
        return float(
            cap_voltage + self._stages[node_index].shunt_esr_ohm * cap_current
        )
