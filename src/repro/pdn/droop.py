"""Time-domain di/dt droop simulation.

When a core suddenly raises its current demand (for example when a
power-gated core wakes up, or an AVX burst begins), the supply voltage at
the die droops below its DC value until the decoupling capacitors and the
VR catch up.  The worst-case droop sets the transient ("droop") portion of
the voltage guardband (paper Section 2.4.2, "Voltage Droop Effect on Fmax").

The network is the three-stage R-L / C ladder produced by
:class:`~repro.pdn.ladder.SkylakePdnBuilder`.  State variables are the
series-branch currents and the capacitor voltages of each stage; the load is
an ideal current source at the last (die) node.  Because the ladder is a
linear time-invariant system, the simulator precomputes its state-space
matrices once and then integrates with one of several interchangeable
methods:

* ``"scan"`` — the classical RK4 update collapsed into a one-step linear
  propagator, diagonalised and evaluated for *all* time steps at once with
  a vectorized parallel prefix scan (no per-step Python loop).  Default.
* ``"matvec"`` — the same propagator applied step by step as a single
  matrix-vector product (the fallback when the propagator cannot be
  diagonalised reliably).
* ``"exact"`` — exact discretization of the continuous system for loads
  that are (or are sampled as) piecewise-linear, using the matrix
  exponential; accurate at any step size that resolves the load.
* ``"reference"`` — the original per-stage Python RK4, kept as the
  regression oracle for the vectorized methods.

``"scan"``, ``"matvec"``, and ``"reference"`` produce the same RK4
discretization and agree to floating-point roundoff; ``"exact"`` differs
from them only by the RK4 truncation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.validation import ensure_positive
from repro.pdn.ladder import LadderStage

#: Integration methods accepted by :class:`DroopSimulator`.
INTEGRATION_METHODS = ("scan", "matvec", "exact", "reference")

#: Stride (in steps) at which the per-step loops re-check for divergence.
_DIVERGENCE_CHECK_STRIDE = 256

#: Condition-number ceiling above which the eigenbasis of the propagator is
#: considered too ill-conditioned for the scan and the matvec loop is used.
_MAX_EIGENBASIS_CONDITION = 1e8


@dataclass(frozen=True)
class DroopResult:
    """Outcome of a droop simulation.

    Attributes
    ----------
    time_s:
        Simulation time points.
    load_voltage_v:
        Voltage at the die (load) node over time.
    nominal_voltage_v:
        The unloaded rail voltage used for the run.
    final_dc_drop_v:
        Analytic asymptotic DC (IR) drop the network would settle to if the
        final load current were held forever (``sum(R) * (i_final -
        i_initial)``).  Supplied by the simulator; ``None`` for hand-built
        results.  Informational — ``settled_drop_v`` always reflects the
        simulated waveform, because on runs shorter than the slowest network
        time constant the asymptote has not been reached yet.
    """

    time_s: np.ndarray
    load_voltage_v: np.ndarray
    nominal_voltage_v: float
    final_dc_drop_v: Optional[float] = None

    @property
    def worst_droop_v(self) -> float:
        """Largest instantaneous drop below the pre-step settled voltage."""
        settled = self.load_voltage_v[0]
        return float(settled - self.load_voltage_v.min())

    @property
    def settled_drop_v(self) -> float:
        """DC (IR) drop after the transient has settled.

        Detects the settled tail of the waveform instead of averaging a
        fixed-size window that may still contain transient on short runs;
        when the run never settles, the final sample is used as the closest
        estimate.  Both choices keep the settled level at or above the
        waveform minimum, so ``transient_overshoot_v`` cannot go spuriously
        negative (and then be clamped) the way the fixed window could.
        """
        return self._detected_settled_drop_v()

    def _detected_settled_drop_v(self) -> float:
        voltages = self.load_voltage_v
        final = float(voltages[-1])
        span = float(voltages.max() - voltages.min())
        tolerance = max(1e-9, 0.02 * span)
        unsettled = np.nonzero(np.abs(voltages - final) > tolerance)[0]
        start = 0 if unsettled.size == 0 else int(unsettled[-1]) + 1
        tail = voltages[start:]
        if tail.size < 3:
            # Never settled within the run; the final sample is the closest
            # available estimate of the settled level.
            return float(voltages[0]) - final
        return float(voltages[0]) - float(tail.mean())

    @property
    def transient_overshoot_v(self) -> float:
        """Droop in excess of the final DC drop (the purely transient part)."""
        return max(0.0, self.worst_droop_v - max(0.0, self.settled_drop_v))

    def minimum_voltage_v(self) -> float:
        """Lowest instantaneous load voltage observed."""
        return float(self.load_voltage_v.min())


def _taylor_expm(matrix: np.ndarray) -> np.ndarray:
    """Matrix exponential by scaling-and-squaring of a Taylor series.

    Adequate for the small (2 x stage count) matrices of the ladder; avoids
    a SciPy dependency.
    """
    norm = np.linalg.norm(matrix, ord=1)
    squarings = max(0, int(np.ceil(np.log2(norm))) + 1) if norm > 0 else 0
    scaled = matrix / (2.0**squarings)
    result = np.eye(matrix.shape[0])
    term = np.eye(matrix.shape[0])
    for order in range(1, 20):
        term = term @ scaled / order
        result = result + term
    for _ in range(squarings):
        result = result @ result
    return result


class DroopSimulator:
    """Fixed-step transient simulator for an R-L / C ladder.

    Parameters
    ----------
    stages:
        Ladder stages from source to load.  The source end is an ideal
        voltage source at ``nominal_voltage_v``.
    nominal_voltage_v:
        Unloaded rail voltage.
    method:
        Default integration method (one of :data:`INTEGRATION_METHODS`);
        individual simulate calls may override it.
    """

    def __init__(
        self,
        stages: Sequence[LadderStage],
        nominal_voltage_v: float = 1.0,
        method: str = "scan",
    ) -> None:
        if not stages:
            raise ConfigurationError("droop simulator needs at least one ladder stage")
        ensure_positive(nominal_voltage_v, "nominal_voltage_v")
        if method not in INTEGRATION_METHODS:
            raise ConfigurationError(
                f"unknown integration method {method!r}; "
                f"known: {list(INTEGRATION_METHODS)}"
            )
        self._stages = list(stages)
        self._nominal_voltage_v = nominal_voltage_v
        self._method = method
        self._series_resistance = np.array(
            [stage.series_resistance_ohm for stage in self._stages]
        )
        self._build_state_space()
        # Per-(time step) discretization caches: {h: (propagator, drive mats)}.
        self._rk4_cache: dict = {}
        self._exact_cache: dict = {}
        self._eig_cache: dict = {}

    @property
    def stages(self) -> List[LadderStage]:
        """The ladder stages this simulator integrates."""
        return list(self._stages)

    @property
    def nominal_voltage_v(self) -> float:
        """Unloaded rail voltage of the runs."""
        return self._nominal_voltage_v

    # -- state space -----------------------------------------------------------------

    def _build_state_space(self) -> None:
        """Precompute ``dx/dt = A x + b_source Vnom + b_load i(t)``.

        The state is ``x = [i_1..i_n, vc_1..vc_n]``.  The capacitor current
        of stage *k* is ``i_k - i_(k+1)`` (the load current after the last
        stage), its node voltage ``vc_k + esr_k * c_k``, and each series
        branch integrates the voltage across its R-L against the upstream
        node (the source for the first stage).
        """
        count = len(self._stages)
        state_size = 2 * count
        A = np.zeros((state_size, state_size))
        b_source = np.zeros(state_size)
        b_load = np.zeros(state_size)

        def node_voltage_row(index: int) -> Tuple[np.ndarray, float]:
            # Node voltage of stage *index* as a linear form over the state
            # plus a coefficient on the load current.
            row = np.zeros(state_size)
            esr = self._stages[index].shunt_esr_ohm
            row[count + index] = 1.0
            row[index] += esr
            load_coefficient = 0.0
            if index + 1 < count:
                row[index + 1] -= esr
            else:
                load_coefficient = -esr
            return row, load_coefficient

        for index, stage in enumerate(self._stages):
            row, load_coefficient = node_voltage_row(index)
            inductance = stage.series_inductance_h
            A[index] -= row / inductance
            b_load[index] -= load_coefficient / inductance
            A[index, index] -= stage.series_resistance_ohm / inductance
            if index == 0:
                b_source[index] += 1.0 / inductance
            else:
                upstream_row, upstream_load = node_voltage_row(index - 1)
                A[index] += upstream_row / inductance
                b_load[index] += upstream_load / inductance
            capacitance = stage.shunt_capacitance_f
            A[count + index, index] += 1.0 / capacitance
            if index + 1 < count:
                A[count + index, index + 1] -= 1.0 / capacitance
            else:
                b_load[count + index] -= 1.0 / capacitance

        self._A = A
        self._b_source = b_source
        self._b_load = b_load

    # -- public API ------------------------------------------------------------------

    def simulate_current_step(
        self,
        step_current_a: float,
        initial_current_a: float = 0.0,
        rise_time_s: float = 2e-9,
        duration_s: float = 2e-6,
        time_step_s: float = 0.5e-9,
        method: Optional[str] = None,
    ) -> DroopResult:
        """Simulate the response to a load-current step at the die node.

        Parameters
        ----------
        step_current_a:
            Final load current after the step.
        initial_current_a:
            Load current before the step (the network is settled at this
            current before the step is applied).
        rise_time_s:
            Linear ramp time of the current step; a few nanoseconds models
            the staggered power-gate wake-up or an instruction-mix change.
        duration_s:
            Simulated time after the step begins.
        time_step_s:
            Integration step.  Must resolve the fastest L/C time constant;
            the default of 0.5 ns is comfortable for die-level resonances of
            up to ~150 MHz.
        method:
            Integration method override for this run.
        """
        ensure_positive(duration_s, "duration_s")
        ensure_positive(time_step_s, "time_step_s")
        if step_current_a < 0 or initial_current_a < 0:
            raise ConfigurationError("load currents must be >= 0")
        if rise_time_s < 0:
            raise ConfigurationError("rise_time_s must be >= 0")
        rise = max(rise_time_s, 1e-15)

        def load_current(time_s: float) -> float:
            if time_s <= 0:
                return initial_current_a
            if time_s >= rise:
                return step_current_a
            fraction = time_s / rise
            return initial_current_a + fraction * (step_current_a - initial_current_a)

        def load_samples(times: np.ndarray) -> np.ndarray:
            return np.interp(
                times,
                [0.0, rise],
                [initial_current_a, step_current_a],
            )

        return self._integrate(
            load_current,
            duration_s,
            time_step_s,
            initial_current_a,
            method=method,
            sampler=load_samples,
        )

    def simulate_profile(
        self,
        load_profile: Callable[[float], float],
        duration_s: float,
        time_step_s: float = 0.5e-9,
        initial_current_a: float = 0.0,
        method: Optional[str] = None,
    ) -> DroopResult:
        """Simulate an arbitrary load-current profile ``i(t)``.

        *load_profile* may be any scalar callable; objects that additionally
        expose a vectorized ``sample(times) -> currents`` method (such as
        :class:`repro.pdn.transients.LoadTrace`) are sampled in one shot.
        """
        ensure_positive(duration_s, "duration_s")
        ensure_positive(time_step_s, "time_step_s")
        sampler = getattr(load_profile, "sample", None)
        return self._integrate(
            load_profile,
            duration_s,
            time_step_s,
            initial_current_a,
            method=method,
            sampler=sampler,
        )

    # -- integration ------------------------------------------------------------------

    def _settled_state(self, load_current_a: float) -> np.ndarray:
        """Analytic DC steady state for a constant load current."""
        stage_count = len(self._stages)
        state = np.zeros(2 * stage_count)
        # All series branches carry the load current at DC.
        state[:stage_count] = load_current_a
        # Capacitor voltages equal their node voltages (no capacitor current).
        voltage = self._nominal_voltage_v
        for index, stage in enumerate(self._stages):
            voltage -= stage.series_resistance_ohm * load_current_a
            state[stage_count + index] = voltage
        return state

    def _resolve_method(self, method: Optional[str]) -> str:
        if method is None:
            return self._method
        if method not in INTEGRATION_METHODS:
            raise ConfigurationError(
                f"unknown integration method {method!r}; "
                f"known: {list(INTEGRATION_METHODS)}"
            )
        return method

    def _step_count(self, duration_s: float, time_step_s: float) -> int:
        # Floor (with a roundoff allowance) so the last sample never
        # overshoots duration_s, unlike round() which could run past it by
        # up to half a step.
        steps = int(np.floor(duration_s / time_step_s * (1.0 + 1e-12)))
        if steps < 2:
            raise SimulationError("duration too short for the chosen time step")
        return steps

    def _integrate(
        self,
        load_profile: Callable[[float], float],
        duration_s: float,
        time_step_s: float,
        initial_current_a: float,
        method: Optional[str] = None,
        sampler: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> DroopResult:
        resolved = self._resolve_method(method)
        steps = self._step_count(duration_s, time_step_s)
        times = np.arange(steps + 1) * time_step_s
        if resolved == "reference":
            load_voltages = self._integrate_reference(
                load_profile, times, time_step_s, initial_current_a
            )
            load_samples = self._sample(load_profile, times, sampler)
        else:
            load_samples = self._sample(load_profile, times, sampler)
            if resolved == "exact":
                states = self._integrate_exact(
                    load_samples, times, time_step_s, initial_current_a
                )
            else:
                midpoint_samples = self._sample(
                    load_profile, times[:-1] + time_step_s / 2.0, sampler
                )
                states = self._integrate_rk4(
                    load_samples,
                    midpoint_samples,
                    time_step_s,
                    initial_current_a,
                    use_scan=(resolved == "scan"),
                )
            load_voltages = self._load_voltages(states, load_samples)
        if not np.all(np.isfinite(load_voltages)):
            raise SimulationError("droop integration diverged; reduce time_step_s")
        final_dc_drop = float(
            self._series_resistance.sum() * (load_samples[-1] - initial_current_a)
        )
        return DroopResult(
            time_s=times,
            load_voltage_v=load_voltages,
            nominal_voltage_v=self._nominal_voltage_v,
            final_dc_drop_v=final_dc_drop,
        )

    def _sample(
        self,
        load_profile: Callable[[float], float],
        times: np.ndarray,
        sampler: Optional[Callable[[np.ndarray], np.ndarray]],
    ) -> np.ndarray:
        if sampler is not None:
            return np.asarray(sampler(times), dtype=float)
        return np.array([float(load_profile(t)) for t in times])

    def _load_voltages(
        self, states: np.ndarray, load_samples: np.ndarray
    ) -> np.ndarray:
        count = len(self._stages)
        esr = self._stages[-1].shunt_esr_ohm
        return states[:, 2 * count - 1] + esr * (states[:, count - 1] - load_samples)

    # -- RK4 as a linear one-step propagator -------------------------------------------

    def _rk4_matrices(self, time_step_s: float):
        """One-step RK4 propagator and input-weight matrices.

        For the linear system ``dx/dt = A x + B u(t)`` the classical RK4
        update collapses to::

            x+ = M x + G0 B u(t) + G1 B u(t + h/2) + G2 B u(t + h)

        with ``M = I + hA + (hA)^2/2 + (hA)^3/6 + (hA)^4/24`` and the G's
        below — the exact same arithmetic as evaluating the four k-stages,
        so the result matches the per-stage reference to roundoff.
        """
        cached = self._rk4_cache.get(time_step_s)
        if cached is not None:
            return cached
        hA = time_step_s * self._A
        hA2 = hA @ hA
        identity = np.eye(self._A.shape[0])
        propagator = identity + hA + hA2 / 2.0 + hA2 @ hA / 6.0 + hA2 @ hA2 / 24.0
        sixth = time_step_s / 6.0
        G0 = sixth * (identity + hA + hA2 / 2.0 + hA2 @ hA / 4.0)
        G1 = sixth * (4.0 * identity + 2.0 * hA + hA2 / 2.0)
        G2 = sixth * identity
        weights = (
            propagator,
            G0 @ self._b_load,
            G1 @ self._b_load,
            G2 @ self._b_load,
            (G0 + G1 + G2) @ self._b_source * self._nominal_voltage_v,
        )
        self._rk4_cache[time_step_s] = weights
        return weights

    def _integrate_rk4(
        self,
        load_samples: np.ndarray,
        midpoint_samples: np.ndarray,
        time_step_s: float,
        initial_current_a: float,
        use_scan: bool,
    ) -> np.ndarray:
        propagator, g0, g1, g2, source_term = self._rk4_matrices(time_step_s)
        drive = (
            np.outer(load_samples[:-1], g0)
            + np.outer(midpoint_samples, g1)
            + np.outer(load_samples[1:], g2)
            + source_term
        )
        initial_state = self._settled_state(initial_current_a)
        return self._propagate(propagator, drive, initial_state, use_scan=use_scan)

    # -- exact piecewise-linear discretization -----------------------------------------

    def _exact_matrices(self, time_step_s: float):
        """Exact discretization for loads linear within each step.

        Van Loan's augmented-exponential construction yields, in one
        ``expm``, the propagator ``E = e^(Ah)`` together with
        ``S1 = int_0^h e^(A s) ds`` and ``S2 = int_0^h e^(A s) s ds``.  For
        a load that ramps linearly from ``i_k`` to ``i_(k+1)`` across the
        step the update is then exact::

            x+ = E x + S1 b i_(k+1) - S2 b r + S1 b_src Vnom,   r = (i_(k+1) - i_k)/h
        """
        cached = self._exact_cache.get(time_step_s)
        if cached is not None:
            return cached
        size = self._A.shape[0]
        augmented = np.zeros((3 * size, 3 * size))
        augmented[:size, :size] = self._A * time_step_s
        augmented[:size, size : 2 * size] = np.eye(size) * time_step_s
        augmented[size : 2 * size, 2 * size :] = np.eye(size) * time_step_s
        exponential = _taylor_expm(augmented)
        propagator = exponential[:size, :size]
        # Van Loan blocks: S1 = int_0^h e^(As) ds and H1 = int_0^h e^(A(h-s)) s ds,
        # from which S2 = int_0^h e^(As) s ds = h S1 - H1.
        S1 = exponential[:size, size : 2 * size]
        H1 = exponential[:size, 2 * size :]
        S2 = time_step_s * S1 - H1
        weights = (
            propagator,
            S1 @ self._b_load,
            S2 @ self._b_load,
            S1 @ self._b_source * self._nominal_voltage_v,
        )
        self._exact_cache[time_step_s] = weights
        return weights

    def _integrate_exact(
        self,
        load_samples: np.ndarray,
        times: np.ndarray,
        time_step_s: float,
        initial_current_a: float,
    ) -> np.ndarray:
        propagator, s1_load, s2_load, source_term = self._exact_matrices(time_step_s)
        slopes = np.diff(load_samples) / time_step_s
        drive = (
            np.outer(load_samples[1:], s1_load)
            - np.outer(slopes, s2_load)
            + source_term
        )
        initial_state = self._settled_state(initial_current_a)
        return self._propagate(propagator, drive, initial_state, use_scan=True)

    # -- linear-recurrence propagation -------------------------------------------------

    def _propagate(
        self,
        propagator: np.ndarray,
        drive: np.ndarray,
        initial_state: np.ndarray,
        use_scan: bool,
    ) -> np.ndarray:
        """Solve ``x_(k+1) = M x_k + d_k`` for all steps."""
        if use_scan:
            eig = self._eigenbasis(propagator)
            if eig is not None:
                return self._propagate_scan(eig, drive, initial_state)
        return self._propagate_loop(propagator, drive, initial_state)

    def _eigenbasis(self, propagator: np.ndarray):
        # Keyed by the matrix content: the RK4 and exact discretizations of
        # the same time step produce different propagators.
        key = propagator.tobytes()
        if key in self._eig_cache:
            return self._eig_cache[key]
        try:
            eigenvalues, basis = np.linalg.eig(propagator)
            condition = np.linalg.cond(basis)
            result = None
            if np.isfinite(condition) and condition <= _MAX_EIGENBASIS_CONDITION:
                result = (eigenvalues, basis, np.linalg.inv(basis))
        except np.linalg.LinAlgError:
            result = None
        self._eig_cache[key] = result
        return result

    def _propagate_scan(self, eig, drive: np.ndarray, initial_state: np.ndarray):
        """Vectorized parallel prefix scan over the diagonalised recurrence.

        In the eigenbasis each state component obeys the scalar recurrence
        ``z_(k+1) = lambda z_k + e_k``, an associative composition of affine
        maps, so all N steps resolve in log2(N) vectorized passes.
        """
        eigenvalues, basis, basis_inv = eig
        transformed_drive = drive.astype(complex) @ basis_inv.T
        gains = np.broadcast_to(eigenvalues, transformed_drive.shape).copy()
        offsets = transformed_drive.copy()
        stride = 1
        while stride < len(offsets):
            offsets[stride:] += gains[stride:] * offsets[:-stride]
            gains[stride:] *= gains[:-stride]
            stride *= 2
        initial_transformed = basis_inv @ initial_state.astype(complex)
        trajectory = offsets + gains * initial_transformed
        states = np.empty((len(drive) + 1, len(initial_state)))
        states[0] = initial_state
        states[1:] = (trajectory @ basis.T).real
        return states

    def _propagate_loop(
        self, propagator: np.ndarray, drive: np.ndarray, initial_state: np.ndarray
    ) -> np.ndarray:
        states = np.empty((len(drive) + 1, len(initial_state)))
        states[0] = initial_state
        state = initial_state
        for step in range(len(drive)):
            state = propagator @ state + drive[step]
            states[step + 1] = state
            if step % _DIVERGENCE_CHECK_STRIDE == 0 and not np.all(
                np.isfinite(state)
            ):
                raise SimulationError(
                    "droop integration diverged; reduce time_step_s"
                )
        return states

    # -- reference per-stage RK4 (regression oracle) -----------------------------------

    def _derivative(self, state: np.ndarray, load_current_a: float) -> np.ndarray:
        stage_count = len(self._stages)
        currents = state[:stage_count]
        cap_voltages = state[stage_count:]
        node_voltages = np.empty(stage_count)
        cap_currents = np.empty(stage_count)
        # Capacitor current of stage k is the series current into the node
        # minus the series current leaving it (or the load at the last node).
        for index in range(stage_count):
            downstream = currents[index + 1] if index + 1 < stage_count else load_current_a
            cap_currents[index] = currents[index] - downstream
            node_voltages[index] = (
                cap_voltages[index] + self._stages[index].shunt_esr_ohm * cap_currents[index]
            )
        derivative = np.empty_like(state)
        for index, stage in enumerate(self._stages):
            upstream_voltage = (
                self._nominal_voltage_v if index == 0 else node_voltages[index - 1]
            )
            derivative[index] = (
                upstream_voltage
                - node_voltages[index]
                - stage.series_resistance_ohm * currents[index]
            ) / stage.series_inductance_h
            derivative[stage_count + index] = (
                cap_currents[index] / stage.shunt_capacitance_f
            )
        return derivative

    def _rk4_step(
        self,
        state: np.ndarray,
        time_s: float,
        time_step_s: float,
        load_profile: Callable[[float], float],
    ) -> np.ndarray:
        half = time_step_s / 2.0
        k1 = self._derivative(state, load_profile(time_s))
        k2 = self._derivative(state + half * k1, load_profile(time_s + half))
        k3 = self._derivative(state + half * k2, load_profile(time_s + half))
        k4 = self._derivative(state + time_step_s * k3, load_profile(time_s + time_step_s))
        return state + (time_step_s / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)

    def _integrate_reference(
        self,
        load_profile: Callable[[float], float],
        times: np.ndarray,
        time_step_s: float,
        initial_current_a: float,
    ) -> np.ndarray:
        steps = len(times) - 1
        stage_count = len(self._stages)
        state = self._settled_state(initial_current_a)
        load_voltages = np.empty(steps + 1)
        load_voltages[0] = self._node_voltage(state, load_profile(0.0), stage_count - 1)
        time_s = 0.0
        for step in range(1, steps + 1):
            state = self._rk4_step(state, time_s, time_step_s, load_profile)
            time_s += time_step_s
            load_voltages[step] = self._node_voltage(
                state, load_profile(time_s), stage_count - 1
            )
            if step % _DIVERGENCE_CHECK_STRIDE == 0 and not np.all(
                np.isfinite(state)
            ):
                raise SimulationError(
                    "droop integration diverged; reduce time_step_s"
                )
        return load_voltages

    def _node_voltage(
        self, state: np.ndarray, load_current_a: float, node_index: int
    ) -> float:
        stage_count = len(self._stages)
        currents = state[:stage_count]
        cap_voltage = state[stage_count + node_index]
        downstream = (
            currents[node_index + 1] if node_index + 1 < stage_count else load_current_a
        )
        cap_current = currents[node_index] - downstream
        return float(
            cap_voltage + self._stages[node_index].shunt_esr_ohm * cap_current
        )
