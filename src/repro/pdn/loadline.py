"""Load-line (adaptive voltage positioning) and power-virus-level model.

This module reproduces the background model of the paper's Fig. 2:

* ``Vccload = Vcc - RLL * Icc`` — the voltage at the load droops along the
  load-line as current rises (Fig. 2(b)).
* The PMU sizes the voltage guardband for the *worst-case* current of the
  current system state, described by a **power-virus level**: a bound on the
  maximum dynamic capacitance (and therefore current) that the set of active
  cores and instruction mix can draw (Fig. 2(c)).
* Moving between virus levels adds or removes a guardband step ``dV``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.errors import ConfigurationError, ConstraintViolation
from repro.common.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class PowerVirusLevel:
    """One power-virus level of the adaptive guardband scheme.

    Parameters
    ----------
    name:
        Label, e.g. ``"VirusLevel1"``.
    max_active_cores:
        Largest number of simultaneously active cores covered by this level.
    virus_current_a:
        Worst-case (power-virus) current the covered system states can draw.
    """

    name: str
    max_active_cores: int
    virus_current_a: float

    def __post_init__(self) -> None:
        if self.max_active_cores < 1:
            raise ConfigurationError(
                f"max_active_cores must be >= 1, got {self.max_active_cores}"
            )
        ensure_positive(self.virus_current_a, "virus_current_a")


@dataclass
class VirusLevelTable:
    """An ordered set of power-virus levels.

    Levels must be registered in increasing order of both core count and
    virus current, mirroring ``VirusLevel1 < VirusLevel2 < VirusLevel3`` in
    the paper.
    """

    levels: List[PowerVirusLevel] = field(default_factory=list)

    def __post_init__(self) -> None:
        for earlier, later in zip(self.levels, self.levels[1:]):
            if later.max_active_cores < earlier.max_active_cores:
                raise ConfigurationError(
                    "virus levels must be ordered by max_active_cores"
                )
            if later.virus_current_a <= earlier.virus_current_a:
                raise ConfigurationError(
                    "virus levels must be ordered by increasing virus current"
                )

    def level_for_active_cores(self, active_cores: int) -> PowerVirusLevel:
        """Return the lowest level that covers *active_cores* active cores."""
        if active_cores < 0:
            raise ConfigurationError(f"active_cores must be >= 0, got {active_cores}")
        lookup = max(1, active_cores)
        for level in self.levels:
            if level.max_active_cores >= lookup:
                return level
        if not self.levels:
            raise ConfigurationError("virus level table is empty")
        raise ConstraintViolation(
            "active cores beyond highest virus level",
            lookup,
            self.levels[-1].max_active_cores,
        )

    def highest(self) -> PowerVirusLevel:
        """The most severe (largest current) level."""
        if not self.levels:
            raise ConfigurationError("virus level table is empty")
        return self.levels[-1]

    def names(self) -> List[str]:
        """Level names in order."""
        return [level.name for level in self.levels]

    @classmethod
    def per_core_levels(
        cls, core_count: int, virus_current_per_core_a: float, base_current_a: float = 6.0
    ) -> "VirusLevelTable":
        """Build one virus level per possible active-core count.

        The per-level virus current is ``base + n * per_core`` which matches
        the paper's example of levels representing one, two, and four active
        cores of a four-core part.
        """
        if core_count < 1:
            raise ConfigurationError(f"core_count must be >= 1, got {core_count}")
        ensure_positive(virus_current_per_core_a, "virus_current_per_core_a")
        ensure_non_negative(base_current_a, "base_current_a")
        levels = [
            PowerVirusLevel(
                name=f"VirusLevel{n}",
                max_active_cores=n,
                virus_current_a=base_current_a + n * virus_current_per_core_a,
            )
            for n in range(1, core_count + 1)
        ]
        return cls(levels=levels)


@dataclass(frozen=True)
class LoadLine:
    """The load-line model of Fig. 2.

    Parameters
    ----------
    resistance_ohm:
        The load-line slope R_LL (1.6 mOhm - 2.4 mOhm on recent client parts).
    vmin_v:
        Minimum functional voltage of the load; the guardband must keep the
        load voltage above this under the worst-case virus current.
    vmax_v:
        Maximum operational voltage limit of the part (reliability limit).
    """

    resistance_ohm: float
    vmin_v: float = 0.55
    vmax_v: float = 1.52

    def __post_init__(self) -> None:
        ensure_positive(self.resistance_ohm, "resistance_ohm")
        ensure_positive(self.vmin_v, "vmin_v")
        ensure_positive(self.vmax_v, "vmax_v")
        if self.vmax_v <= self.vmin_v:
            raise ConfigurationError("vmax_v must be greater than vmin_v")

    # -- basic relationships ------------------------------------------------------

    def load_voltage(self, vr_setpoint_v: float, current_a: float) -> float:
        """``Vccload = Vcc - RLL * Icc`` (paper Fig. 2(b))."""
        ensure_non_negative(current_a, "current_a")
        return vr_setpoint_v - self.resistance_ohm * current_a

    def setpoint_for_load_voltage(self, load_voltage_v: float, current_a: float) -> float:
        """VR setpoint required so the load sees *load_voltage_v* at *current_a*."""
        ensure_non_negative(current_a, "current_a")
        return load_voltage_v + self.resistance_ohm * current_a

    def ir_guardband_v(self, virus_current_a: float) -> float:
        """IR-drop guardband required to survive *virus_current_a*."""
        ensure_non_negative(virus_current_a, "virus_current_a")
        return self.resistance_ohm * virus_current_a

    # -- virus-level guardbanding ----------------------------------------------------

    def guardband_for_level(self, level: PowerVirusLevel) -> float:
        """IR-drop guardband sized for one virus level."""
        return self.ir_guardband_v(level.virus_current_a)

    def guardband_step_v(
        self, from_level: PowerVirusLevel, to_level: PowerVirusLevel
    ) -> float:
        """Guardband delta when moving between virus levels (Fig. 2(c) dV)."""
        return self.guardband_for_level(to_level) - self.guardband_for_level(from_level)

    def excess_voltage_v(
        self, virus_current_a: float, actual_current_a: float
    ) -> float:
        """Extra voltage carried when the actual load is below the virus level.

        This is the "higher voltage than necessary" annotation of Fig. 2(b):
        the guardband is sized for the virus current, so any lighter load
        leaves ``RLL * (Ivirus - Iactual)`` of unneeded voltage (and the power
        loss grows quadratically with it).
        """
        ensure_non_negative(virus_current_a, "virus_current_a")
        ensure_non_negative(actual_current_a, "actual_current_a")
        if actual_current_a > virus_current_a:
            raise ConstraintViolation(
                "actual current above virus level", actual_current_a, virus_current_a
            )
        return self.resistance_ohm * (virus_current_a - actual_current_a)

    def check_operating_point(
        self,
        vr_setpoint_v: float,
        virus_current_a: float,
        minimum_current_a: float = 0.0,
    ) -> None:
        """Validate that an operating point respects both voltage limits.

        The load voltage at the virus current must stay above ``vmin_v`` and
        the unloaded (or lightest-load) voltage must stay below ``vmax_v`` —
        the two violation regions marked in Fig. 2(c).
        """
        at_virus = self.load_voltage(vr_setpoint_v, virus_current_a)
        if at_virus < self.vmin_v:
            raise ConstraintViolation("Vmin", at_virus, self.vmin_v)
        at_light_load = self.load_voltage(vr_setpoint_v, minimum_current_a)
        if at_light_load > self.vmax_v:
            raise ConstraintViolation("Vmax", at_light_load, self.vmax_v)

    def max_setpoint_v(self, minimum_current_a: float = 0.0) -> float:
        """Highest VR setpoint that keeps the lightest load below Vmax."""
        return self.vmax_v + self.resistance_ohm * minimum_current_a


def default_virus_table(core_count: int = 4) -> VirusLevelTable:
    """Virus-level table representative of a 4-core Skylake client part.

    Each additional active core adds roughly 33 A of worst-case (power-virus)
    current on top of a ~6 A uncore/graphics floor, landing the 4-core virus
    level near 140 A — consistent with client-class EDC limits.
    """
    return VirusLevelTable.per_core_levels(
        core_count=core_count, virus_current_per_core_a=33.0, base_current_a=6.0
    )
