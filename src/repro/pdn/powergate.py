"""Electrical and area model of a CPU-core power-gate.

A power-gate is a bank of wide, low-leakage sleep transistors between the
shared (ungated) supply rail and a core's local rail (paper Section 2.1,
"Power Gating").  The model captures the three properties the paper reasons
about:

* **On-resistance** — the gate adds series resistance to the core's supply
  path, increasing IR drop and PDN impedance (Fig. 4).  On-resistance falls
  as the gate is made wider.
* **Area** — a low-impedance gate for a whole CPU core costs more than 5 %
  of core area (paper Section 1 and references [4-9]).
* **Leakage reduction and wake-up latency** — when the gate is off, the core
  leaks only a small residual; waking it uses a staggered turn-on that takes
  tens of nanoseconds (paper Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import ensure_in_range, ensure_positive
from repro.pdn.elements import Resistor

#: On-resistance x area figure of merit for the sleep-transistor bank,
#: expressed as (milliohm * mm^2).  Chosen so that a gate sized at ~5 % of an
#: ~8.5 mm^2 Skylake core area lands in the few-hundred-microohm range the
#: impedance model needs.
_RON_AREA_FOM_MOHM_MM2 = 0.17

#: Fraction of the gated circuit's leakage that still flows when the gate is
#: off (sub-threshold leakage of the sleep transistors themselves).
_RESIDUAL_LEAKAGE_FRACTION = 0.02


@dataclass(frozen=True)
class PowerGate:
    """A power-gate sized for one CPU core.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"core0_pg"``.
    on_resistance_ohm:
        Series resistance of the gate when on.
    area_mm2:
        Silicon area consumed by the sleep-transistor bank.
    wakeup_latency_s:
        Staggered wake-up latency (paper quotes 10-20 ns typical).
    residual_leakage_fraction:
        Fraction of the gated circuit's leakage that remains when off.
    """

    name: str
    on_resistance_ohm: float
    area_mm2: float
    wakeup_latency_s: float = 15e-9
    residual_leakage_fraction: float = _RESIDUAL_LEAKAGE_FRACTION

    def __post_init__(self) -> None:
        ensure_positive(self.on_resistance_ohm, "on_resistance_ohm")
        ensure_positive(self.area_mm2, "area_mm2")
        ensure_positive(self.wakeup_latency_s, "wakeup_latency_s")
        ensure_in_range(
            self.residual_leakage_fraction, 0.0, 1.0, "residual_leakage_fraction"
        )

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def sized_for_core(
        cls,
        name: str,
        core_area_mm2: float,
        area_overhead_fraction: float = 0.05,
        wakeup_latency_s: float = 15e-9,
    ) -> "PowerGate":
        """Build a gate sized as a fraction of the target core's area.

        The paper notes that a low-impedance core-level gate can exceed 5 %
        of the chip's area; this constructor captures the area/impedance
        trade-off: doubling the area halves the on-resistance.
        """
        ensure_positive(core_area_mm2, "core_area_mm2")
        ensure_in_range(area_overhead_fraction, 0.005, 0.5, "area_overhead_fraction")
        gate_area = core_area_mm2 * area_overhead_fraction
        on_resistance = (_RON_AREA_FOM_MOHM_MM2 / gate_area) * 1e-3
        return cls(
            name=name,
            on_resistance_ohm=on_resistance,
            area_mm2=gate_area,
            wakeup_latency_s=wakeup_latency_s,
        )

    # -- electrical behaviour ------------------------------------------------------

    def as_branch_element(self) -> Resistor:
        """The gate in its *on* state, as a netlist resistor."""
        return Resistor(resistance_ohm=self.on_resistance_ohm)

    def ir_drop_v(self, current_a: float) -> float:
        """IR drop across the (on) gate at *current_a*."""
        return self.on_resistance_ohm * current_a

    def leakage_when_gated_w(self, ungated_leakage_w: float) -> float:
        """Leakage power of the gated circuit when the gate is off."""
        return ungated_leakage_w * self.residual_leakage_fraction

    def area_overhead_fraction(self, core_area_mm2: float) -> float:
        """Gate area as a fraction of the core it protects."""
        ensure_positive(core_area_mm2, "core_area_mm2")
        return self.area_mm2 / core_area_mm2
