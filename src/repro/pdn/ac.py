"""Small-signal AC impedance analysis of a PDN netlist.

This module produces the impedance-versus-frequency profiles shown in the
paper's Fig. 4.  The analysis injects a 1 A phasor current at an observation
node (the die-side supply node of a CPU core), solves the complex nodal
equations at every frequency of a log-spaced sweep, and reports the magnitude
of the resulting node voltage — which, for a 1 A injection, *is* the
impedance seen by the core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive
from repro.pdn.netlist import Netlist


@dataclass(frozen=True)
class ImpedancePoint:
    """Impedance of the network at a single frequency."""

    frequency_hz: float
    impedance_ohm: complex

    @property
    def magnitude_ohm(self) -> float:
        """Magnitude of the impedance in ohms."""
        return abs(self.impedance_ohm)

    @property
    def phase_deg(self) -> float:
        """Phase of the impedance in degrees."""
        return math.degrees(math.atan2(self.impedance_ohm.imag, self.impedance_ohm.real))


@dataclass
class ImpedanceProfile:
    """An impedance-versus-frequency profile (one curve of Fig. 4)."""

    label: str
    points: List[ImpedancePoint]

    def frequencies_hz(self) -> np.ndarray:
        """Sweep frequencies as a numpy array."""
        return np.array([p.frequency_hz for p in self.points])

    def magnitudes_ohm(self) -> np.ndarray:
        """Impedance magnitudes as a numpy array."""
        return np.array([p.magnitude_ohm for p in self.points])

    def peak(self) -> ImpedancePoint:
        """The single highest-impedance point of the profile."""
        return max(self.points, key=lambda p: p.magnitude_ohm)

    def peak_magnitude_ohm(self) -> float:
        """Magnitude of the worst-case impedance peak."""
        return self.peak().magnitude_ohm

    def impedance_at(self, frequency_hz: float) -> float:
        """Impedance magnitude at the sweep point closest to *frequency_hz*."""
        closest = min(self.points, key=lambda p: abs(p.frequency_hz - frequency_hz))
        return closest.magnitude_ohm

    def local_maxima(self, minimum_prominence: float = 1.05) -> List[ImpedancePoint]:
        """Return the anti-resonance peaks of the profile.

        A point is a peak when it is larger than both neighbours and larger
        than the adjacent local minima by at least *minimum_prominence*
        (a ratio).  These peaks are the "resonance" annotations in Fig. 4.
        """
        magnitudes = self.magnitudes_ohm()
        peaks: List[ImpedancePoint] = []
        for i in range(1, len(self.points) - 1):
            if magnitudes[i] >= magnitudes[i - 1] and magnitudes[i] > magnitudes[i + 1]:
                left_min = magnitudes[: i + 1].min()
                right_min = magnitudes[i:].min()
                reference = max(left_min, right_min)
                if reference > 0 and magnitudes[i] / reference >= minimum_prominence:
                    peaks.append(self.points[i])
        return peaks

    def ratio_to(self, other: "ImpedanceProfile") -> np.ndarray:
        """Pointwise magnitude ratio of this profile to *other*.

        Both profiles must have been produced over the same frequency sweep.
        The paper's headline electrical claim is that the gated profile is
        roughly 2x the bypassed profile across the sweep.
        """
        if len(self.points) != len(other.points):
            raise ConfigurationError("profiles were swept over different grids")
        return self.magnitudes_ohm() / other.magnitudes_ohm()

    def mean_ratio_to(self, other: "ImpedanceProfile") -> float:
        """Geometric-mean magnitude ratio of this profile to *other*."""
        ratios = self.ratio_to(other)
        return float(np.exp(np.mean(np.log(ratios))))

    def as_rows(self) -> List[Tuple[float, float]]:
        """(frequency_hz, magnitude_ohm) rows for table/CSV output."""
        return [(p.frequency_hz, p.magnitude_ohm) for p in self.points]


class ACAnalysis:
    """Impedance sweep driver for a PDN netlist.

    Parameters
    ----------
    netlist:
        The PDN to analyse.
    observation_node:
        Node at which the load current is injected and the impedance
        observed (the die-side supply node of a CPU core).
    """

    def __init__(self, netlist: Netlist, observation_node: str) -> None:
        if not netlist.has_node(observation_node):
            raise ConfigurationError(
                f"observation node {observation_node!r} is not in the netlist"
            )
        self._netlist = netlist
        self._observation_node = observation_node

    @property
    def observation_node(self) -> str:
        """Node at which impedance is observed."""
        return self._observation_node

    def impedance_at(self, frequency_hz: float) -> complex:
        """Complex impedance seen from the observation node at one frequency."""
        ensure_positive(frequency_hz, "frequency_hz")
        omega = 2.0 * math.pi * frequency_hz
        voltages = self._netlist.solve_node_voltages(
            omega, {self._observation_node: 1.0 + 0.0j}
        )
        return voltages[self._observation_node]

    def sweep(
        self,
        start_hz: float = 1e5,
        stop_hz: float = 2e8,
        points_per_decade: int = 40,
        label: str = "pdn",
        frequencies_hz: Optional[Sequence[float]] = None,
    ) -> ImpedanceProfile:
        """Sweep impedance over a log-spaced frequency range.

        Parameters
        ----------
        start_hz, stop_hz:
            Sweep limits.  The defaults cover the 100 kHz – 200 MHz span of
            the paper's Fig. 4.
        points_per_decade:
            Sweep density.
        label:
            Name attached to the resulting profile (used in reports).
        frequencies_hz:
            Explicit sweep points; overrides the log-spaced range when given
            so that two configurations can be compared point by point.
        """
        if frequencies_hz is None:
            ensure_positive(start_hz, "start_hz")
            ensure_positive(stop_hz, "stop_hz")
            if stop_hz <= start_hz:
                raise ConfigurationError("stop_hz must be greater than start_hz")
            decades = math.log10(stop_hz / start_hz)
            count = max(2, int(round(decades * points_per_decade)) + 1)
            frequencies = np.logspace(
                math.log10(start_hz), math.log10(stop_hz), count
            )
        else:
            frequencies = np.asarray(list(frequencies_hz), dtype=float)
            if frequencies.size < 1:
                raise ConfigurationError("frequencies_hz must not be empty")
        points = [
            ImpedancePoint(frequency_hz=float(f), impedance_ohm=self.impedance_at(float(f)))
            for f in frequencies
        ]
        return ImpedanceProfile(label=label, points=points)
