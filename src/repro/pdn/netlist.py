"""A small netlist container with nodal-analysis matrix stamping.

The PDN topologies in this library are built as netlists of two-terminal
elements between named nodes.  Ground is the reserved node name ``"gnd"``.
The netlist can produce its complex nodal admittance matrix at any angular
frequency, which is everything the AC impedance analysis and the transient
droop simulator need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError

GROUND = "gnd"


class TwoTerminalElement(Protocol):
    """Anything that can report a complex admittance at a frequency."""

    def admittance(self, omega_rad_s: float) -> complex:  # pragma: no cover
        ...


@dataclass(frozen=True)
class Branch:
    """A two-terminal element connected between two named nodes."""

    name: str
    node_a: str
    node_b: str
    element: TwoTerminalElement


@dataclass
class Netlist:
    """A collection of named nodes and branches with matrix stamping.

    The netlist enforces that branch names are unique and that no branch
    connects a node to itself.  Node indices are assigned in insertion order
    which keeps matrix construction deterministic.
    """

    branches: List[Branch] = field(default_factory=list)
    _node_index: Dict[str, int] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    def add(
        self, name: str, node_a: str, node_b: str, element: TwoTerminalElement
    ) -> Branch:
        """Add *element* between *node_a* and *node_b* and return the branch."""
        if node_a == node_b:
            raise ConfigurationError(
                f"branch {name!r} connects node {node_a!r} to itself"
            )
        if any(branch.name == name for branch in self.branches):
            raise ConfigurationError(f"duplicate branch name {name!r}")
        branch = Branch(name=name, node_a=node_a, node_b=node_b, element=element)
        self.branches.append(branch)
        for node in (node_a, node_b):
            if node != GROUND and node not in self._node_index:
                self._node_index[node] = len(self._node_index)
        return branch

    # -- inspection -----------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Non-ground node names in index order."""
        return sorted(self._node_index, key=self._node_index.__getitem__)

    def node_count(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_index)

    def index_of(self, node: str) -> int:
        """Matrix row/column index of *node*."""
        if node == GROUND:
            raise ConfigurationError("ground node has no matrix index")
        try:
            return self._node_index[node]
        except KeyError as exc:
            raise ConfigurationError(f"unknown node {node!r}") from exc

    def has_node(self, node: str) -> bool:
        """Return True if *node* appears in the netlist (ground always does)."""
        return node == GROUND or node in self._node_index

    def branches_at(self, node: str) -> List[Branch]:
        """Return every branch touching *node*."""
        return [b for b in self.branches if node in (b.node_a, b.node_b)]

    # -- matrix stamping --------------------------------------------------------

    def admittance_matrix(self, omega_rad_s: float) -> np.ndarray:
        """Return the complex nodal admittance matrix Y(jw).

        The matrix excludes the ground node (standard modified nodal analysis
        for networks with only admittance branches).  ``Y[i, i]`` sums the
        admittances of every branch touching node *i*; ``Y[i, j]`` holds the
        negated admittance of branches between *i* and *j*.
        """
        size = self.node_count()
        if size == 0:
            raise SimulationError("netlist has no nodes")
        matrix = np.zeros((size, size), dtype=complex)
        for branch in self.branches:
            admittance = branch.element.admittance(omega_rad_s)
            a_grounded = branch.node_a == GROUND
            b_grounded = branch.node_b == GROUND
            if a_grounded and b_grounded:
                continue
            if not a_grounded:
                i = self._node_index[branch.node_a]
                matrix[i, i] += admittance
            if not b_grounded:
                j = self._node_index[branch.node_b]
                matrix[j, j] += admittance
            if not a_grounded and not b_grounded:
                matrix[i, j] -= admittance
                matrix[j, i] -= admittance
        return matrix

    def solve_node_voltages(
        self, omega_rad_s: float, current_injections: Dict[str, complex]
    ) -> Dict[str, complex]:
        """Solve node voltages for a set of AC current injections.

        Parameters
        ----------
        omega_rad_s:
            Angular frequency of the excitation.
        current_injections:
            Mapping from node name to the phasor current injected *into* the
            node (amperes).  Nodes not listed get zero injection.

        Returns
        -------
        Mapping from every non-ground node name to its complex voltage.
        """
        size = self.node_count()
        rhs = np.zeros(size, dtype=complex)
        for node, current in current_injections.items():
            if node == GROUND:
                continue
            rhs[self.index_of(node)] = current
        matrix = self.admittance_matrix(omega_rad_s)
        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                "PDN admittance matrix is singular; a node is probably floating "
                f"at omega={omega_rad_s:.3g} rad/s"
            ) from exc
        return {node: solution[self._node_index[node]] for node in self._node_index}

    def dc_path_resistance(self, node_from: str, node_to: str) -> float:
        """Effective DC resistance between two nodes.

        Computed by injecting 1 A at *node_from*, extracting it at *node_to*,
        and reading the voltage difference.  Capacitors are open at DC, so
        the value reflects only the resistive/inductive path.  When *node_to*
        is ground the extraction current is implicit.
        """
        injections: Dict[str, complex] = {node_from: 1.0}
        if node_to != GROUND:
            injections[node_to] = injections.get(node_to, 0.0) - 1.0
        voltages = self.solve_node_voltages(0.0, injections)
        v_from = voltages[node_from].real
        v_to = 0.0 if node_to == GROUND else voltages[node_to].real
        return v_from - v_to

    # -- convenience ------------------------------------------------------------

    def summary(self) -> List[Tuple[str, str, str, str]]:
        """Return (branch, node_a, node_b, element-class) rows for reporting."""
        return [
            (b.name, b.node_a, b.node_b, type(b.element).__name__)
            for b in self.branches
        ]

    def merge_nodes(self, keep: str, remove: Sequence[str]) -> "Netlist":
        """Return a new netlist with every node in *remove* renamed to *keep*.

        This is how the desktop (Skylake-S) package "shorts" the gated and
        ungated voltage domains: the per-core domain nodes collapse into the
        shared ungated node.  Branches that end up connecting *keep* to
        itself (for example the power-gate branches themselves) are dropped.
        """
        removed = set(remove)
        merged = Netlist()
        for branch in self.branches:
            node_a = keep if branch.node_a in removed else branch.node_a
            node_b = keep if branch.node_b in removed else branch.node_b
            if node_a == node_b:
                continue
            merged.add(branch.name, node_a, node_b, branch.element)
        return merged
