"""Decoupling-capacitor banks.

The paper's bypass technique works because shorting the gated and ungated
voltage domains lets every core share the die's Metal-Insulator-Metal (MIM)
capacitance and the package decaps (Section 4.1).  This module models those
banks as single lumped capacitors with effective ESR/ESL, plus helpers that
build banks representative of a Skylake-class client die and package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_non_negative, ensure_positive
from repro.pdn.elements import Capacitor


@dataclass(frozen=True)
class CapacitorBank:
    """A bank of identical decoupling capacitors in parallel.

    Parameters
    ----------
    name:
        Identifier used in netlist branch names.
    unit_capacitance_f:
        Capacitance of a single unit.
    unit_esr_ohm:
        Equivalent series resistance of a single unit.
    unit_esl_h:
        Equivalent series inductance of a single unit.
    count:
        Number of units in parallel.
    """

    name: str
    unit_capacitance_f: float
    unit_esr_ohm: float
    unit_esl_h: float
    count: int

    def __post_init__(self) -> None:
        ensure_positive(self.unit_capacitance_f, "unit_capacitance_f")
        ensure_non_negative(self.unit_esr_ohm, "unit_esr_ohm")
        ensure_non_negative(self.unit_esl_h, "unit_esl_h")
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")

    # -- aggregation ---------------------------------------------------------------

    @property
    def total_capacitance_f(self) -> float:
        """Total capacitance of the bank."""
        return self.unit_capacitance_f * self.count

    @property
    def effective_esr_ohm(self) -> float:
        """Effective ESR of the parallel combination."""
        return self.unit_esr_ohm / self.count

    @property
    def effective_esl_h(self) -> float:
        """Effective ESL of the parallel combination."""
        return self.unit_esl_h / self.count

    def as_capacitor(self) -> Capacitor:
        """Lumped equivalent of the whole bank."""
        return Capacitor(
            capacitance_f=self.total_capacitance_f,
            esr_ohm=self.effective_esr_ohm,
            esl_h=self.effective_esl_h,
        )

    def split(self, parts: int) -> "CapacitorBank":
        """Return a bank holding ``count / parts`` units (at least one).

        Used to partition the die MIM capacitance between per-core gated
        domains in the baseline (gated) PDN topology.
        """
        if parts < 1:
            raise ConfigurationError(f"parts must be >= 1, got {parts}")
        return CapacitorBank(
            name=f"{self.name}_split{parts}",
            unit_capacitance_f=self.unit_capacitance_f,
            unit_esr_ohm=self.unit_esr_ohm,
            unit_esl_h=self.unit_esl_h,
            count=max(1, self.count // parts),
        )

    def scaled(self, factor: float) -> "CapacitorBank":
        """Return a bank with the unit count scaled by *factor* (at least one)."""
        ensure_positive(factor, "factor")
        return CapacitorBank(
            name=f"{self.name}_x{factor:g}",
            unit_capacitance_f=self.unit_capacitance_f,
            unit_esr_ohm=self.unit_esr_ohm,
            unit_esl_h=self.unit_esl_h,
            count=max(1, int(round(self.count * factor))),
        )


# -- representative banks ------------------------------------------------------------


def die_mim_bank(name: str = "die_mim", count: int = 12000) -> CapacitorBank:
    """Die-side Metal-Insulator-Metal capacitance for the core domain.

    MIM capacitors are distributed across the die in the upper metal layers;
    each "unit" here is a small tile.  The aggregate for a four-core Skylake
    core domain is on the order of a few microfarads with very low mounted
    inductance, which is what damps the die-level (tens of MHz) resonance.
    """
    return CapacitorBank(
        name=name,
        unit_capacitance_f=500e-12,
        unit_esr_ohm=1.2,
        unit_esl_h=4e-12,
        count=count,
    )


def package_decap_bank(name: str = "pkg_decap", count: int = 18) -> CapacitorBank:
    """Package-substrate decoupling capacitors for the core domain.

    Land-side / die-side ceramic capacitors of a few microfarads each with
    sub-nanohenry mounted inductance.  These control the package resonance
    in the hundreds-of-kHz to few-MHz range of Fig. 4.
    """
    return CapacitorBank(
        name=name,
        unit_capacitance_f=2.2e-6,
        unit_esr_ohm=6e-3,
        unit_esl_h=0.5e-9,
        count=count,
    )


def board_bulk_bank(name: str = "board_bulk", count: int = 10) -> CapacitorBank:
    """Motherboard bulk capacitance behind the socket.

    Polymer/electrolytic bulk capacitors of hundreds of microfarads each;
    they hold the rail between VR control-loop updates and set the
    low-frequency end of the impedance profile.
    """
    return CapacitorBank(
        name=name,
        unit_capacitance_f=330e-6,
        unit_esr_ohm=5e-3,
        unit_esl_h=3.5e-9,
        count=count,
    )
