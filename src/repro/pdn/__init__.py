"""Power-delivery-network (PDN) substrate.

The paper's key electrical observation (Section 3, Observation 2 and
Fig. 4) is that per-core power-gates roughly double the impedance the CPU
cores see from the power-delivery network, which doubles the voltage-drop
guardband the firmware must carry.  This package models that network:

* :mod:`repro.pdn.elements` — lumped R/L/C elements with complex admittance.
* :mod:`repro.pdn.netlist` — a node/branch netlist and its admittance matrix.
* :mod:`repro.pdn.ac` — small-signal AC impedance analysis over a frequency
  sweep (the machinery behind Fig. 4).
* :mod:`repro.pdn.ladder` — the Skylake VR → board → package → die ladder
  topology, with and without power-gates.
* :mod:`repro.pdn.powergate` — electrical model of a core-sized power-gate.
* :mod:`repro.pdn.decap` — die MIM and package/board decoupling capacitors.
* :mod:`repro.pdn.vr` — motherboard voltage-regulator model.
* :mod:`repro.pdn.loadline` — the load-line / adaptive-voltage-positioning
  model of Fig. 2, with multi-level power-virus guardbands.
* :mod:`repro.pdn.droop` — vectorized time-domain di/dt droop simulation.
* :mod:`repro.pdn.transients` — declarative load traces and transient
  scenarios (core wake, AVX burst, staggered wake) for the droop simulator.
* :mod:`repro.pdn.guardband` — translation of impedance and droop into the
  voltage guardband the PMU applies.
"""

from repro.pdn.ac import ACAnalysis, ImpedanceProfile
from repro.pdn.decap import CapacitorBank, die_mim_bank, package_decap_bank
from repro.pdn.droop import DroopResult, DroopSimulator
from repro.pdn.elements import Capacitor, Inductor, Resistor
from repro.pdn.guardband import GuardbandBreakdown, GuardbandModel
from repro.pdn.ladder import PdnConfiguration, SkylakePdnBuilder
from repro.pdn.loadline import LoadLine, PowerVirusLevel, VirusLevelTable
from repro.pdn.netlist import Netlist
from repro.pdn.powergate import PowerGate
from repro.pdn.transients import (
    LoadTrace,
    TraceBuilder,
    TransientScenario,
    avx_burst_trace,
    core_wake_trace,
    multi_event_trace,
    paper_transient_scenarios,
    staggered_wake_trace,
    step_trace,
)
from repro.pdn.vr import VoltageRegulator

__all__ = [
    "ACAnalysis",
    "ImpedanceProfile",
    "CapacitorBank",
    "die_mim_bank",
    "package_decap_bank",
    "Capacitor",
    "Inductor",
    "Resistor",
    "GuardbandBreakdown",
    "GuardbandModel",
    "SkylakePdnBuilder",
    "PdnConfiguration",
    "LoadLine",
    "PowerVirusLevel",
    "VirusLevelTable",
    "Netlist",
    "PowerGate",
    "DroopSimulator",
    "DroopResult",
    "LoadTrace",
    "TraceBuilder",
    "TransientScenario",
    "avx_burst_trace",
    "core_wake_trace",
    "multi_event_trace",
    "paper_transient_scenarios",
    "staggered_wake_trace",
    "step_trace",
    "VoltageRegulator",
]
