"""Declarative inverse queries: solve for decision variables, don't sweep.

Where :class:`~repro.analysis.study.Study` enumerates a grid and reports
every cell, this module inverts the question in the declarative
constraint/assert style of the atopile exemplar: state what must hold
(``sustained_frequency_hz >= 3.0e9``), what may move (``tdp_w`` over a
discrete grid, SKU-bin cutoffs), and what to optimize (min TDP, max
yield × ASP), then let the solver issue only the probe cells it needs.

Three solver families cover the paper's inverse questions:

* ``method="bisect"`` — vectorized bisection over one monotone decision
  variable (every pending query probes in the same executor round), exact
  on discrete grids: it returns precisely the point a dense sweep's
  argmin/argmax would.
* ``method="grid"`` / ``method="pareto"`` — the dense scan and its
  Pareto-front extraction over several variables, for non-monotone
  questions and frontier studies (Vmin/guardband, frequency-vs-TDP).
* ``method="cutoff"`` — yield × ASP over a seeded die population: one
  population draw per system, then a vectorized scan of the cutoff grid
  against the same :class:`~repro.variation.binning.BinningPolicy`
  arithmetic the yield reports use.

Every probe dispatches through the unified
:class:`~repro.analysis.study.SweepRequest` machinery — the same
executors, caches and run store the ``over_*`` sweeps use — so process
pools parallelise probe rounds and a warm store replays a whole
optimization with zero simulator tasks.  Results are schema-versioned,
JSON-round-tripping :class:`OptimizationResult` values that land in the
run store next to the sweeps they condensed.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.study import (
    CallableTask,
    Study,
    SweepRequest,
)
from repro.common.errors import ConfigurationError
from repro.core.spec import SystemSpec, build_engine, resolve_spec
from repro.pmu.dvfs import CpuDemand
from repro.sim.metrics import RESULT_SCHEMA_VERSION, check_payload_schema
from repro.sim.operating_point import (
    frequency_ceiling_hz,
    sustained_operating_point,
)
from repro.variation.binning import (
    SCRAP_BIN,
    BinningPolicy,
    DieMetrics,
    die_metrics,
    skylake_binning_policy,
)
from repro.variation.distributions import VariationModel
from repro.variation.sampler import DiePopulationSampler
from repro.workloads.dynamics import DynamicScenario

__all__ = [
    "Constraint",
    "Objective",
    "OptimizationCell",
    "OptimizationPoint",
    "OptimizationResult",
    "OptimizationSpec",
    "OptimizationStudy",
]

#: Objective directions.
SENSES = ("min", "max")

#: Constraint comparison operators.
OPS = (">=", "<=")

#: Solver families and what they need.
METHODS = {
    "bisect": "one monotone variable, >=1 constraint, objective on the variable",
    "grid": "dense scan: >=1 variable, exactly one objective",
    "pareto": "frontier: >=1 variable, >=2 objectives",
    "cutoff": "SKU cutoffs over a population: variables name policy bins",
}

#: The suite under which dynamics probe cells are filed.
PROBE_SUITE = "optimize"


# -- the declarative query -------------------------------------------------------------


@dataclass(frozen=True)
class Objective:
    """What to optimize: a metric (or decision variable) and a direction."""

    metric: str
    sense: str = "min"

    def __post_init__(self) -> None:
        if not self.metric:
            raise ConfigurationError("objective metric must be a non-empty string")
        if self.sense not in SENSES:
            raise ConfigurationError(
                f"objective sense must be one of {SENSES}, got {self.sense!r}"
            )

    def better(self, a: float, b: float) -> bool:
        """True when *a* strictly beats *b* under this objective."""
        return a < b if self.sense == "min" else a > b

    def describe(self) -> str:
        """``min metric`` / ``max metric``."""
        return f"{self.sense} {self.metric}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this objective."""
        return {"metric": self.metric, "sense": self.sense}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Objective":
        """Rebuild an objective from a :meth:`to_dict` payload."""
        return cls(metric=str(data["metric"]), sense=str(data["sense"]))


@dataclass(frozen=True)
class Constraint:
    """A declarative feasibility bound: ``metric <op> value``."""

    metric: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if not self.metric:
            raise ConfigurationError("constraint metric must be a non-empty string")
        if self.op not in OPS:
            raise ConfigurationError(
                f"constraint op must be one of {OPS}, got {self.op!r}"
            )
        if not np.isfinite(self.value):
            raise ConfigurationError(
                f"constraint value must be finite, got {self.value!r}"
            )

    def satisfied(self, value: float) -> bool:
        """Whether *value* clears this bound (exact comparisons)."""
        return value >= self.value if self.op == ">=" else value <= self.value

    def describe(self) -> str:
        """``metric >= value`` in human-readable form."""
        return f"{self.metric} {self.op} {self.value:g}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this constraint."""
        return {"metric": self.metric, "op": self.op, "value": self.value}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Constraint":
        """Rebuild a constraint from a :meth:`to_dict` payload."""
        return cls(
            metric=str(data["metric"]),
            op=str(data["op"]),
            value=float(data["value"]),
        )


VariableGrids = Union[
    Mapping[str, Sequence[float]],
    Sequence[Tuple[str, Sequence[float]]],
]
AspTable = Union[Mapping[str, float], Sequence[Tuple[str, float]]]


@dataclass(frozen=True)
class OptimizationSpec:
    """One declarative inverse query, ready to solve.

    Parameters
    ----------
    name:
        Query name; used in reports, store manifests and error messages.
    method:
        One of :data:`METHODS`.
    objectives:
        What to optimize.  ``bisect``/``grid``/``cutoff`` take exactly
        one objective; ``pareto`` takes two or more.
    constraints:
        Feasibility bounds every solution must clear.
    variables:
        Decision variables: name -> discrete ascending grid (a mapping or
        a sequence of pairs; stored canonically as tuples).  For
        ``bisect``/``grid``/``pareto`` the names are
        :class:`~repro.core.spec.SystemSpec` variant fields (``tdp_w``,
        ``guardband_offset_v``, ...); for ``cutoff`` they are SKU-bin
        names whose ``min_fmax_hz`` cutoff moves over the grid.
    asp:
        ``cutoff`` only: bin name -> average selling price, the weights of
        the yield × ASP revenue objective.
    """

    name: str
    method: str
    objectives: Tuple[Objective, ...]
    constraints: Tuple[Constraint, ...] = ()
    variables: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    asp: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("optimization name must be a non-empty string")
        if self.method not in METHODS:
            raise ConfigurationError(
                f"unknown optimization method {self.method!r}; known: "
                + ", ".join(f"{m} ({what})" for m, what in METHODS.items())
            )
        object.__setattr__(self, "objectives", tuple(self.objectives))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        variables = self.variables
        if isinstance(variables, Mapping):
            variables = tuple(variables.items())
        object.__setattr__(
            self,
            "variables",
            tuple(
                (str(name), tuple(float(v) for v in grid))
                for name, grid in variables
            ),
        )
        asp = self.asp
        if isinstance(asp, Mapping):
            asp = tuple(asp.items())
        object.__setattr__(
            self,
            "asp",
            tuple(sorted((str(name), float(value)) for name, value in asp)),
        )
        self._validate()

    def _validate(self) -> None:
        if not self.objectives:
            raise ConfigurationError(
                f"optimization {self.name!r} needs at least one objective"
            )
        if not self.variables:
            raise ConfigurationError(
                f"optimization {self.name!r} needs at least one decision variable"
            )
        names = [name for name, _ in self.variables]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"optimization {self.name!r} has duplicate variable names {names}"
            )
        for name, grid in self.variables:
            if not grid:
                raise ConfigurationError(
                    f"optimization {self.name!r}: variable {name!r} has an "
                    "empty grid — give it at least one candidate value"
                )
            if not all(np.isfinite(v) for v in grid):
                raise ConfigurationError(
                    f"optimization {self.name!r}: variable {name!r} grid "
                    "contains non-finite values"
                )
            if any(b <= a for a, b in zip(grid, grid[1:])):
                raise ConfigurationError(
                    f"optimization {self.name!r}: variable {name!r} grid must "
                    "be strictly ascending (bisection and tie-breaking are "
                    "defined on ordered grids)"
                )
        if self.method == "bisect":
            if len(self.variables) != 1:
                raise ConfigurationError(
                    f"method='bisect' takes exactly one decision variable; "
                    f"{self.name!r} declares {len(self.variables)}"
                    " — use method='grid' or method='pareto' for multi-"
                    "variable queries"
                )
            if not self.constraints:
                raise ConfigurationError(
                    f"method='bisect' needs at least one constraint to "
                    f"bisect against; {self.name!r} declares none"
                )
            if len(self.objectives) != 1:
                raise ConfigurationError(
                    f"method='bisect' takes exactly one objective; "
                    f"{self.name!r} declares {len(self.objectives)}"
                )
            objective = self.objectives[0]
            if objective.metric != self.variables[0][0]:
                raise ConfigurationError(
                    f"method='bisect' optimizes its decision variable "
                    f"directly; objective metric {objective.metric!r} must "
                    f"equal the variable name {self.variables[0][0]!r}"
                )
        elif self.method in ("grid", "cutoff"):
            if len(self.objectives) != 1:
                raise ConfigurationError(
                    f"method={self.method!r} takes exactly one objective; "
                    f"{self.name!r} declares {len(self.objectives)}"
                )
        elif self.method == "pareto":
            if len(self.objectives) < 2:
                raise ConfigurationError(
                    f"method='pareto' needs at least two objectives to trade "
                    f"off; {self.name!r} declares {len(self.objectives)}"
                )
        if self.method == "cutoff" and not self.asp:
            raise ConfigurationError(
                f"method='cutoff' needs an asp table (bin name -> selling "
                f"price) to weight yields; {self.name!r} declares none"
            )
        if self.method != "cutoff" and self.asp:
            raise ConfigurationError(
                f"asp only applies to method='cutoff' (got an asp table "
                f"with method={self.method!r})"
            )

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Decision-variable names, in declaration order."""
        return tuple(name for name, _ in self.variables)

    @property
    def grids(self) -> Dict[str, Tuple[float, ...]]:
        """Variable name -> candidate grid."""
        return dict(self.variables)

    @property
    def asp_table(self) -> Dict[str, float]:
        """Bin name -> average selling price (``cutoff`` queries)."""
        return dict(self.asp)

    def describe(self) -> str:
        """One-line human-readable form of the query."""
        parts = [objective.describe() for objective in self.objectives]
        if self.constraints:
            parts.append(
                "s.t. " + " and ".join(c.describe() for c in self.constraints)
            )
        return f"{self.name}: " + "; ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this query."""
        return {
            "name": self.name,
            "method": self.method,
            "objectives": [objective.to_dict() for objective in self.objectives],
            "constraints": [c.to_dict() for c in self.constraints],
            "variables": [[name, list(grid)] for name, grid in self.variables],
            "asp": [[name, value] for name, value in self.asp],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationSpec":
        """Rebuild a query from a :meth:`to_dict` payload."""
        return cls(
            name=str(data["name"]),
            method=str(data["method"]),
            objectives=tuple(
                Objective.from_dict(entry) for entry in data["objectives"]
            ),
            constraints=tuple(
                Constraint.from_dict(entry) for entry in data["constraints"]
            ),
            variables=tuple(
                (name, tuple(grid)) for name, grid in data["variables"]
            ),
            asp=tuple((name, value) for name, value in data["asp"]),
        )


# -- results ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OptimizationPoint:
    """One solved decision point: variable values and probed metrics."""

    variables: Tuple[Tuple[str, float], ...]
    metrics: Tuple[Tuple[str, float], ...]

    def variable(self, name: str) -> float:
        """The solved value of decision variable *name*."""
        for key, value in self.variables:
            if key == name:
                return value
        raise ConfigurationError(
            f"no variable {name!r} in this point; solved: "
            f"{[key for key, _ in self.variables]}"
        )

    def metric(self, name: str) -> float:
        """The probed value of metric *name* at this point."""
        for key, value in self.metrics:
            if key == name:
                return value
        raise ConfigurationError(
            f"no metric {name!r} recorded at this point; recorded: "
            f"{[key for key, _ in self.metrics]}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this point."""
        return {
            "variables": [[name, value] for name, value in self.variables],
            "metrics": [[name, value] for name, value in self.metrics],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationPoint":
        """Rebuild a point from a :meth:`to_dict` payload."""
        return cls(
            variables=tuple(
                (str(name), float(value)) for name, value in data["variables"]
            ),
            metrics=tuple(
                (str(name), float(value)) for name, value in data["metrics"]
            ),
        )


@dataclass(frozen=True)
class OptimizationCell:
    """The solution of one query for one base system spec."""

    spec: SystemSpec
    points: Tuple[OptimizationPoint, ...]
    probes: int

    @property
    def best(self) -> OptimizationPoint:
        """The solution point (scalar queries) / first frontier point."""
        return self.points[0]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this cell."""
        return {
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "probes": self.probes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationCell":
        """Rebuild a cell from a :meth:`to_dict` payload."""
        return cls(
            spec=SystemSpec.from_dict(data["spec"]),
            points=tuple(
                OptimizationPoint.from_dict(entry) for entry in data["points"]
            ),
            probes=int(data["probes"]),
        )


@dataclass(frozen=True)
class OptimizationResult:
    """A solved inverse query: one cell per base system spec.

    Serialises to JSON (:meth:`to_json` / :meth:`from_json` round-trip to
    an equal result) and lands in the run store when the study is backed
    by a :class:`~repro.store.cache.StoreCache`.
    """

    name: str
    spec: OptimizationSpec
    seed: Optional[int]
    cells: Tuple[OptimizationCell, ...]

    def cell(self, spec: Union[SystemSpec, str]) -> OptimizationCell:
        """The cell solved for *spec* (a spec, spec name, or label)."""
        wanted = spec if isinstance(spec, str) else spec.label
        for candidate in self.cells:
            if wanted in (candidate.spec.label, candidate.spec.name):
                return candidate
        raise ConfigurationError(
            f"no cell for spec {wanted!r} in optimization {self.name!r}; "
            f"solved: {[c.spec.label for c in self.cells]}"
        )

    def as_table(self, title: Optional[str] = None) -> str:
        """Render every cell's solution as a text table."""
        rows = []
        for cell in self.cells:
            for point in cell.points:
                rows.append(
                    [
                        cell.spec.label,
                        ", ".join(f"{n}={v:g}" for n, v in point.variables),
                        ", ".join(f"{n}={v:g}" for n, v in point.metrics),
                        cell.probes,
                    ]
                )
        return format_table(
            ["system", "solution", "metrics", "probes"],
            rows,
            title=self.spec.describe() if title is None else title,
        )

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this result."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "optimization",
            "name": self.name,
            "seed": self.seed,
            "spec": self.spec.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationResult":
        """Rebuild a result from a :meth:`to_dict` payload."""
        check_payload_schema(dict(data), "optimization result")
        return cls(
            name=str(data["name"]),
            spec=OptimizationSpec.from_dict(data["spec"]),
            seed=None if data["seed"] is None else int(data["seed"]),
            cells=tuple(
                OptimizationCell.from_dict(entry) for entry in data["cells"]
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """This result as canonical JSON."""
        return json.dumps(
            self.to_dict(), sort_keys=True, allow_nan=False, indent=indent
        )

    @classmethod
    def from_json(cls, text: str) -> "OptimizationResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# -- probe tasks (module-level so process pools can pickle them) -----------------------


def _static_probe(spec: SystemSpec, demand: CpuDemand) -> Dict[str, float]:
    """Sustained-operating-point metrics of one spec variant.

    Returns plain JSON scalars so the run store persists probe results
    through its ``json`` codec.
    """
    point = sustained_operating_point(build_engine(spec).pcode, demand)
    return {
        "sustained_frequency_hz": float(point.frequency_hz),
        "package_power_w": float(point.package_power_w),
        "voltage_v": float(point.voltage_v),
        "junction_temperature_c": float(point.junction_temperature_c),
    }


def _population_probe(
    spec: SystemSpec,
    variations: VariationModel,
    count: int,
    seed: int,
) -> Dict[str, List[float]]:
    """Per-die test metrics of one seeded population on one design.

    The cutoff scan re-bins these columns for every candidate cutoff
    combination without touching the simulator again; plain JSON lists so
    the run store persists the draw.
    """
    population = DiePopulationSampler(variations).sample(count, seed=seed)
    metrics = die_metrics(build_engine(spec).pcode, population)
    return {
        "fmax_hz": [float(v) for v in metrics.fmax_hz],
        "leakage_w": [float(v) for v in metrics.leakage_w],
        "vmin_v": [float(v) for v in metrics.vmin_v],
    }


def _result_placeholder(*args: Any) -> Any:
    """Fingerprint anchor for whole-result store entries; never executed."""
    raise ConfigurationError(
        "optimization results are computed by OptimizationStudy.run(), "
        "not executed as study tasks"
    )


# -- the solver ------------------------------------------------------------------------


def _pinned_seed(seed: Optional[int]) -> int:
    """Population queries pin the documented default seed when unseeded."""
    from repro.variation.population import UNSEEDED_DEFAULT_SEED

    return UNSEEDED_DEFAULT_SEED if seed is None else int(seed)


class OptimizationStudy:
    """A declared inverse query bound to base specs and an evaluation backend.

    Built by :meth:`Study.optimize`.  ``run()`` solves the query and
    returns an :class:`OptimizationResult`; probe sweeps dispatch through
    the study executor machinery, so ``executor="process"`` parallelises
    probe rounds and a :class:`~repro.store.cache.StoreCache` makes warm
    re-runs execute zero simulator tasks (the condensed result itself is
    content-addressed in the store, keyed by query, specs, backend and
    seed).
    """

    def __init__(
        self,
        specs: Sequence[Union[SystemSpec, str]],
        spec: OptimizationSpec,
        *,
        scenario: Optional[DynamicScenario] = None,
        demand: Optional[CpuDemand] = None,
        variations: Optional[VariationModel] = None,
        count: Optional[int] = None,
        binning: Optional[BinningPolicy] = None,
        request: Optional[SweepRequest] = None,
    ) -> None:
        if not isinstance(spec, OptimizationSpec):
            raise ConfigurationError(
                f"spec must be an OptimizationSpec, got {type(spec).__name__}"
            )
        self._spec = spec
        self._base_specs = tuple(resolve_spec(entry) for entry in specs)
        if not self._base_specs:
            raise ConfigurationError(
                "an optimization needs at least one base spec"
            )
        labels = [base.label for base in self._base_specs]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"duplicate base specs in optimization: {labels}"
            )
        if request is None:
            request = SweepRequest(name=spec.name)
        if request.cache is None:
            # One shared probe cache for the study's lifetime, so bisection
            # rounds and the final solution read-back never re-execute.
            request = dataclasses.replace(request, cache={})
        self._request = request
        self._scenario = scenario
        self._demand = demand
        self._variations = variations
        self._count = count
        self._binning = binning
        self._tasks_total = 0
        self._tasks_executed = 0
        self._validate_backend()

    def _validate_backend(self) -> None:
        name = self._spec.name
        if self._spec.method == "cutoff":
            if self._scenario is not None or self._demand is not None:
                raise ConfigurationError(
                    f"optimization {name!r}: method='cutoff' rebins a die "
                    "population; pass variations=/count=, not scenario= or "
                    "demand="
                )
            if self._variations is None or self._count is None:
                raise ConfigurationError(
                    f"optimization {name!r}: method='cutoff' needs "
                    "variations= (a VariationModel) and count= (dice to "
                    "draw)"
                )
            if self._count < 1:
                raise ConfigurationError("count must be >= 1")
            binning = (
                self._binning
                if self._binning is not None
                else skylake_binning_policy()
            )
            self._binning = binning
            known = set(binning.bin_names)
            unknown = [
                v for v in self._spec.variable_names if v not in known
            ]
            if unknown:
                raise ConfigurationError(
                    f"optimization {name!r}: cutoff variables must name "
                    f"policy bins; unknown: {unknown}, known: "
                    f"{sorted(known)}"
                )
            missing_asp = [
                b for b in binning.bin_names if b not in self._spec.asp_table
            ]
            if missing_asp:
                raise ConfigurationError(
                    f"optimization {name!r}: asp table is missing bins "
                    f"{missing_asp}; every bin of the policy needs a "
                    "selling price (use 0.0 for unsold bins)"
                )
            return
        if self._variations is not None or self._count is not None:
            raise ConfigurationError(
                f"optimization {name!r}: variations=/count= only apply to "
                "method='cutoff'"
            )
        if self._binning is not None:
            raise ConfigurationError(
                f"optimization {name!r}: binning= only applies to "
                "method='cutoff'"
            )
        if (self._scenario is None) == (self._demand is None):
            raise ConfigurationError(
                f"optimization {name!r}: pass exactly one evaluation "
                "backend — scenario= (closed-loop dynamics probes) or "
                "demand= (static sustained-operating-point probes)"
            )

    # -- introspection -----------------------------------------------------------------

    @property
    def name(self) -> str:
        """Query name (the sweep-request name)."""
        return self._request.name

    @property
    def spec(self) -> OptimizationSpec:
        """The declarative query being solved."""
        return self._spec

    @property
    def base_specs(self) -> Tuple[SystemSpec, ...]:
        """The base system specs, each solved independently."""
        return self._base_specs

    @property
    def request(self) -> SweepRequest:
        """The unified execution descriptor probes run under."""
        return self._request

    @property
    def seed(self) -> Optional[int]:
        """Seed of the query's stochastic paths (population draws)."""
        if self._spec.method == "cutoff":
            return _pinned_seed(self._request.seed)
        return self._request.seed

    @property
    def tasks_total(self) -> int:
        """Probe tasks declared across all solve rounds so far."""
        return self._tasks_total

    @property
    def tasks_executed(self) -> int:
        """Probe tasks actually executed (cache misses) so far."""
        return self._tasks_executed

    # -- execution ---------------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Solve the query and return the per-spec solutions.

        When the study is cache-backed, the condensed result is stored
        under a content-addressed key; a warm ``run()`` returns it without
        issuing a single probe.
        """
        result_task = self._result_task()
        cache = self._request.cache
        if cache is not None and result_task in cache:
            cached = cache[result_task]
            if isinstance(cached, OptimizationResult):
                return cached
        method = self._spec.method
        if method == "bisect":
            cells = self._solve_bisect()
        elif method == "grid":
            cells = self._solve_grid()
        elif method == "pareto":
            cells = self._solve_pareto()
        else:
            cells = self._solve_cutoff()
        result = OptimizationResult(
            name=self._request.name,
            spec=self._spec,
            seed=self.seed,
            cells=cells,
        )
        if cache is not None:
            cache[result_task] = result
        return result

    def _result_task(self) -> CallableTask:
        """The content-addressed identity of the condensed result."""
        return CallableTask(
            key=f"optimize/{self._spec.name}",
            fn=_result_placeholder,
            args=(
                self._spec,
                self._base_specs,
                self._scenario,
                self._demand,
                self._variations,
                self._count,
                self._binning,
            ),
        )

    # -- probe evaluation --------------------------------------------------------------

    def _needed_metrics(self) -> Tuple[str, ...]:
        """Metrics the query reads (constraints + non-variable objectives)."""
        variables = set(self._spec.variable_names)
        names = {c.metric for c in self._spec.constraints}
        names.update(
            o.metric for o in self._spec.objectives if o.metric not in variables
        )
        return tuple(sorted(names))

    def _evaluate(
        self,
        probes: Sequence[Tuple[SystemSpec, Tuple[Tuple[str, float], ...]]],
    ) -> List[Dict[str, float]]:
        """Evaluate decision points — one executor round for the batch.

        Each probe is ``(base spec, variable assignment)``; the variant
        spec is built through :meth:`SystemSpec.variant` (which rejects
        unknown variable names with an actionable error).  Returns the
        probed metric mapping per point, in order.
        """
        variants: List[SystemSpec] = []
        for base, assignment in probes:
            variants.append(base.variant(**dict(assignment)))
        unique: Dict[SystemSpec, None] = {}
        for variant in variants:
            unique.setdefault(variant)
        needed = self._needed_metrics()
        probe_request = self._request.derive(f"{self._request.name}-probes")
        if self._scenario is not None:
            study = Study(
                tuple(unique),
                {PROBE_SUITE: [self._scenario]},
                request=probe_request,
            )
            grid = study.run()
            self._tasks_total += len(study)
            self._tasks_executed += study.tasks_executed
            values: Dict[SystemSpec, Dict[str, float]] = {}
            for variant in unique:
                result = grid.get(variant, self._scenario.name, PROBE_SUITE)
                values[variant] = {
                    name: self._dynamic_metric(result, name) for name in needed
                }
        else:
            tasks = [
                CallableTask(
                    key=f"probe/{variant.label}",
                    fn=_static_probe,
                    args=(variant, self._demand),
                )
                for variant in unique
            ]
            study = Study(tasks=tasks, request=probe_request)
            grid = study.run()
            self._tasks_total += len(study)
            self._tasks_executed += study.tasks_executed
            values = {}
            for variant, task in zip(unique, tasks):
                probed = grid.task(task.key)
                values[variant] = {
                    name: self._static_metric(probed, name) for name in needed
                }
        return [values[variant] for variant in variants]

    def _dynamic_metric(self, result: Any, name: str) -> float:
        value = getattr(result, name, None)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"optimization {self._spec.name!r}: {name!r} is not a "
                "numeric metric of dynamics probes; use e.g. "
                "sustained_frequency_hz, average_frequency_hz, "
                "peak_frequency_hz, peak_temperature_c, or primary_metric"
            )
        return float(value)

    def _static_metric(self, probed: Mapping[str, float], name: str) -> float:
        if name not in probed:
            raise ConfigurationError(
                f"optimization {self._spec.name!r}: {name!r} is not a "
                "metric of static sustained-operating-point probes; "
                f"available: {sorted(probed)}"
            )
        return float(probed[name])

    def _feasible(self, metrics: Mapping[str, float]) -> bool:
        return all(
            c.satisfied(metrics[c.metric]) for c in self._spec.constraints
        )

    # -- solvers -----------------------------------------------------------------------

    def _solve_bisect(self) -> Tuple[OptimizationCell, ...]:
        """Vectorized bisection: all pending queries probe in one round.

        Feasibility is assumed monotone along the (ascending) grid — true
        for TDP-style variables, where raising the limit only enlarges the
        feasible set.  ``min`` finds the leftmost feasible point,
        ``max`` the rightmost; on discrete grids both coincide exactly
        with the dense sweep's answer.
        """
        name, grid = self._spec.variables[0]
        sense = self._spec.objectives[0].sense
        last = len(grid) - 1
        best_end = last if sense == "min" else 0

        probed: Dict[Tuple[str, int], Dict[str, float]] = {}
        counts: Dict[str, int] = {base.label: 0 for base in self._base_specs}

        def rounds(
            wanted: Sequence[Tuple[SystemSpec, int]]
        ) -> None:
            fresh = [
                (base, index)
                for base, index in wanted
                if (base.label, index) not in probed
            ]
            if not fresh:
                return
            metrics = self._evaluate(
                [(base, ((name, grid[index]),)) for base, index in fresh]
            )
            for (base, index), values in zip(fresh, metrics):
                probed[(base.label, index)] = values
                counts[base.label] += 1

        # The most-permissive end decides feasibility of the whole query.
        rounds([(base, best_end) for base in self._base_specs])
        infeasible = [
            base
            for base in self._base_specs
            if not self._feasible(probed[(base.label, best_end)])
        ]
        if infeasible:
            raise self._infeasible_error(
                name, grid[best_end], infeasible, probed, best_end
            )

        lo = {base.label: 0 for base in self._base_specs}
        hi = {base.label: last for base in self._base_specs}
        while True:
            pending = [
                base
                for base in self._base_specs
                if lo[base.label] < hi[base.label]
            ]
            if not pending:
                break
            mids = {}
            for base in pending:
                low, high = lo[base.label], hi[base.label]
                mids[base.label] = (
                    (low + high) // 2 if sense == "min" else (low + high + 1) // 2
                )
            rounds([(base, mids[base.label]) for base in pending])
            for base in pending:
                mid = mids[base.label]
                feasible = self._feasible(probed[(base.label, mid)])
                if sense == "min":
                    if feasible:
                        hi[base.label] = mid
                    else:
                        lo[base.label] = mid + 1
                else:
                    if feasible:
                        lo[base.label] = mid
                    else:
                        hi[base.label] = mid - 1

        # The converged index was always probed feasible along the way;
        # read its metrics back (pure cache hits).
        rounds([(base, lo[base.label]) for base in self._base_specs])
        cells = []
        for base in self._base_specs:
            index = lo[base.label]
            metrics = probed[(base.label, index)]
            point = OptimizationPoint(
                variables=((name, grid[index]),),
                metrics=tuple(sorted(metrics.items())),
            )
            cells.append(
                OptimizationCell(
                    spec=base, points=(point,), probes=counts[base.label]
                )
            )
        return tuple(cells)

    def _infeasible_error(
        self,
        variable: str,
        best_value: float,
        infeasible: Sequence[SystemSpec],
        probed: Mapping[Tuple[str, int], Mapping[str, float]],
        best_end: int,
    ) -> ConfigurationError:
        """An actionable 'no feasible point' error, with a ceiling hint."""
        details = []
        for base in infeasible:
            metrics = probed[(base.label, best_end)]
            misses = [
                f"{c.describe()} fails ({c.metric}={metrics[c.metric]:g})"
                for c in self._spec.constraints
                if not c.satisfied(metrics[c.metric])
            ]
            detail = f"{base.label}: " + "; ".join(misses)
            ceiling = self._ceiling_hint(base)
            if ceiling is not None:
                detail += ceiling
            details.append(detail)
        _, grid = self._spec.variables[0]
        return ConfigurationError(
            f"optimization {self._spec.name!r}: no feasible point on the "
            f"{variable} grid [{grid[0]:g} .. {grid[-1]:g}] — even "
            f"{variable}={best_value:g} misses the constraints. "
            + " | ".join(details)
            + ". Widen the grid or relax the constraints."
        )

    def _ceiling_hint(self, base: SystemSpec) -> Optional[str]:
        """When a frequency target exceeds the Vmax/Iccmax ceiling, say so."""
        targets = [
            c
            for c in self._spec.constraints
            if c.metric == "sustained_frequency_hz" and c.op == ">="
        ]
        if not targets:
            return None
        demand = self._demand
        if demand is None and self._scenario is not None:
            for phase in self._scenario.phases:
                if not phase.is_idle:
                    demand = phase.demand()
                    break
        if demand is None:
            return None
        ceiling = frequency_ceiling_hz(build_engine(base).pcode, demand)
        over = [c for c in targets if c.value > ceiling]
        if not over:
            return None
        return (
            f" (target {over[0].value / 1e9:g} GHz exceeds the "
            f"Vmax/Iccmax-limited ceiling {ceiling / 1e9:g} GHz — no "
            "power budget can reach it)"
        )

    def _variable_combos(self) -> List[Tuple[Tuple[str, float], ...]]:
        """The cartesian product of variable grids, row-major (last fastest)."""
        combos: List[Tuple[Tuple[str, float], ...]] = [()]
        for name, grid in self._spec.variables:
            combos = [
                combo + ((name, value),) for combo in combos for value in grid
            ]
        return combos

    def _dense_points(
        self,
    ) -> Dict[str, List[Tuple[Tuple[Tuple[str, float], ...], Dict[str, float]]]]:
        """Evaluate the full grid for every base spec (the dense scan)."""
        combos = self._variable_combos()
        probes = [
            (base, combo) for base in self._base_specs for combo in combos
        ]
        metrics = self._evaluate(probes)
        per_spec: Dict[
            str, List[Tuple[Tuple[Tuple[str, float], ...], Dict[str, float]]]
        ] = {base.label: [] for base in self._base_specs}
        for (base, combo), values in zip(probes, metrics):
            per_spec[base.label].append((combo, values))
        return per_spec

    def _objective_value(
        self,
        objective: Objective,
        combo: Tuple[Tuple[str, float], ...],
        metrics: Mapping[str, float],
    ) -> float:
        for name, value in combo:
            if name == objective.metric:
                return value
        return metrics[objective.metric]

    def _empty_feasible_error(self, base: SystemSpec) -> ConfigurationError:
        constraints = " and ".join(
            c.describe() for c in self._spec.constraints
        )
        return ConfigurationError(
            f"optimization {self._spec.name!r}: empty feasible set for "
            f"{base.label} — no grid point satisfies {constraints}. "
            "Widen the variable grids or relax the constraints."
        )

    def _solve_grid(self) -> Tuple[OptimizationCell, ...]:
        """The dense scan: evaluate every combination, keep the argbest.

        Ties break toward the first point in row-major grid order, the
        same order a hand-rolled nested-loop sweep visits — so this is
        the brute-force oracle the fast solvers are tested against.
        """
        objective = self._spec.objectives[0]
        per_spec = self._dense_points()
        cells = []
        for base in self._base_specs:
            best: Optional[Tuple[Tuple[Tuple[str, float], ...], Dict[str, float]]] = (
                None
            )
            best_score = 0.0
            for combo, metrics in per_spec[base.label]:
                if not self._feasible(metrics):
                    continue
                score = self._objective_value(objective, combo, metrics)
                if best is None or objective.better(score, best_score):
                    best, best_score = (combo, metrics), score
            if best is None:
                raise self._empty_feasible_error(base)
            combo, metrics = best
            point = OptimizationPoint(
                variables=combo, metrics=tuple(sorted(metrics.items()))
            )
            cells.append(
                OptimizationCell(
                    spec=base,
                    points=(point,),
                    probes=len(per_spec[base.label]),
                )
            )
        return tuple(cells)

    def _solve_pareto(self) -> Tuple[OptimizationCell, ...]:
        """Dense scan + Pareto-front extraction over >= 2 objectives.

        A point survives unless another feasible point is at least as good
        in every objective and strictly better in one.  The frontier keeps
        row-major grid order (deterministic and oracle-friendly).
        """
        objectives = self._spec.objectives
        per_spec = self._dense_points()
        cells = []
        for base in self._base_specs:
            feasible = [
                (combo, metrics)
                for combo, metrics in per_spec[base.label]
                if self._feasible(metrics)
            ]
            if not feasible:
                raise self._empty_feasible_error(base)
            scores = [
                tuple(
                    self._objective_value(objective, combo, metrics)
                    for objective in objectives
                )
                for combo, metrics in feasible
            ]
            frontier = []
            for i, (combo, metrics) in enumerate(feasible):
                dominated = False
                for j, other in enumerate(scores):
                    if j == i:
                        continue
                    at_least_as_good = all(
                        not objective.better(mine, theirs)
                        for objective, mine, theirs in zip(
                            objectives, scores[i], other
                        )
                    )
                    strictly_better = any(
                        objective.better(theirs, mine)
                        for objective, mine, theirs in zip(
                            objectives, scores[i], other
                        )
                    )
                    if at_least_as_good and strictly_better:
                        dominated = True
                        break
                if not dominated:
                    frontier.append(
                        OptimizationPoint(
                            variables=combo,
                            metrics=tuple(sorted(metrics.items())),
                        )
                    )
            cells.append(
                OptimizationCell(
                    spec=base,
                    points=tuple(frontier),
                    probes=len(per_spec[base.label]),
                )
            )
        return tuple(cells)

    # -- the cutoff (yield x ASP) solver -----------------------------------------------

    def _cutoff_metrics(
        self, policy: BinningPolicy, metrics: DieMetrics
    ) -> Dict[str, float]:
        """Revenue and yields of one candidate policy over one population."""
        report = policy.report(metrics)
        asp = self._spec.asp_table
        fractions = report.yield_fractions
        revenue = sum(
            fractions[bin_name] * asp[bin_name]
            for bin_name in policy.bin_names
        )
        values: Dict[str, float] = {
            "revenue_per_die": float(revenue),
            "yield.total": float(1.0 - fractions[SCRAP_BIN]),
        }
        for bin_name in (*policy.bin_names, SCRAP_BIN):
            values[f"yield.{bin_name}"] = float(fractions[bin_name])
        return values

    def _solve_cutoff(self) -> Tuple[OptimizationCell, ...]:
        """Yield × ASP over a seeded population: one draw, vectorized scan.

        The simulator runs once per base spec (the population's die
        metrics); every cutoff combination is then re-binned in-process
        with the exact :class:`~repro.variation.binning.BinningPolicy`
        arithmetic of the yield reports, so the argbest matches a
        brute-force scan bit for bit.
        """
        assert self._binning is not None and self._variations is not None
        assert self._count is not None
        objective = self._spec.objectives[0]
        seed = _pinned_seed(self._request.seed)
        tasks = [
            CallableTask(
                key=f"die-metrics/{base.label}",
                fn=_population_probe,
                args=(base, self._variations, self._count, seed),
            )
            for base in self._base_specs
        ]
        study = Study(
            tasks=tasks,
            request=self._request.derive(f"{self._request.name}-population"),
        )
        grid = study.run()
        self._tasks_total += len(study)
        self._tasks_executed += study.tasks_executed
        combos = self._variable_combos()
        cells = []
        for base, task in zip(self._base_specs, tasks):
            columns = grid.task(task.key)
            metrics = DieMetrics(
                fmax_hz=np.asarray(columns["fmax_hz"], dtype=float),
                leakage_w=np.asarray(columns["leakage_w"], dtype=float),
                vmin_v=np.asarray(columns["vmin_v"], dtype=float),
            )
            best: Optional[Tuple[Tuple[Tuple[str, float], ...], Dict[str, float]]] = (
                None
            )
            best_score = 0.0
            for combo in combos:
                cutoffs = dict(combo)
                candidate = BinningPolicy(
                    bins=tuple(
                        dataclasses.replace(
                            sku_bin, min_fmax_hz=cutoffs[sku_bin.name]
                        )
                        if sku_bin.name in cutoffs
                        else sku_bin
                        for sku_bin in self._binning.bins
                    )
                )
                values = self._cutoff_metrics(candidate, metrics)
                try:
                    feasible = self._feasible(values)
                    score = self._objective_value(objective, combo, values)
                except KeyError as error:
                    raise ConfigurationError(
                        f"optimization {self._spec.name!r}: unknown cutoff "
                        f"metric {error.args[0]!r}; available: "
                        f"{sorted(values)} (plus the variable names)"
                    ) from None
                if not feasible:
                    continue
                if best is None or objective.better(score, best_score):
                    best, best_score = (combo, values), score
            if best is None:
                raise self._empty_feasible_error(base)
            combo, values = best
            point = OptimizationPoint(
                variables=combo, metrics=tuple(sorted(values.items()))
            )
            cells.append(
                OptimizationCell(spec=base, points=(point,), probes=1)
            )
        return tuple(cells)
