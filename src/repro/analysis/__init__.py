"""Experiment definitions and reporting.

One function per table/figure of the paper's evaluation, each returning a
structured result object that the benchmarks regenerate and assert on, plus
plain-text table formatting for the examples and the EXPERIMENTS.md log.
"""

from repro.analysis.experiments import (
    Fig3Result,
    Fig4Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    run_fig3_guardband_motivation,
    run_fig4_impedance_profiles,
    run_fig7_spec_per_benchmark,
    run_fig8_spec_tdp_sweep,
    run_fig9_graphics_degradation,
    run_fig10_energy_efficiency,
    run_table1_package_cstates,
    run_table2_system_parameters,
)
from repro.analysis.reporting import format_table

__all__ = [
    "Fig3Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "run_fig3_guardband_motivation",
    "run_fig4_impedance_profiles",
    "run_fig7_spec_per_benchmark",
    "run_fig8_spec_tdp_sweep",
    "run_fig9_graphics_degradation",
    "run_fig10_energy_efficiency",
    "run_table1_package_cstates",
    "run_table2_system_parameters",
    "format_table",
]
