"""Experiment definitions, the study runner, and reporting.

* :mod:`repro.analysis.study` — the declarative sweep runner: grids of
  system specs x workload suites executed through a serial or process-pool
  executor with per-(spec, workload) result caching.
* :mod:`repro.analysis.experiments` — one function per table/figure of the
  paper's evaluation, each declaring its grid as a :class:`Study` and
  reducing the completed grid into a structured result object that the
  benchmarks regenerate and assert on.
* :mod:`repro.analysis.reporting` — plain-text table formatting for the
  examples and the EXPERIMENTS.md log.
"""

from repro.analysis.experiments import (
    Fig10Result,
    Fig3Result,
    Fig4Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    ReliabilityResult,
    run_fig10_energy_efficiency,
    run_fig3_guardband_motivation,
    run_fig4_impedance_profiles,
    run_fig7_spec_per_benchmark,
    run_fig8_spec_tdp_sweep,
    run_fig9_graphics_degradation,
    run_sec42_reliability_guardband,
    run_table1_package_cstates,
    run_table2_system_parameters,
)
from repro.analysis.reporting import format_table
from repro.analysis.study import (
    CallableTask,
    EngineTask,
    ProcessExecutor,
    SerialExecutor,
    Study,
    StudyCell,
    StudyResult,
)

__all__ = [
    "Fig3Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "ReliabilityResult",
    "run_fig3_guardband_motivation",
    "run_fig4_impedance_profiles",
    "run_fig7_spec_per_benchmark",
    "run_fig8_spec_tdp_sweep",
    "run_fig9_graphics_degradation",
    "run_fig10_energy_efficiency",
    "run_sec42_reliability_guardband",
    "run_table1_package_cstates",
    "run_table2_system_parameters",
    "format_table",
    "Study",
    "StudyCell",
    "StudyResult",
    "CallableTask",
    "EngineTask",
    "SerialExecutor",
    "ProcessExecutor",
]
