"""Fleet QoS studies: seeded scenario ensembles swept per spec and TDP.

:class:`FleetStudy` crosses system specs (x TDP levels) with named fleet
profiles, compiles each profile into a seeded scenario **ensemble** through
:class:`~repro.fleet.profiles.ScenarioGenerator` (bit-identical per seed),
and steps every (spec variant, ensemble member) cell through the study
machinery — the batched dynamics executor by default, so a whole ensemble
locksteps as numpy arrays, and any :class:`~repro.store.cache.StoreCache`
passed as ``cache=`` lands every member run in the persistent run store
(warm re-runs execute **zero** simulator tasks).

Member runs condense into per-cell :class:`~repro.fleet.qos.EnsembleQos`
verdicts — SLO-violation rate, throttle residency by limiting factor, the
worst-member p99 latency proxy — so the paper's gated-vs-bypass comparison
reads as "which design violates the fleet SLO less", per workload mix.

The usual entry point is :meth:`Study.over_fleet
<repro.analysis.study.Study.over_fleet>`; this module holds the study and
result types it returns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.reporting import format_table
from repro.analysis.study import Executor, Study, StudyTask, SweepRequest
from repro.common.errors import ConfigurationError
from repro.core.spec import SystemSpec, resolve_spec
from repro.fleet.profiles import FleetProfile, ScenarioGenerator, fleet_profile
from repro.fleet.qos import (
    DEFAULT_SLO_FREQUENCY_HZ,
    EnsembleQos,
    QosReport,
    aggregate_reports,
)
from repro.sim.metrics import RESULT_SCHEMA_VERSION, check_payload_schema
from repro.workloads.dynamics import DynamicScenario


@dataclass(frozen=True)
class FleetCell:
    """The pooled QoS of one (spec variant, fleet profile) grid cell."""

    spec: SystemSpec
    profile_name: str
    qos: EnsembleQos

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this cell."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "profile_name": self.profile_name,
            "qos": self.qos.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetCell":
        """Rebuild a cell from a :meth:`to_dict` payload."""
        check_payload_schema(data, "fleet cell")
        return cls(
            spec=SystemSpec.from_dict(data["spec"]),
            profile_name=data["profile_name"],
            qos=EnsembleQos.from_dict(data["qos"]),
        )


@dataclass(frozen=True)
class FleetStudyResult:
    """The completed grid of a fleet study, addressable by (spec, profile)."""

    name: str
    seed: int
    ensemble: int
    slo_frequency_hz: float
    cells: Tuple[FleetCell, ...]

    # -- lookup ------------------------------------------------------------------------

    def qos(
        self,
        spec: Union[SystemSpec, str],
        profile: Union[FleetProfile, str],
    ) -> EnsembleQos:
        """The pooled QoS of one (spec variant, profile) cell.

        *spec* may be the expanded variant, its label (``"name@45W"``) or a
        plain spec name when only one TDP level was swept; *profile* may be
        a :class:`~repro.fleet.profiles.FleetProfile` or its (bare or
        ``fleet-``-prefixed) name.
        """
        profile_name = (
            profile.name if isinstance(profile, FleetProfile) else profile
        )
        if profile_name.startswith("fleet-"):
            profile_name = profile_name[len("fleet-"):]
        for cell in self.cells:
            if cell.profile_name != profile_name:
                continue
            if isinstance(spec, SystemSpec):
                if cell.spec == spec:
                    return cell.qos
            elif spec in (cell.spec.label, cell.spec.name):
                return cell.qos
        raise ConfigurationError(
            f"fleet study {self.name!r} has no cell ({spec!r}, {profile_name!r})"
        )

    def profiles(self) -> Tuple[str, ...]:
        """Distinct profile names in grid order."""
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.profile_name)
        return tuple(seen)

    # -- reporting ---------------------------------------------------------------------

    def as_table(self, title: Optional[str] = None) -> str:
        """Render every cell's QoS headlines as a text table."""
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.spec.label,
                    cell.profile_name,
                    f"{cell.qos.violation_rate:.4f}",
                    f"{cell.qos.throttled_fraction:.4f}",
                    f"{cell.qos.p99_latency_proxy:.4f}",
                ]
            )
        return format_table(
            ["system", "profile", "slo_violation", "throttled", "p99_proxy"],
            rows,
            title=self.name if title is None else title,
        )

    # -- serialisation -----------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise this result to a JSON document."""
        payload = {
            "name": self.name,
            "schema_version": RESULT_SCHEMA_VERSION,
            "seed": self.seed,
            "ensemble": self.ensemble,
            "slo_frequency_hz": self.slo_frequency_hz,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        return json.dumps(
            payload, indent=indent, sort_keys=True, allow_nan=False
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetStudyResult":
        """Rebuild a fleet result from :meth:`to_json` output."""
        payload = json.loads(text)
        check_payload_schema(payload, "fleet result")
        return cls(
            name=payload["name"],
            seed=payload["seed"],
            ensemble=payload["ensemble"],
            slo_frequency_hz=payload["slo_frequency_hz"],
            cells=tuple(FleetCell.from_dict(cell) for cell in payload["cells"]),
        )


class FleetStudy:
    """A fleet QoS sweep: specs x TDP levels x profiles x ensemble members.

    Parameters
    ----------
    specs:
        System specs (or registered names) forming one grid axis.
    profiles:
        Fleet profiles — :class:`~repro.fleet.profiles.FleetProfile`
        objects or registered names (bare or ``fleet-``-prefixed).
    ensemble:
        Ensemble members compiled per profile.  Member *j* of a profile is
        bit-identical for a fixed seed regardless of the ensemble size
        (prefix-stability), so growing the ensemble only *adds* store
        entries — it never invalidates existing ones.
    tdp_levels_w:
        Optional TDP sweep; every spec expands to one variant per level.
    slo_frequency_hz:
        The frequency SLO every member run is judged against.
    request:
        The unified execution descriptor (executor / cache / seed / name);
        :meth:`Study.over_fleet <repro.analysis.study.Study.over_fleet>`
        builds one through the shared validation helper.  Defaults to the
        batched executor and seed 0.
    """

    def __init__(
        self,
        specs: Sequence[Union[SystemSpec, str]],
        profiles: Sequence[Union[FleetProfile, str]],
        *,
        ensemble: int = 8,
        tdp_levels_w: Optional[Sequence[float]] = None,
        slo_frequency_hz: float = DEFAULT_SLO_FREQUENCY_HZ,
        executor: Union[str, Executor] = "batched",
        max_workers: Optional[int] = None,
        cache: Optional[MutableMapping[StudyTask, Any]] = None,
        seed: Optional[int] = 0,
        name: str = "fleet-study",
        request: Optional[SweepRequest] = None,
    ) -> None:
        if request is not None:
            executor = request.executor
            max_workers = request.max_workers
            cache = request.cache
            seed = request.seed
            name = request.name
        else:
            SweepRequest(
                executor=executor,
                max_workers=max_workers,
                cache=cache,
                seed=seed,
                name=name,
            ).validate("FleetStudy")
        if ensemble < 1:
            raise ConfigurationError("ensemble must be >= 1")
        resolved = tuple(resolve_spec(spec) for spec in specs)
        if not resolved:
            raise ConfigurationError("a fleet study needs at least one spec")
        self._profiles = tuple(
            profile
            if isinstance(profile, FleetProfile)
            else fleet_profile(profile)
            for profile in profiles
        )
        if not self._profiles:
            raise ConfigurationError("a fleet study needs at least one profile")
        names = [profile.name for profile in self._profiles]
        if len(set(names)) != len(names):
            raise ConfigurationError("fleet profiles must have distinct names")
        if tdp_levels_w is not None:
            resolved = tuple(
                spec.variant(tdp_w=tdp)
                for tdp in tdp_levels_w
                for spec in resolved
            )
        self._specs = resolved
        self._ensemble = int(ensemble)
        # Like PopulationStudy, an unseeded fleet study pins seed 0 rather
        # than drawing OS entropy: compiled members must be replayable and
        # keep stable content-addressed run IDs.
        self._seed = 0 if seed is None else int(seed)
        self._slo_frequency_hz = slo_frequency_hz
        self._executor = executor
        self._max_workers = max_workers
        self._cache = cache
        self._name = name
        self._tasks_total = 0
        self._tasks_executed = 0

    # -- introspection -----------------------------------------------------------------

    @property
    def name(self) -> str:
        """Study name."""
        return self._name

    @property
    def seed(self) -> int:
        """Seed every profile ensemble is compiled from."""
        return self._seed

    @property
    def ensemble(self) -> int:
        """Ensemble members per profile."""
        return self._ensemble

    @property
    def specs(self) -> Tuple[SystemSpec, ...]:
        """The (TDP-expanded) spec axis of the grid."""
        return self._specs

    @property
    def profiles(self) -> Tuple[FleetProfile, ...]:
        """The profile axis of the grid."""
        return self._profiles

    @property
    def tasks_total(self) -> int:
        """Grid tasks of the last :meth:`run` (0 before any run)."""
        return self._tasks_total

    @property
    def tasks_executed(self) -> int:
        """Cache-miss tasks of the last :meth:`run` (0 before any run)."""
        return self._tasks_executed

    def scenarios(self, profile: FleetProfile) -> Tuple[DynamicScenario, ...]:
        """The compiled ensemble of one profile under the study seed."""
        return ScenarioGenerator(profile).ensemble(
            seed=self._seed, count=self._ensemble
        )

    # -- execution ---------------------------------------------------------------------

    def run(self) -> FleetStudyResult:
        """Compile every ensemble, execute the grid, pool the QoS verdicts.

        Every (spec variant, ensemble member) pair is one ordinary dynamic
        engine cell, so the batched executor locksteps the whole grid and a
        ``StoreCache`` persists each member run individually — a warm
        re-run (same specs, profiles, seed, ensemble) executes nothing.
        """
        suites = {
            profile.scenario_name: self.scenarios(profile)
            for profile in self._profiles
        }
        study = Study(
            self._specs,
            suites,
            request=SweepRequest(
                executor=self._executor,
                max_workers=self._max_workers,
                cache=self._cache,
                seed=self._seed,
                name=f"{self._name}-grid",
            ),
        )
        grid = study.run()
        self._tasks_total = len(study)
        self._tasks_executed = study.tasks_executed
        cells: List[FleetCell] = []
        for spec in self._specs:
            for profile in self._profiles:
                reports = [
                    QosReport.from_result(
                        grid.get(spec, member, suite=profile.scenario_name),
                        self._slo_frequency_hz,
                    )
                    for member in suites[profile.scenario_name]
                ]
                cells.append(
                    FleetCell(
                        spec=spec,
                        profile_name=profile.name,
                        qos=aggregate_reports(
                            reports,
                            name=f"{spec.label}/{profile.scenario_name}",
                        ),
                    )
                )
        return FleetStudyResult(
            name=self._name,
            seed=self._seed,
            ensemble=self._ensemble,
            slo_frequency_hz=self._slo_frequency_hz,
            cells=tuple(cells),
        )
