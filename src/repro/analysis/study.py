"""Declarative sweep studies over system specs and workload suites.

A :class:`Study` declares a grid — system specs x workload suites (and,
via :meth:`Study.over_tdp_levels`, x TDP levels) — and executes every cell
through a pluggable executor:

* :class:`SerialExecutor` runs cells in the calling process (default);
* :class:`BatchedExecutor` locksteps dynamic-scenario cells through the
  vectorized batched dynamics engine (default for
  :meth:`Study.over_dynamics`), running everything else serially;
* :class:`ProcessExecutor` fans cells out over a
  :mod:`concurrent.futures` process pool.

Results are cached per (spec, workload): re-running a study (or another
study sharing the same cache mapping) re-executes nothing.  The outcome is
a :class:`StudyResult`, which serialises to JSON and renders through
:func:`repro.analysis.reporting.format_table`.

Example::

    from repro.analysis.study import Study
    from repro.workloads.spec import spec_cpu2006_base_suite

    study = Study.over_tdp_levels(
        ("darkgates", "baseline"),
        tdp_levels_w=(35.0, 91.0),
        workloads=spec_cpu2006_base_suite(),
    )
    result = study.run()
    print(result.as_table())
"""

from __future__ import annotations

import json
import os
from concurrent import futures
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.reporting import format_table
from repro.common.deprecation import warn_deprecated
from repro.common.errors import ConfigurationError
from repro.core.spec import SystemSpec, build_engine, resolve_spec
from repro.sim.metrics import (
    RESULT_SCHEMA_VERSION,
    RunResult,
    check_payload_schema,
)
from repro.workloads.descriptors import Workload

if TYPE_CHECKING:
    from repro.analysis.fleet import FleetStudy  # noqa: F401  (signature refs)
    from repro.analysis.optimize import (  # noqa: F401  (signature refs)
        OptimizationSpec,
        OptimizationStudy,
    )
    from repro.pdn.transients import LoadTrace  # noqa: F401  (signature refs)
    from repro.pmu.dvfs import CpuDemand  # noqa: F401
    from repro.variation.binning import BinningPolicy  # noqa: F401
    from repro.variation.distributions import VariationModel  # noqa: F401
    from repro.variation.population import PopulationStudy  # noqa: F401
    from repro.workloads.dynamics import DynamicScenario  # noqa: F401

#: The default suite name used when a study is given a flat workload list.
DEFAULT_SUITE = "default"

#: The pseudo-suite under which callable-task results are filed.
TASK_SUITE = "tasks"


# -- tasks -----------------------------------------------------------------------------


@dataclass(frozen=True)
class EngineTask:
    """One grid cell: run one workload on the system built from one spec."""

    spec: SystemSpec
    workload: Workload


@dataclass(frozen=True)
class CallableTask:
    """An escape hatch for study steps that are not engine runs.

    The callable must be a module-level function (so that the process-pool
    executor can pickle it) and the arguments must be hashable (so that the
    task can key the result cache).
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()


StudyTask = Union[EngineTask, CallableTask]


def execute_task(task: StudyTask) -> Any:
    """Execute one study task (module-level so process pools can pickle it).

    Engine tasks go through the shared :func:`repro.core.spec.build_engine`
    cache, so workers of a process pool each build a spec's engine at most
    once, no matter how many cells they execute.
    """
    if isinstance(task, EngineTask):
        return build_engine(task.spec).run(task.workload)
    return task.fn(*task.args)


# -- executors -------------------------------------------------------------------------


class SerialExecutor:
    """Runs every task in the calling process, in order."""

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[Any]:
        """Execute *tasks* and return their results in order."""
        return [execute_task(task) for task in tasks]


class BatchedExecutor:
    """Locksteps every dynamic-scenario cell through the batched fast path.

    Dynamic-scenario engine tasks — the slowest cells of a study grid, each
    a per-step closed-loop trajectory — are collected into one
    :class:`~repro.sim.dynamics.BatchedDynamicsSimulator` batch and stepped
    together as numpy arrays; every other task falls back to in-process
    serial execution.  This is the default executor of
    :meth:`Study.over_dynamics`, and produces results identical to the
    serial (per-run) executor.
    """

    def __init__(self) -> None:
        from repro.sim.dynamics import BatchedDynamicsSimulator

        self._batch = BatchedDynamicsSimulator()

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[Any]:
        """Execute *tasks*, batching the dynamic cells, preserving order."""
        from repro.workloads.dynamics import DynamicScenario

        results: List[Any] = [None] * len(tasks)
        dynamic: List[int] = []
        for position, task in enumerate(tasks):
            if isinstance(task, EngineTask) and isinstance(
                task.workload, DynamicScenario
            ):
                dynamic.append(position)
            else:
                results[position] = execute_task(task)
        if dynamic:
            pairs = [
                (build_engine(tasks[position].spec).pcode, tasks[position].workload)
                for position in dynamic
            ]
            for position, result in zip(dynamic, self._batch.run_batch(pairs)):
                results[position] = result
        return results


class ProcessExecutor:
    """Fans tasks out over a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the interpreter's own default (CPU count).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self._max_workers = max_workers

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[Any]:
        """Execute *tasks* across the pool, preserving order."""
        if not tasks:
            return []
        workers = self._max_workers or os.cpu_count() or 1
        chunksize = max(1, len(tasks) // (workers * 4))
        with futures.ProcessPoolExecutor(max_workers=self._max_workers) as pool:
            return list(pool.map(execute_task, tasks, chunksize=chunksize))


class StoreOnlyExecutor:
    """An executor that refuses to execute: every cell must already exist.

    Backing a study with this executor turns ``run()`` into a pure read of
    the study's cache — the path :meth:`StudyResult.from_store` uses to
    answer queries from the persistent run store without ever invoking the
    simulation engine.  A cache miss raises instead of simulating.
    """

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[Any]:
        """Never executes; raises listing the missing cells."""
        labels = [
            (
                f"({task.spec.label}, {task.workload.name})"
                if isinstance(task, EngineTask)
                else f"(task {task.key!r})"
            )
            for task in tasks[:5]
        ]
        suffix = "" if len(tasks) <= 5 else f" and {len(tasks) - 5} more"
        raise ConfigurationError(
            f"{len(tasks)} cell(s) missing from the run store: "
            f"{', '.join(labels)}{suffix}; execute the sweep first "
            "(Study(cache=StoreCache(...)).run() or python -m repro run)"
        )


Executor = Union[
    SerialExecutor, BatchedExecutor, ProcessExecutor, StoreOnlyExecutor
]

_EXECUTORS: Dict[str, Callable[[], Executor]] = {
    "serial": SerialExecutor,
    "batched": BatchedExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    executor: Union[str, Executor], max_workers: Optional[int] = None
) -> Executor:
    """Turn an executor name (or pass an executor object through).

    *max_workers* is validated here for every executor shape, so a bad
    pool size fails fast instead of surfacing later (or being silently
    ignored by a non-process executor).
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    if isinstance(executor, str):
        try:
            factory = _EXECUTORS[executor]
        except KeyError:
            raise ConfigurationError(
                f"unknown executor {executor!r}; known: {sorted(_EXECUTORS)}"
            ) from None
        if executor == "process":
            return ProcessExecutor(max_workers=max_workers)
        return factory()
    if not hasattr(executor, "run_tasks"):
        raise ConfigurationError(
            f"executor must be one of {sorted(_EXECUTORS)} or expose "
            f"run_tasks(); got {type(executor).__name__}"
        )
    return executor


# -- the unified sweep request ---------------------------------------------------------


#: Execution keywords every sweep entry point accepts — the one surface
#: shared by ``Study(...)``, every ``Study.over_*`` constructor,
#: ``Study.optimize`` and ``PopulationStudy``.
SWEEP_KWARGS = ("executor", "max_workers", "cache", "seed", "name")


@dataclass(frozen=True)
class SweepRequest:
    """How a sweep executes — one descriptor behind every ``Study`` entry.

    Each entry point reduces its execution keywords to a ``SweepRequest``
    through :meth:`from_kwargs`, so executor resolution, cache wiring,
    seeding and naming are validated once and behave identically
    everywhere (including :meth:`Study.optimize`, which replays probe
    sweeps through the exact same machinery).
    """

    executor: Union[str, Executor] = "serial"
    max_workers: Optional[int] = None
    cache: Optional[MutableMapping[StudyTask, Any]] = None
    seed: Optional[int] = None
    name: str = "study"

    @classmethod
    def from_kwargs(
        cls,
        entry_point: str,
        kwargs: Mapping[str, Any],
        *,
        extra: Sequence[str] = (),
        defaults: Optional[Mapping[str, Any]] = None,
    ) -> Tuple["SweepRequest", Dict[str, Any]]:
        """Validate *kwargs* for *entry_point*; split request from extras.

        Returns ``(request, extras)``, where *extras* holds the
        entry-point-specific keywords named in *extra*.  Unknown keywords
        raise :class:`ConfigurationError` naming the valid set, and
        conflicting combinations are rejected by :meth:`validate`.
        *defaults* supplies entry-point defaults that caller keywords
        override.
        """
        allowed = set(SWEEP_KWARGS) | set(extra)
        unknown = sorted(set(kwargs) - allowed)
        if unknown:
            raise ConfigurationError(
                f"{entry_point}() got unexpected keyword argument(s) "
                f"{', '.join(map(repr, unknown))}; "
                f"valid keywords: {', '.join(sorted(allowed))}"
            )
        merged: Dict[str, Any] = dict(defaults or {})
        merged.update(kwargs)
        request = cls(
            **{key: merged.pop(key) for key in SWEEP_KWARGS if key in merged}
        )
        request.validate(entry_point)
        return request, merged

    def validate(self, entry_point: str) -> None:
        """Reject conflicting keyword combinations with actionable errors."""
        if (
            self.max_workers is not None
            and isinstance(self.executor, str)
            and self.executor != "process"
        ):
            raise ConfigurationError(
                f"{entry_point}(): max_workers={self.max_workers} conflicts "
                f"with executor={self.executor!r}; max_workers sizes the "
                "process pool, so pass executor='process' (or drop "
                "max_workers)"
            )

    def resolve(self) -> Executor:
        """The executor instance this request describes."""
        return resolve_executor(self.executor, max_workers=self.max_workers)

    def derive(self, name: str) -> "SweepRequest":
        """This request renamed — for sub-sweeps dispatched on its behalf."""
        return SweepRequest(
            executor=self.executor,
            max_workers=self.max_workers,
            cache=self.cache,
            seed=self.seed,
            name=name,
        )


def _legacy_positionals(
    entry_point: str,
    legacy: Tuple[Any, ...],
    names: Tuple[str, ...],
    values: Tuple[Any, ...],
) -> Tuple[Any, ...]:
    """Deprecation shim: sweep options that used to be positional.

    The unified sweep API takes only grid axes positionally; options are
    keyword-only.  Positional use still works but warns through
    :func:`repro.common.deprecation.warn_deprecated`.
    """
    if not legacy:
        return values
    if len(legacy) > len(names):
        raise ConfigurationError(
            f"{entry_point}() takes at most {len(names)} positional "
            f"option(s) ({', '.join(names)}); got {len(legacy)}"
        )
    supplied = names[: len(legacy)]
    warn_deprecated(
        f"passing {', '.join(supplied)} to {entry_point}() positionally",
        f"the keyword form ({', '.join(name + '=...' for name in supplied)})",
        stacklevel=4,
    )
    out = list(values)
    out[: len(legacy)] = legacy
    return tuple(out)


# -- results ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StudyCell:
    """One completed cell of a study grid."""

    spec: Optional[SystemSpec]  # None for callable tasks
    suite: str
    workload_name: str
    value: Any

    @property
    def label(self) -> str:
        """Display label of the system column ("-" for callable tasks)."""
        return self.spec.label if self.spec is not None else "-"


@dataclass(frozen=True)
class StudyResult:
    """The completed grid of a study, addressable by (spec, workload)."""

    name: str
    cells: Tuple[StudyCell, ...]
    #: Seed of the study's stochastic paths (``None`` for deterministic
    #: studies); recorded in the JSON payload so runs can be replayed.
    seed: Optional[int] = None
    _index: Dict[Tuple[Optional[SystemSpec], str, str], Any] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        index: Dict[Tuple[Optional[SystemSpec], str, str], Any] = {}
        for cell in self.cells:
            index[(cell.spec, cell.suite, cell.workload_name)] = cell.value
        object.__setattr__(self, "_index", index)

    # -- lookup ------------------------------------------------------------------------

    def get(
        self,
        spec: Union[SystemSpec, str],
        workload: Union[Workload, str],
        suite: str = DEFAULT_SUITE,
    ) -> Any:
        """The value of one engine cell.

        *spec* may be a :class:`SystemSpec` or a registered name; *workload*
        may be a descriptor or its name.
        """
        resolved = resolve_spec(spec)
        workload_name = workload if isinstance(workload, str) else workload.name
        try:
            return self._index[(resolved, suite, workload_name)]
        except KeyError:
            raise ConfigurationError(
                f"study {self.name!r} has no cell "
                f"({resolved.label}, {suite!r}, {workload_name!r})"
            ) from None

    def task(self, key: str) -> Any:
        """The value of one callable task."""
        try:
            return self._index[(None, TASK_SUITE, key)]
        except KeyError:
            raise ConfigurationError(
                f"study {self.name!r} has no task {key!r}"
            ) from None

    def specs(self) -> Tuple[SystemSpec, ...]:
        """Distinct specs in grid order."""
        seen: Dict[SystemSpec, None] = {}
        for cell in self.cells:
            if cell.spec is not None:
                seen.setdefault(cell.spec)
        return tuple(seen)

    # -- reporting ---------------------------------------------------------------------

    def as_table(self, title: Optional[str] = None) -> str:
        """Render every engine cell's headline metric as a text table."""
        rows = []
        for cell in self.cells:
            if isinstance(cell.value, RunResult):
                metric = f"{cell.value.primary_metric:.4f}"
            else:
                metric = str(cell.value)
            rows.append([cell.label, cell.suite, cell.workload_name, metric])
        return format_table(
            ["system", "suite", "workload", "metric"],
            rows,
            title=self.name if title is None else title,
        )

    # -- serialisation -----------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise this result to a JSON document.

        Engine cells always serialise (their values are :class:`RunResult`
        objects); callable-task values must themselves be JSON-encodable,
        and tuples inside them come back as lists.
        """
        payload: Dict[str, Any] = {
            "name": self.name,
            "schema_version": RESULT_SCHEMA_VERSION,
            "cells": [
                {
                    "spec": cell.spec.to_dict() if cell.spec is not None else None,
                    "suite": cell.suite,
                    "workload": cell.workload_name,
                    "value_kind": (
                        "run_result" if isinstance(cell.value, RunResult) else "json"
                    ),
                    "value": (
                        cell.value.to_dict()
                        if isinstance(cell.value, RunResult)
                        else cell.value
                    ),
                }
                for cell in self.cells
            ],
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        try:
            return json.dumps(
                payload, indent=indent, sort_keys=True, allow_nan=False
            )
        except TypeError as error:
            raise ConfigurationError(
                f"study {self.name!r} holds a non-JSON-serialisable task "
                f"value: {error}"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "StudyResult":
        """Rebuild a study result from :meth:`to_json` output.

        Engine cells come back as fully-typed :class:`RunResult` objects;
        callable-task values come back as the plain JSON values they were
        stored as.
        """
        payload = json.loads(text)
        check_payload_schema(payload, "study result")
        cells = []
        for entry in payload["cells"]:
            spec = (
                SystemSpec.from_dict(entry["spec"])
                if entry["spec"] is not None
                else None
            )
            value = entry["value"]
            if entry["value_kind"] == "run_result":
                value = RunResult.from_dict(value)
            cells.append(
                StudyCell(
                    spec=spec,
                    suite=entry["suite"],
                    workload_name=entry["workload"],
                    value=value,
                )
            )
        return cls(
            name=payload["name"], cells=tuple(cells), seed=payload.get("seed")
        )

    @classmethod
    def from_store(
        cls,
        cache: MutableMapping["StudyTask", Any],
        specs: Sequence[Union[SystemSpec, str]],
        workloads: "WorkloadSuites",
        *,
        name: str = "study",
        seed: Optional[int] = None,
    ) -> "StudyResult":
        """Assemble a study result purely from persisted runs.

        Declares the same grid a :class:`Study` would (*specs* x
        *workloads*) but backs it with :class:`StoreOnlyExecutor`: every
        cell must already be in *cache* — typically a
        :class:`~repro.store.cache.StoreCache` over the persistent run
        store — and a missing cell raises instead of simulating.  The warm
        path touches zero simulator code.
        """
        study = Study(
            specs,
            workloads,
            cache=cache,
            executor=StoreOnlyExecutor(),
            seed=seed,
            name=name,
        )
        return study.run()


# -- the study runner ------------------------------------------------------------------


WorkloadSuites = Union[Sequence[Workload], Mapping[str, Sequence[Workload]]]


class Study:
    """A declarative sweep: specs x workload suites, cached and executable.

    Parameters
    ----------
    specs:
        System specs (or registered spec names) forming one grid axis.
    workloads:
        Either a flat workload sequence (filed under the ``"default"``
        suite) or a mapping of suite name -> workload sequence.
    tasks:
        Extra :class:`CallableTask` steps to execute alongside the grid.
    executor:
        ``"serial"`` (default), ``"process"``, or any object exposing
        ``run_tasks(tasks) -> results``.
    max_workers:
        Pool size when *executor* is ``"process"``.
    cache:
        Mapping of task -> result shared between runs (and, if passed to
        several studies, between studies).  Defaults to a fresh dict.
    seed:
        Seed for the study's stochastic paths, threaded as a
        :class:`numpy.random.Generator` seed through whatever stochastic
        tasks the study runs (population sampling today) and recorded in
        the result JSON.  ``None`` (the default) marks a deterministic
        study.
    name:
        Study name used in reports.
    request:
        A pre-validated :class:`SweepRequest` carrying the execution
        keywords; the ``over_*`` constructors build one through the shared
        validation helper.  Mutually exclusive with passing the individual
        execution keywords.
    """

    def __init__(
        self,
        specs: Sequence[Union[SystemSpec, str]] = (),
        workloads: WorkloadSuites = (),
        *,
        tasks: Sequence[CallableTask] = (),
        executor: Union[str, Executor] = "serial",
        max_workers: Optional[int] = None,
        cache: Optional[MutableMapping[StudyTask, Any]] = None,
        seed: Optional[int] = None,
        name: str = "study",
        request: Optional[SweepRequest] = None,
    ) -> None:
        if request is None:
            request = SweepRequest(
                executor=executor,
                max_workers=max_workers,
                cache=cache,
                seed=seed,
                name=name,
            )
            request.validate("Study")
        elif (
            executor != "serial"
            or max_workers is not None
            or cache is not None
            or seed is not None
            or name != "study"
        ):
            raise ConfigurationError(
                "pass either request= or the individual execution keywords "
                f"({', '.join(SWEEP_KWARGS)}), not both"
            )
        self._request = request
        self._name = request.name
        self._specs = tuple(resolve_spec(spec) for spec in specs)
        self._suites = self._normalise_suites(workloads)
        self._extra_tasks = tuple(tasks)
        self._executor = request.resolve()
        self._cache: MutableMapping[StudyTask, Any] = (
            request.cache if request.cache is not None else {}
        )
        self._seed = request.seed
        self._tasks_executed = 0
        self._grid = self._build_grid()

    @staticmethod
    def _normalise_suites(
        workloads: WorkloadSuites,
    ) -> Dict[str, Tuple[Workload, ...]]:
        if isinstance(workloads, Mapping):
            suites = {name: tuple(suite) for name, suite in workloads.items()}
        else:
            suites = {DEFAULT_SUITE: tuple(workloads)} if workloads else {}
        for suite_name, suite in suites.items():
            if suite_name == TASK_SUITE:
                raise ConfigurationError(
                    f"suite name {TASK_SUITE!r} is reserved for callable tasks"
                )
            names = [w.name for w in suite]
            if len(set(names)) != len(names):
                raise ConfigurationError(
                    f"suite {suite_name!r} has duplicate workload names"
                )
        return suites

    def _build_grid(self) -> Tuple[Tuple[str, str, StudyTask], ...]:
        # Each grid entry is (suite, workload_name, task); callable tasks are
        # filed under the reserved TASK_SUITE.  Identical (spec, workload)
        # pairs appearing in several suites share one task (and one result).
        grid: List[Tuple[str, str, StudyTask]] = []
        for spec in self._specs:
            for suite_name, suite in self._suites.items():
                for workload in suite:
                    grid.append(
                        (suite_name, workload.name, EngineTask(spec, workload))
                    )
        for task in self._extra_tasks:
            if not isinstance(task, CallableTask):
                raise ConfigurationError(
                    f"tasks must be CallableTask instances, got {type(task).__name__}"
                )
            grid.append((TASK_SUITE, task.key, task))
        if len(set(grid)) != len(grid):
            raise ConfigurationError("study grid contains duplicate cells")
        return tuple(grid)

    # -- introspection -----------------------------------------------------------------

    @property
    def name(self) -> str:
        """Study name."""
        return self._name

    @property
    def request(self) -> SweepRequest:
        """The unified execution descriptor this study runs under."""
        return self._request

    @property
    def specs(self) -> Tuple[SystemSpec, ...]:
        """The spec axis of the grid."""
        return self._specs

    @property
    def suites(self) -> Dict[str, Tuple[Workload, ...]]:
        """The workload suites of the grid."""
        return dict(self._suites)

    @property
    def cache(self) -> MutableMapping[StudyTask, Any]:
        """The task-result cache backing this study."""
        return self._cache

    @property
    def seed(self) -> Optional[int]:
        """Seed of the study's stochastic paths (``None`` == deterministic)."""
        return self._seed

    @property
    def tasks_executed(self) -> int:
        """Cumulative number of tasks actually executed (cache misses)."""
        return self._tasks_executed

    def __len__(self) -> int:
        return len(self._grid)

    # -- execution ---------------------------------------------------------------------

    def run(self) -> StudyResult:
        """Execute every uncached cell and return the completed grid.

        Distinct tasks run through the executor once; results are cached so
        a repeat ``run()`` (or an overlapping study sharing the cache)
        executes nothing.
        """
        seen: Dict[StudyTask, None] = {}
        for _, _, task in self._grid:
            if task not in self._cache:
                seen.setdefault(task)
        pending: List[StudyTask] = list(seen)
        if pending:
            results = self._executor.run_tasks(pending)
            for task, result in zip(pending, results):
                self._cache[task] = result
            self._tasks_executed += len(pending)
        cells = tuple(
            StudyCell(
                spec=task.spec if isinstance(task, EngineTask) else None,
                suite=suite,
                workload_name=workload_name,
                value=self._cache[task],
            )
            for suite, workload_name, task in self._grid
        )
        return StudyResult(name=self._name, cells=cells, seed=self._seed)

    # -- construction helpers ----------------------------------------------------------

    @classmethod
    def over_tdp_levels(
        cls,
        specs: Sequence[Union[SystemSpec, str]],
        tdp_levels_w: Iterable[float],
        workloads: WorkloadSuites,
        **kwargs: Any,
    ) -> "Study":
        """A grid of spec variants across a TDP sweep.

        Expands every spec to one variant per TDP level (TDP-major order:
        all specs at the first level, then all at the next).
        """
        request, _ = SweepRequest.from_kwargs("Study.over_tdp_levels", kwargs)
        resolved = [resolve_spec(spec) for spec in specs]
        expanded = [
            spec.variant(tdp_w=tdp) for tdp in tdp_levels_w for spec in resolved
        ]
        return cls(expanded, workloads, request=request)

    @classmethod
    def over_transients(
        cls,
        specs: Sequence[Union[SystemSpec, str]],
        traces: Sequence["LoadTrace"],
        *legacy: Any,
        time_steps_s: Iterable[float] = (0.5e-9,),
        suite: str = "transients",
        **kwargs: Any,
    ) -> "Study":
        """A transient-droop sweep: PDN configuration x trace x time step.

        Each spec contributes its package's PDN (so a gated spec and a
        bypassed spec side by side reproduce the paper's Fig. 6
        comparison); each (trace, time step) pair becomes one
        :class:`~repro.pdn.transients.TransientScenario` cell.  Scenarios
        carry the trace's name (suffixed with the step when non-default),
        so results read back with ``result.get(spec, trace.name, suite)``.
        """
        from repro.pdn.transients import TransientScenario

        time_steps_s, suite = _legacy_positionals(
            "Study.over_transients",
            legacy,
            ("time_steps_s", "suite"),
            (time_steps_s, suite),
        )
        request, _ = SweepRequest.from_kwargs("Study.over_transients", kwargs)
        scenarios = [
            TransientScenario.from_trace(trace, time_step_s=time_step)
            for time_step in time_steps_s
            for trace in traces
        ]
        return cls(specs, {suite: scenarios}, request=request)

    @classmethod
    def over_dynamics(
        cls,
        specs: Sequence[Union[SystemSpec, str]],
        scenarios: Sequence["DynamicScenario"],
        *legacy: Any,
        tdp_levels_w: Optional[Iterable[float]] = None,
        suite: str = "dynamics",
        **kwargs: Any,
    ) -> "Study":
        """A closed-loop dynamics sweep: spec x TDP level x scenario.

        Each cell steps one :class:`~repro.workloads.dynamics.DynamicScenario`
        through the closed Pcode loop of the system built from one spec
        variant, producing a :class:`~repro.sim.metrics.DynamicRunResult`.
        When *tdp_levels_w* is given every spec is expanded to one variant
        per level (TDP-major order, like :meth:`over_tdp_levels`), which is
        how the paper's burst-vs-throttle TDP story is swept; results read
        back with ``result.get(spec.variant(tdp_w=...), scenario.name,
        suite)``.

        Unless the caller picks another executor, the whole grid is stepped
        in lockstep through the batched dynamics fast path
        (:class:`BatchedExecutor`), which resolves every run's turbo /
        thermal / DVFS / C-state step as one set of numpy operations
        instead of one Python loop per cell.
        """
        tdp_levels_w, suite = _legacy_positionals(
            "Study.over_dynamics",
            legacy,
            ("tdp_levels_w", "suite"),
            (tdp_levels_w, suite),
        )
        request, _ = SweepRequest.from_kwargs(
            "Study.over_dynamics", kwargs, defaults={"executor": "batched"}
        )
        resolved = [resolve_spec(spec) for spec in specs]
        if tdp_levels_w is not None:
            resolved = [
                spec.variant(tdp_w=tdp) for tdp in tdp_levels_w for spec in resolved
            ]
        return cls(resolved, {suite: list(scenarios)}, request=request)

    @classmethod
    def over_population(
        cls,
        specs: Sequence[Union[SystemSpec, str]],
        scenarios: Sequence["DynamicScenario"],
        variations: "VariationModel",
        count: int,
        *legacy: Any,
        tdp_levels_w: Optional[Iterable[float]] = None,
        **kwargs: Any,
    ) -> "PopulationStudy":
        """A process-variation Monte Carlo sweep: specs x TDPs x scenarios x dice.

        Samples *count* dice from *variations* (seeded — pass ``seed=`` to
        pin the draw; it is recorded in the result) and steps every die
        through every (spec variant, scenario) cell.  By default each cell
        runs the whole population in lockstep on the batched fast path;
        ``method="reference"`` expands to one engine task per die instead,
        and ``method="streaming"`` (with ``shard_size=N``) expands to one
        bounded-memory task per fixed-size die shard — shards sample their
        die ranges deterministically, dispatch through this module's
        executors (serial or process-pool), and merge associatively, so
        million-die populations run in O(shard) memory (see
        :mod:`repro.variation.streaming`).  Pass ``cache=StoreCache(...)``
        to land every cell/shard in the persistent run store; warm re-runs
        then execute zero tasks.  Returns a
        :class:`~repro.variation.population.PopulationStudy`
        whose :meth:`~repro.variation.population.PopulationStudy.run`
        yields a JSON-round-tripping
        :class:`~repro.variation.population.PopulationResult` (percentile
        traces, per-die summaries, SKU-bin yields).
        """
        from repro.variation.population import PopulationStudy

        (tdp_levels_w,) = _legacy_positionals(
            "Study.over_population", legacy, ("tdp_levels_w",), (tdp_levels_w,)
        )
        request, extras = SweepRequest.from_kwargs(
            "Study.over_population",
            kwargs,
            extra=("method", "shard_size", "binning"),
            defaults={"seed": 0, "name": "population-study"},
        )
        return PopulationStudy(
            specs,
            scenarios,
            variations,
            count,
            tdp_levels_w=(
                tuple(tdp_levels_w) if tdp_levels_w is not None else None
            ),
            request=request,
            **extras,
        )

    @classmethod
    def over_fleet(
        cls,
        specs: Sequence[Union[SystemSpec, str]],
        profiles: Sequence[Any],
        ensemble: int = 8,
        *,
        tdp_levels_w: Optional[Iterable[float]] = None,
        slo_frequency_hz: Optional[float] = None,
        **kwargs: Any,
    ) -> "FleetStudy":
        """A fleet QoS sweep: specs x TDP levels x profiles x ensemble members.

        Compiles each fleet profile (a
        :class:`~repro.fleet.profiles.FleetProfile` or a registered name
        such as ``"datacenter"``) into a seeded ensemble of *ensemble*
        :class:`~repro.workloads.dynamics.DynamicScenario` members —
        bit-identical per seed and prefix-stable in the ensemble size —
        and steps every (spec variant, member) cell through the study
        machinery.  The default executor is the batched dynamics fast
        path; pass ``cache=StoreCache(...)`` to land every member run in
        the persistent run store, after which a warm re-run executes zero
        simulator tasks.  Member runs pool into per-cell
        :class:`~repro.fleet.qos.EnsembleQos` verdicts (SLO-violation
        rate, throttle residency by limiting factor, worst-member p99
        proxy) judged against *slo_frequency_hz*.  Returns a
        :class:`~repro.analysis.fleet.FleetStudy`; its ``run()`` yields a
        JSON-round-tripping
        :class:`~repro.analysis.fleet.FleetStudyResult`.
        """
        from repro.analysis.fleet import FleetStudy
        from repro.fleet.qos import DEFAULT_SLO_FREQUENCY_HZ

        request, _ = SweepRequest.from_kwargs(
            "Study.over_fleet",
            kwargs,
            defaults={"executor": "batched", "seed": 0, "name": "fleet-study"},
        )
        return FleetStudy(
            specs,
            profiles,
            ensemble=ensemble,
            tdp_levels_w=(
                tuple(tdp_levels_w) if tdp_levels_w is not None else None
            ),
            slo_frequency_hz=(
                DEFAULT_SLO_FREQUENCY_HZ
                if slo_frequency_hz is None
                else slo_frequency_hz
            ),
            request=request,
        )

    @classmethod
    def optimize(
        cls,
        specs: Sequence[Union[SystemSpec, str]],
        spec: "OptimizationSpec",
        *,
        scenario: Optional["DynamicScenario"] = None,
        demand: Optional["CpuDemand"] = None,
        variations: Optional["VariationModel"] = None,
        count: Optional[int] = None,
        binning: Optional["BinningPolicy"] = None,
        **kwargs: Any,
    ) -> "OptimizationStudy":
        """An inverse query: solve for decision variables instead of sweeping.

        Where the ``over_*`` constructors enumerate a grid and report every
        cell, ``optimize`` takes a declarative
        :class:`~repro.analysis.optimize.OptimizationSpec` — constraints
        such as ``sustained_frequency_hz >= 3.0e9``, decision variables
        such as ``tdp_w`` or SKU-bin cutoffs, objectives such as min-TDP or
        max-yield×ASP — and solves it with vectorized bisection,
        Pareto-front extraction, or a vectorized cutoff scan, issuing only
        the probe cells the solver actually needs.  Probes dispatch through
        the exact sweep machinery the ``over_*`` constructors use (same
        executors, caches and run store), so a warm store replays an
        optimization with zero simulator tasks.

        Each entry of *specs* is solved independently (the paper's
        gated-vs-bypassed comparisons put both side by side).  Evaluation
        backend: pass ``scenario=`` to probe the closed-loop dynamics
        engine, ``demand=`` to probe the static sustained-operating-point
        solver, or ``variations=``/``count=`` (with an optional
        ``binning=`` policy) for population cutoff queries.  Returns an
        :class:`~repro.analysis.optimize.OptimizationStudy`; its ``run()``
        yields a JSON-round-tripping
        :class:`~repro.analysis.optimize.OptimizationResult`.
        """
        from repro.analysis.optimize import OptimizationStudy

        request, _ = SweepRequest.from_kwargs(
            "Study.optimize", kwargs, defaults={"name": spec.name}
        )
        return OptimizationStudy(
            specs,
            spec,
            scenario=scenario,
            demand=demand,
            variations=variations,
            count=count,
            binning=binning,
            request=request,
        )
