"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.soc.skus import SKU_DESCRIPTIONS, SkuDescription


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a simple fixed-width text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row values; each row must have the same length as *headers*.
    title:
        Optional title printed above the table.
    """
    materialised: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} columns, expected {len(headers)}"
            )
        materialised.append([_format_cell(value) for value in row])

    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{decimals}f}%"


def format_sku_table(
    descriptions: Optional[Sequence[SkuDescription]] = None,
    title: str = "Evaluated SKUs",
) -> str:
    """Render datasheet rows of the SKU registry as a text table.

    Defaults to every entry of :data:`~repro.soc.skus.SKU_DESCRIPTIONS`
    (the paper's Table 2 parts plus the Broadwell motivation part); pass an
    explicit sequence to render a subset — for example the output of
    :func:`~repro.soc.skus.sku_descriptions`.
    """
    rows = []
    for entry in (
        descriptions if descriptions is not None else SKU_DESCRIPTIONS.values()
    ):
        rows.append(
            [
                entry.name,
                entry.segment,
                entry.package,
                entry.core_count,
                f"{entry.core_frequency_range_ghz[0]:g}-"
                f"{entry.core_frequency_range_ghz[1]:g} GHz",
                f"{entry.graphics_frequency_range_mhz[0]:.0f}-"
                f"{entry.graphics_frequency_range_mhz[1]:.0f} MHz",
                f"{entry.llc_mb:g} MB",
                f"{entry.tdp_range_w[0]:.0f}-{entry.tdp_range_w[1]:.0f} W",
                f"{entry.process_nm} nm",
            ]
        )
    return format_table(
        [
            "SKU",
            "segment",
            "package",
            "cores",
            "core freq",
            "gfx freq",
            "LLC",
            "TDP",
            "process",
        ],
        rows,
        title=title,
    )


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
