"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.common.errors import ConfigurationError


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a simple fixed-width text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row values; each row must have the same length as *headers*.
    title:
        Optional title printed above the table.
    """
    materialised: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} columns, expected {len(headers)}"
            )
        materialised.append([_format_cell(value) for value in row])

    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{decimals}f}%"


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
