"""Experiment definitions: one function per table/figure of the paper.

Every ``run_*`` function regenerates the data behind one evaluation artefact
and returns a structured result.  All of them execute through the
:class:`~repro.analysis.study.Study` sweep runner: each experiment declares
its grid of system specs (from the :mod:`repro.core.spec` registry) and
workload suites, runs it, and reduces the completed grid into the paper's
figure/table shape.  The benchmark harness under ``benchmarks/`` calls these
functions, prints the same rows/series the paper reports, and asserts the
qualitative claims; the absolute values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_table
from repro.analysis.study import CallableTask, Study
from repro.core.spec import SKU_BUILDERS, get_spec
from repro.pdn.ac import ACAnalysis, ImpedanceProfile
from repro.pdn.ladder import PdnConfiguration, SkylakePdnBuilder
from repro.pmu.cstates import table1_rows
from repro.reliability.guardband import ReliabilityGuardbandModel
from repro.soc.skus import (
    BROADWELL_TDP_LEVELS_W,
    SKYLAKE_TDP_LEVELS_W,
    SkuDescription,
    broadwell_desktop,
    sku_descriptions,
)
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.spec import spec_cpu2006_suite


# ---------------------------------------------------------------------------
# Fig. 3 — motivation: -100 mV guardband on a Broadwell-class system
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig3Result:
    """Average performance improvement per group and TDP (paper Fig. 3)."""

    tdp_levels_w: Tuple[float, ...]
    #: group name ("SPECfp_base", ...) -> list of improvements per TDP level
    improvements: Dict[str, List[float]]

    def as_text(self) -> str:
        """Render the figure's data as a text table."""
        headers = ["group"] + [f"{tdp:.0f}W" for tdp in self.tdp_levels_w]
        rows = [
            [group] + [f"{value * 100:.1f}%" for value in values]
            for group, values in self.improvements.items()
        ]
        return format_table(headers, rows, title="Fig. 3: -100 mV guardband on Broadwell")


def run_fig3_guardband_motivation(
    guardband_reduction_v: float = 0.100,
    tdp_levels_w: Tuple[float, ...] = BROADWELL_TDP_LEVELS_W,
) -> Fig3Result:
    """Reproduce Fig. 3: SPEC gains from a flat guardband reduction."""
    groups = {
        "SPECfp_base": ("fp", 1),
        "SPECfp_rate": ("fp", None),
        "SPECint_base": ("int", 1),
        "SPECint_rate": ("int", None),
    }
    core_count = broadwell_desktop(tdp_levels_w[0]).core_count
    suites = {
        group: spec_cpu2006_suite(active_cores=cores or core_count, category=category)
        for group, (category, cores) in groups.items()
    }
    baseline = get_spec("broadwell-baseline")
    reduced = baseline.variant(
        name="broadwell-reduced", guardband_offset_v=-guardband_reduction_v
    )
    study = Study.over_tdp_levels(
        (baseline, reduced), tdp_levels_w, suites, name="fig3"
    )
    grid = study.run()
    improvements: Dict[str, List[float]] = {name: [] for name in groups}
    for tdp in tdp_levels_w:
        before_spec = baseline.variant(tdp_w=tdp)
        after_spec = reduced.variant(tdp_w=tdp)
        for group, suite in suites.items():
            gains = []
            for workload in suite:
                before = grid.get(before_spec, workload, suite=group)
                after = grid.get(after_spec, workload, suite=group)
                gains.append(after.improvement_over(before))
            improvements[group].append(sum(gains) / len(gains))
    return Fig3Result(tdp_levels_w=tuple(tdp_levels_w), improvements=improvements)


# ---------------------------------------------------------------------------
# Fig. 4 — impedance profiles with and without power-gates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4Result:
    """Impedance profiles of the gated and bypassed PDNs (paper Fig. 4)."""

    gated: ImpedanceProfile
    bypassed: ImpedanceProfile

    @property
    def mean_impedance_ratio(self) -> float:
        """Geometric-mean impedance ratio (gated / bypassed)."""
        return self.gated.mean_ratio_to(self.bypassed)

    @property
    def peak_impedance_ratio(self) -> float:
        """Ratio of the worst-case impedance peaks."""
        return self.gated.peak_magnitude_ohm() / self.bypassed.peak_magnitude_ohm()

    def as_text(self) -> str:
        """Render key sweep points as a text table."""
        frequencies = [2.1e5, 2.0e6, 1.4e7, 6.5e7, 9.0e7]
        rows = [
            [
                f"{f / 1e6:.3g} MHz",
                f"{self.gated.impedance_at(f) * 1e3:.2f} mOhm",
                f"{self.bypassed.impedance_at(f) * 1e3:.2f} mOhm",
                f"{self.gated.impedance_at(f) / self.bypassed.impedance_at(f):.2f}x",
            ]
            for f in frequencies
        ]
        return format_table(
            ["frequency", "with power-gates", "bypassed", "ratio"],
            rows,
            title="Fig. 4: PDN impedance profile",
        )


def _impedance_profiles(
    points_per_decade: int,
) -> Tuple[ImpedanceProfile, ImpedanceProfile]:
    """Sweep the gated and bypassed PDNs on a shared frequency grid."""
    gated_cfg = PdnConfiguration()
    bypassed_cfg = gated_cfg.with_bypass()
    profiles = {}
    frequencies = None
    for label, cfg in (("gated", gated_cfg), ("bypassed", bypassed_cfg)):
        builder = SkylakePdnBuilder(cfg)
        analysis = ACAnalysis(builder.build_netlist(), builder.observation_node())
        profile = analysis.sweep(
            start_hz=1e5,
            stop_hz=1e8,
            points_per_decade=points_per_decade,
            label=label,
            frequencies_hz=frequencies,
        )
        if frequencies is None:
            frequencies = [p.frequency_hz for p in profile.points]
        profiles[label] = profile
    return profiles["gated"], profiles["bypassed"]


def run_fig4_impedance_profiles(points_per_decade: int = 40) -> Fig4Result:
    """Reproduce Fig. 4: the impedance-frequency profile of both PDNs."""
    study = Study(
        tasks=(
            CallableTask(
                key="profiles", fn=_impedance_profiles, args=(points_per_decade,)
            ),
        ),
        name="fig4",
    )
    gated, bypassed = study.run().task("profiles")
    return Fig4Result(gated=gated, bypassed=bypassed)


# ---------------------------------------------------------------------------
# Fig. 7 — per-benchmark SPEC CPU2006 gains at 91 W
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Result:
    """Per-benchmark DarkGates gains on SPEC CPU2006 base at 91 W."""

    tdp_w: float
    per_benchmark_improvement: Dict[str, float]
    scalability_by_benchmark: Dict[str, float]

    @property
    def average_improvement(self) -> float:
        """Average improvement across the suite."""
        values = list(self.per_benchmark_improvement.values())
        return sum(values) / len(values)

    @property
    def max_improvement(self) -> float:
        """Largest single-benchmark improvement."""
        return max(self.per_benchmark_improvement.values())

    def best_benchmark(self) -> str:
        """Benchmark with the largest improvement."""
        return max(
            self.per_benchmark_improvement, key=self.per_benchmark_improvement.get
        )

    def worst_benchmark(self) -> str:
        """Benchmark with the smallest improvement."""
        return min(
            self.per_benchmark_improvement, key=self.per_benchmark_improvement.get
        )

    def as_text(self) -> str:
        """Render the per-benchmark improvements as a text table."""
        rows = [
            [name, f"{value * 100:.1f}%", f"{self.scalability_by_benchmark[name]:.2f}"]
            for name, value in sorted(
                self.per_benchmark_improvement.items(), key=lambda kv: -kv[1]
            )
        ]
        rows.append(["AVERAGE", f"{self.average_improvement * 100:.1f}%", ""])
        return format_table(
            ["benchmark", "improvement", "freq scalability"],
            rows,
            title=f"Fig. 7: SPEC CPU2006 base at {self.tdp_w:.0f} W",
        )


def run_fig7_spec_per_benchmark(tdp_w: float = 91.0) -> Fig7Result:
    """Reproduce Fig. 7: per-benchmark SPEC gains of DarkGates at 91 W."""
    darkgates = get_spec("darkgates", tdp_w=tdp_w)
    baseline = get_spec("baseline", tdp_w=tdp_w)
    suite = spec_cpu2006_suite(active_cores=1)
    grid = Study((darkgates, baseline), suite, name="fig7").run()
    improvements = {}
    scalability = {}
    for workload in suite:
        after = grid.get(darkgates, workload)
        before = grid.get(baseline, workload)
        improvements[workload.name] = after.improvement_over(before)
        scalability[workload.name] = workload.frequency_scalability
    return Fig7Result(
        tdp_w=tdp_w,
        per_benchmark_improvement=improvements,
        scalability_by_benchmark=scalability,
    )


# ---------------------------------------------------------------------------
# Fig. 8 — average SPEC gains across TDP levels
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Result:
    """Average SPEC base/rate gains per TDP level (paper Fig. 8)."""

    tdp_levels_w: Tuple[float, ...]
    base_improvements: List[float]
    rate_improvements: List[float]

    def as_text(self) -> str:
        """Render the averages as a text table."""
        rows = [
            [
                f"{tdp:.0f}W",
                f"{base * 100:.1f}%",
                f"{rate * 100:.1f}%",
            ]
            for tdp, base, rate in zip(
                self.tdp_levels_w, self.base_improvements, self.rate_improvements
            )
        ]
        return format_table(
            ["TDP", "SPEC_base", "SPEC_rate"],
            rows,
            title="Fig. 8: average SPEC CPU2006 improvement",
        )


def run_fig8_spec_tdp_sweep(
    tdp_levels_w: Tuple[float, ...] = SKYLAKE_TDP_LEVELS_W,
) -> Fig8Result:
    """Reproduce Fig. 8: average SPEC gains across the TDP sweep."""
    darkgates = get_spec("darkgates")
    baseline = get_spec("baseline")
    core_count = SKU_BUILDERS[darkgates.sku](darkgates.tdp_w).core_count
    suites = {
        "base": spec_cpu2006_suite(active_cores=1),
        "rate": spec_cpu2006_suite(active_cores=core_count),
    }
    study = Study.over_tdp_levels(
        (darkgates, baseline), tdp_levels_w, suites, name="fig8"
    )
    grid = study.run()
    base_improvements = []
    rate_improvements = []
    for tdp in tdp_levels_w:
        after_spec = darkgates.variant(tdp_w=tdp)
        before_spec = baseline.variant(tdp_w=tdp)
        for suite_name, out in (
            ("base", base_improvements),
            ("rate", rate_improvements),
        ):
            gains = [
                grid.get(after_spec, w, suite=suite_name).improvement_over(
                    grid.get(before_spec, w, suite=suite_name)
                )
                for w in suites[suite_name]
            ]
            out.append(sum(gains) / len(gains))
    return Fig8Result(
        tdp_levels_w=tuple(tdp_levels_w),
        base_improvements=base_improvements,
        rate_improvements=rate_improvements,
    )


# ---------------------------------------------------------------------------
# Fig. 9 — 3DMark degradation across TDP levels
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9Result:
    """Average 3DMark degradation per TDP level (paper Fig. 9)."""

    tdp_levels_w: Tuple[float, ...]
    average_degradation: List[float]

    def degradation_at(self, tdp_w: float) -> float:
        """Average degradation at one TDP level."""
        return self.average_degradation[self.tdp_levels_w.index(tdp_w)]

    def as_text(self) -> str:
        """Render the degradations as a text table."""
        rows = [
            [f"{tdp:.0f}W", f"{value * 100:.2f}%"]
            for tdp, value in zip(self.tdp_levels_w, self.average_degradation)
        ]
        return format_table(
            ["TDP", "3DMark degradation"],
            rows,
            title="Fig. 9: graphics performance impact",
        )


def run_fig9_graphics_degradation(
    tdp_levels_w: Tuple[float, ...] = SKYLAKE_TDP_LEVELS_W,
) -> Fig9Result:
    """Reproduce Fig. 9: 3DMark degradation of DarkGates per TDP level."""
    darkgates = get_spec("darkgates")
    baseline = get_spec("baseline")
    suite = three_dmark_suite()
    study = Study.over_tdp_levels(
        (darkgates, baseline), tdp_levels_w, suite, name="fig9"
    )
    grid = study.run()
    degradations = []
    for tdp in tdp_levels_w:
        after_spec = darkgates.variant(tdp_w=tdp)
        before_spec = baseline.variant(tdp_w=tdp)
        losses = [
            grid.get(after_spec, w).degradation_from(grid.get(before_spec, w))
            for w in suite
        ]
        degradations.append(sum(losses) / len(losses))
    return Fig9Result(
        tdp_levels_w=tuple(tdp_levels_w), average_degradation=degradations
    )


# ---------------------------------------------------------------------------
# Fig. 10 — energy-efficiency workloads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig10Result:
    """Average-power reductions for the energy scenarios (paper Fig. 10)."""

    #: scenario name -> (DarkGates+C8 reduction, Non-DarkGates+C7 reduction)
    reductions: Dict[str, Tuple[float, float]]
    #: scenario name -> (DarkGates+C7 meets limit, DarkGates+C8 meets limit,
    #:                   Non-DarkGates+C7 meets limit)
    limit_compliance: Dict[str, Tuple[bool, bool, bool]]
    #: scenario name -> average power of the DarkGates+C7 reference (watts)
    reference_power_w: Dict[str, float]

    def as_text(self) -> str:
        """Render the reductions as a text table."""
        rows = []
        for scenario, (c8, baseline) in self.reductions.items():
            compliance = self.limit_compliance[scenario]
            rows.append(
                [
                    scenario,
                    f"{c8 * 100:.0f}%",
                    f"{baseline * 100:.0f}%",
                    "yes" if compliance[1] else "no",
                    "yes" if compliance[0] else "no",
                ]
            )
        return format_table(
            [
                "scenario",
                "DarkGates+C8 reduction",
                "Non-DarkGates+C7 reduction",
                "DarkGates+C8 meets limit",
                "DarkGates+C7 meets limit",
            ],
            rows,
            title="Fig. 10: energy-efficiency workloads (vs DarkGates+C7)",
        )


def run_fig10_energy_efficiency(tdp_w: float = 91.0) -> Fig10Result:
    """Reproduce Fig. 10: ENERGY STAR and RMT average-power reductions."""
    darkgates_c8 = get_spec("darkgates", tdp_w=tdp_w)
    darkgates_c7 = get_spec("darkgates+c7", tdp_w=tdp_w)
    baseline_c7 = get_spec("baseline", tdp_w=tdp_w)
    scenarios = (energy_star_scenario(), rmt_scenario())
    grid = Study(
        (darkgates_c8, darkgates_c7, baseline_c7), scenarios, name="fig10"
    ).run()
    reductions: Dict[str, Tuple[float, float]] = {}
    compliance: Dict[str, Tuple[bool, bool, bool]] = {}
    reference: Dict[str, float] = {}
    for scenario in scenarios:
        c7 = grid.get(darkgates_c7, scenario)
        c8 = grid.get(darkgates_c8, scenario)
        baseline = grid.get(baseline_c7, scenario)
        reductions[scenario.name] = (
            c8.reduction_from(c7),
            baseline.reduction_from(c7),
        )
        compliance[scenario.name] = (
            c7.meets_limit,
            c8.meets_limit,
            baseline.meets_limit,
        )
        reference[scenario.name] = c7.average_power_w
    return Fig10Result(
        reductions=reductions,
        limit_compliance=compliance,
        reference_power_w=reference,
    )


# ---------------------------------------------------------------------------
# Tables 1 and 2, and the Section 4.2 reliability numbers
# ---------------------------------------------------------------------------

def run_table1_package_cstates() -> List[Tuple[str, str]]:
    """Reproduce Table 1: package C-states and their entry conditions."""
    study = Study(tasks=(CallableTask(key="table1", fn=table1_rows),), name="table1")
    return study.run().task("table1")


def run_table2_system_parameters() -> Tuple[SkuDescription, SkuDescription]:
    """Reproduce Table 2: parameters of the evaluated systems."""
    study = Study(
        tasks=(CallableTask(key="table2", fn=sku_descriptions),), name="table2"
    )
    return study.run().task("table2")


@dataclass(frozen=True)
class ReliabilityResult:
    """The Section 4.2 reliability-guardband numbers."""

    high_tdp_guardband_v: float
    low_tdp_guardband_v: float


def _sec42_guardbands() -> Tuple[float, float]:
    model = ReliabilityGuardbandModel()
    return (
        model.guardband_for_high_tdp_desktop(),
        model.guardband_for_low_tdp_desktop(),
    )


def run_sec42_reliability_guardband() -> ReliabilityResult:
    """Reproduce the Section 4.2 reliability guardband estimates."""
    study = Study(
        tasks=(CallableTask(key="sec42", fn=_sec42_guardbands),), name="sec42"
    )
    high, low = study.run().task("sec42")
    return ReliabilityResult(
        high_tdp_guardband_v=high,
        low_tdp_guardband_v=low,
    )
