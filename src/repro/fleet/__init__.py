"""Seeded stochastic fleet-workload generation.

The dynamic scenarios of :mod:`repro.workloads.dynamics` are hand-built
timelines; this package generates them *stochastically* from declarative
request-arrival processes, so the paper's gated-vs-bypass verdict can be
quantified per fleet workload **mix** instead of per synthetic burst:

* :mod:`repro.fleet.arrivals` — frozen, seeded arrival-process specs
  (Poisson, diurnal-modulated, self-similar ON/OFF, deterministic duty
  cycle) with a composition algebra mirroring
  :class:`~repro.pdn.transients.LoadTrace` (``then`` / ``overlay`` /
  ``scaled`` / ``repeated``);
* :mod:`repro.fleet.profiles` — named fleet profiles (datacenter duty
  cycle, consumer interactive, graphics+IA co-scheduling) compiled into
  :class:`~repro.workloads.dynamics.DynamicScenario` timelines through the
  bit-deterministic :class:`~repro.fleet.profiles.ScenarioGenerator`;
* :mod:`repro.fleet.qos` — per-scenario QoS metrics (frequency-SLO
  violation rate, throttle residency by limiting factor, a p99 latency
  proxy) computed from :class:`~repro.sim.metrics.DynamicRunResult`
  traces, plus the seeded-ensemble aggregation behind
  ``Study.over_fleet``.

Importing the package registers the named profiles in
:data:`~repro.workloads.dynamics.SCENARIO_BUILDERS`, so
``python -m repro run --scenario fleet-datacenter`` (or ``--profile``)
builds exactly the scenarios the library compiles.
"""

from repro.fleet.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    DutyCycleArrivals,
    OnOffArrivals,
    OverlayArrivals,
    PoissonArrivals,
    ScaledArrivals,
    SequenceArrivals,
)
from repro.fleet.profiles import (
    FLEET_PROFILE_PREFIX,
    FleetProfile,
    ScenarioGenerator,
    consumer_interactive_profile,
    datacenter_profile,
    fleet_profile,
    fleet_profile_names,
    graphics_coschedule_profile,
)
from repro.fleet.qos import (
    EnsembleQos,
    QosAccumulator,
    QosReport,
    aggregate_reports,
)

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "DutyCycleArrivals",
    "OnOffArrivals",
    "OverlayArrivals",
    "PoissonArrivals",
    "ScaledArrivals",
    "SequenceArrivals",
    "FLEET_PROFILE_PREFIX",
    "FleetProfile",
    "ScenarioGenerator",
    "consumer_interactive_profile",
    "datacenter_profile",
    "fleet_profile",
    "fleet_profile_names",
    "graphics_coschedule_profile",
    "EnsembleQos",
    "QosAccumulator",
    "QosReport",
    "aggregate_reports",
]
