"""Per-scenario QoS metrics from dynamic-run traces.

A :class:`QosReport` judges one :class:`~repro.sim.metrics.DynamicRunResult`
against a frequency SLO: the **violation rate** (fraction of active steps
below the SLO frequency), the **throttle residency** by limiting factor
(power vs thermal), and a **p99 latency proxy** — the 99th-percentile of
the per-step normalised service time ``slo_frequency / frequency`` (1.0
means exactly at SLO; 1.25 means the slowest percentile of work ran 25%
longer than the SLO allows).

:class:`QosAccumulator` is the mergeable builder behind it.  It keeps the
raw active-step samples, so accumulation is **exactly** chunk-invariant:
feeding a trace step-by-step, in arbitrary chunks, or whole produces
bit-identical reports — including the p99 order statistic, which no
summary-only accumulator can promise.

:class:`EnsembleQos` pools member reports of one seeded scenario ensemble
(weighted by active steps, worst-case p99), the aggregation surfaced by
``Study.over_fleet``.  All report payloads are JSON schema-versioned via
the shared :data:`~repro.sim.metrics.RESULT_SCHEMA_VERSION`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive
from repro.sim.metrics import (
    RESULT_SCHEMA_VERSION,
    THROTTLE_FACTORS,
    DynamicRunResult,
    check_payload_schema,
)

#: Default frequency SLO: the floor below which an active step counts as a
#: violation.  2.0 GHz sits between the paper's TDP-limited sustained
#: frequencies and its turbo range, so both verdict sides are exercised.
DEFAULT_SLO_FREQUENCY_HZ = 2.0e9

#: Order-statistic rank of the latency proxy (p99).
LATENCY_PERCENTILE = 0.99


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """The exact ``ceil(fraction * n)``-th order statistic of *samples*.

    A plain order statistic (no interpolation) so the result depends only
    on the sample *set*, never on how it was accumulated.
    """
    ordered = sorted(samples)
    rank = min(len(ordered), max(1, math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


@dataclass(frozen=True)
class QosReport:
    """QoS verdict of one dynamic run against a frequency SLO.

    Parameters
    ----------
    name:
        Scenario (or ensemble-member) name the report describes.
    slo_frequency_hz:
        The frequency SLO judged against.
    active_steps:
        Number of active (non-idle) trace steps behind the metrics.
    violation_rate:
        Fraction of active steps whose frequency fell below the SLO.
    throttle_residency:
        Fraction of active steps throttled, keyed by limiting factor
        (every :data:`~repro.sim.metrics.THROTTLE_FACTORS` key present).
    throttled_fraction:
        Total power+thermal throttle residency.
    p99_latency_proxy:
        99th-percentile normalised service time (``slo / frequency``).
    mean_frequency_hz:
        Mean active-step frequency.
    """

    name: str
    slo_frequency_hz: float
    active_steps: int
    violation_rate: float
    throttle_residency: Dict[str, float]
    throttled_fraction: float
    p99_latency_proxy: float
    mean_frequency_hz: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("report name must be a non-empty string")
        ensure_positive(self.slo_frequency_hz, "slo_frequency_hz")
        if self.active_steps < 0:
            raise ConfigurationError("active_steps must be >= 0")

    @property
    def meets_slo(self) -> bool:
        """True when no active step violated the frequency SLO."""
        return self.violation_rate == 0.0

    @classmethod
    def from_result(
        cls,
        result: DynamicRunResult,
        slo_frequency_hz: float = DEFAULT_SLO_FREQUENCY_HZ,
        name: Optional[str] = None,
    ) -> "QosReport":
        """Judge one dynamic run against *slo_frequency_hz*."""
        accumulator = QosAccumulator()
        accumulator.add_result(result)
        return accumulator.report(
            name or result.scenario_name, slo_frequency_hz
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, schema-versioned payload of this report."""
        return {
            "kind": "qos",
            "schema_version": RESULT_SCHEMA_VERSION,
            "name": self.name,
            "slo_frequency_hz": self.slo_frequency_hz,
            "active_steps": self.active_steps,
            "violation_rate": self.violation_rate,
            "throttle_residency": dict(self.throttle_residency),
            "throttled_fraction": self.throttled_fraction,
            "p99_latency_proxy": self.p99_latency_proxy,
            "mean_frequency_hz": self.mean_frequency_hz,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QosReport":
        """Rebuild a report from a :meth:`to_dict` payload."""
        check_payload_schema(data, "QoS report")
        return cls(
            name=data["name"],
            slo_frequency_hz=data["slo_frequency_hz"],
            active_steps=data["active_steps"],
            violation_rate=data["violation_rate"],
            throttle_residency=dict(data["throttle_residency"]),
            throttled_fraction=data["throttled_fraction"],
            p99_latency_proxy=data["p99_latency_proxy"],
            mean_frequency_hz=data["mean_frequency_hz"],
        )


class QosAccumulator:
    """Mergeable accumulator of active-step QoS samples.

    Keeps the raw per-step samples (frequency + limiting factor of every
    active step), so any partition of a trace into chunks — and any merge
    order — yields bit-identical reports.  Memory is bounded by the active
    step count, which for fleet scenarios is a few thousand floats.
    """

    def __init__(self) -> None:
        self._frequencies_hz: List[float] = []
        self._limiting_factors: List[str] = []

    @property
    def active_steps(self) -> int:
        """Active samples accumulated so far."""
        return len(self._frequencies_hz)

    def add_steps(
        self,
        frequencies_hz: Sequence[float],
        limiting_factors: Sequence[str],
    ) -> "QosAccumulator":
        """Accumulate a chunk of trace steps (idle steps are skipped)."""
        if len(frequencies_hz) != len(limiting_factors):
            raise ConfigurationError(
                "frequencies_hz and limiting_factors must have equal length"
            )
        for frequency, factor in zip(frequencies_hz, limiting_factors):
            if frequency > 0.0:
                self._frequencies_hz.append(float(frequency))
                self._limiting_factors.append(str(factor))
        return self

    def add_result(self, result: DynamicRunResult) -> "QosAccumulator":
        """Accumulate every active step of a dynamic run."""
        return self.add_steps(result.frequencies_hz, result.limiting_factors)

    def merge(self, other: "QosAccumulator") -> "QosAccumulator":
        """Fold another accumulator's samples into this one."""
        self._frequencies_hz.extend(other._frequencies_hz)
        self._limiting_factors.extend(other._limiting_factors)
        return self

    def report(
        self,
        name: str,
        slo_frequency_hz: float = DEFAULT_SLO_FREQUENCY_HZ,
    ) -> QosReport:
        """The QoS verdict of everything accumulated so far."""
        ensure_positive(slo_frequency_hz, "slo_frequency_hz")
        n = self.active_steps
        if n == 0:
            return QosReport(
                name=name,
                slo_frequency_hz=slo_frequency_hz,
                active_steps=0,
                violation_rate=0.0,
                throttle_residency={f: 0.0 for f in THROTTLE_FACTORS},
                throttled_fraction=0.0,
                p99_latency_proxy=0.0,
                mean_frequency_hz=0.0,
            )
        violations = sum(
            1 for f in self._frequencies_hz if f < slo_frequency_hz
        )
        throttle_counts = {factor: 0 for factor in THROTTLE_FACTORS}
        for factor in self._limiting_factors:
            if factor in throttle_counts:
                throttle_counts[factor] += 1
        residency = {
            factor: count / n for factor, count in throttle_counts.items()
        }
        latencies = [slo_frequency_hz / f for f in self._frequencies_hz]
        return QosReport(
            name=name,
            slo_frequency_hz=slo_frequency_hz,
            active_steps=n,
            violation_rate=violations / n,
            throttle_residency=residency,
            throttled_fraction=sum(residency.values()),
            p99_latency_proxy=_percentile(latencies, LATENCY_PERCENTILE),
            mean_frequency_hz=sum(self._frequencies_hz) / n,
        )


@dataclass(frozen=True)
class EnsembleQos:
    """Pooled QoS of one seeded scenario ensemble.

    Rates and residencies are pooled exactly (weighted by each member's
    active steps); the p99 proxy is the **worst member's** p99 — the
    conservative fleet-tail read, since member samples are not retained.
    """

    name: str
    slo_frequency_hz: float
    members: int
    active_steps: int
    violation_rate: float
    worst_violation_rate: float
    throttle_residency: Dict[str, float]
    throttled_fraction: float
    p99_latency_proxy: float
    reports: Tuple[QosReport, ...]

    def __post_init__(self) -> None:
        if self.members < 1:
            raise ConfigurationError("an ensemble needs at least one member")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, schema-versioned payload of this ensemble."""
        return {
            "kind": "ensemble_qos",
            "schema_version": RESULT_SCHEMA_VERSION,
            "name": self.name,
            "slo_frequency_hz": self.slo_frequency_hz,
            "members": self.members,
            "active_steps": self.active_steps,
            "violation_rate": self.violation_rate,
            "worst_violation_rate": self.worst_violation_rate,
            "throttle_residency": dict(self.throttle_residency),
            "throttled_fraction": self.throttled_fraction,
            "p99_latency_proxy": self.p99_latency_proxy,
            "reports": [report.to_dict() for report in self.reports],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EnsembleQos":
        """Rebuild an ensemble from a :meth:`to_dict` payload."""
        check_payload_schema(data, "ensemble QoS")
        return cls(
            name=data["name"],
            slo_frequency_hz=data["slo_frequency_hz"],
            members=data["members"],
            active_steps=data["active_steps"],
            violation_rate=data["violation_rate"],
            worst_violation_rate=data["worst_violation_rate"],
            throttle_residency=dict(data["throttle_residency"]),
            throttled_fraction=data["throttled_fraction"],
            p99_latency_proxy=data["p99_latency_proxy"],
            reports=tuple(
                QosReport.from_dict(report) for report in data["reports"]
            ),
        )


def aggregate_reports(
    reports: Sequence[QosReport], name: Optional[str] = None
) -> EnsembleQos:
    """Pool member reports of one ensemble into an :class:`EnsembleQos`.

    All members must share the same frequency SLO.  Rates pool weighted by
    active steps (exactly the rate of the concatenated sample); the p99
    proxy is the worst member's.
    """
    if not reports:
        raise ConfigurationError("aggregate_reports needs at least one report")
    slos = {report.slo_frequency_hz for report in reports}
    if len(slos) != 1:
        raise ConfigurationError(
            f"cannot pool reports with different SLOs: {sorted(slos)}"
        )
    total = sum(report.active_steps for report in reports)
    if total > 0:
        violation = (
            sum(r.violation_rate * r.active_steps for r in reports) / total
        )
        residency = {
            factor: sum(
                r.throttle_residency.get(factor, 0.0) * r.active_steps
                for r in reports
            )
            / total
            for factor in THROTTLE_FACTORS
        }
    else:
        violation = 0.0
        residency = {factor: 0.0 for factor in THROTTLE_FACTORS}
    return EnsembleQos(
        name=name or reports[0].name,
        slo_frequency_hz=reports[0].slo_frequency_hz,
        members=len(reports),
        active_steps=total,
        violation_rate=violation,
        worst_violation_rate=max(r.violation_rate for r in reports),
        throttle_residency=residency,
        throttled_fraction=sum(residency.values()),
        p99_latency_proxy=max(r.p99_latency_proxy for r in reports),
        reports=tuple(reports),
    )
