"""Seeded request-arrival processes and their composition algebra.

An :class:`ArrivalProcess` declares *how load arrives* over a time horizon:
a Poisson stream, a diurnally-modulated stream, a self-similar ON/OFF
(bursty) source, or a deterministic duty cycle.  Sampling a process yields
the per-slot **offered load** — a non-negative utilisation-like series on a
fixed slot grid — which :mod:`repro.fleet.profiles` quantises into
:class:`~repro.workloads.dynamics.DynamicScenario` phase timelines.

Determinism follows the block-seeded discipline of
:class:`~repro.variation.sampler.DiePopulationSampler`: every draw comes
from ``numpy.random.default_rng(SeedSequence(entropy=seed, spawn_key=key))``
where *key* is the node's **path** in the composition tree (prefixed by the
ensemble member index in :mod:`repro.fleet.profiles`).  A leaf's randomness
therefore depends only on ``(seed, path)`` — never on sibling processes,
ensemble size, or draw order — which is what makes the algebra lawful:

* ``a.then(b)`` and ``a.repeated(n)`` flatten into one
  :class:`SequenceArrivals`, so ``a.then(a) == a.repeated(2)`` exactly and
  ``then`` is associative both structurally and stochastically;
* ``a.overlay(b)`` flattens into one :class:`OverlayArrivals` whose sample
  is the padded **sum** of its children's samples;
* ``a.scaled(k)`` multiplies the sampled load by *k* without touching the
  draw (and folds: ``a.scaled(j).scaled(k) == a.scaled(j * k)``).

Every spec is a frozen dataclass with canonicalizable fields, so arrival
processes hash into run-store fingerprints like any other descriptor
(they are RPR004-checked via the ``fingerprint-roots`` lint contract).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range, ensure_positive

#: Path key type: the spawn-key tuple addressing one node's generator.
SeedKey = Tuple[int, ...]


def spawned_rng(seed: int, key: SeedKey) -> np.random.Generator:
    """The deterministic generator of tree path *key* under *seed*.

    Mirrors the sampler's block discipline
    (``SeedSequence(entropy=seed, spawn_key=(block,))``): the stream depends
    only on ``(seed, key)``, so any node of any composition draws the same
    numbers in any process, on any platform.
    """
    sequence = np.random.SeedSequence(entropy=int(seed), spawn_key=tuple(key))
    return np.random.default_rng(sequence)


def slot_count(duration_s: float, slot_s: float) -> int:
    """Slots covering *duration_s* at resolution *slot_s* (at least one)."""
    ensure_positive(slot_s, "slot_s")
    return max(1, round(duration_s / slot_s))


class ArrivalProcess:
    """Base of every arrival-process spec: sampling plus the algebra.

    Concrete processes are frozen dataclasses implementing
    :attr:`duration_s` and :meth:`_sample`; this base contributes
    :meth:`sample_load` (the seeded public entry point) and the
    composition operators.
    """

    # -- the sampling contract ---------------------------------------------------------
    #
    # Every concrete process exposes ``duration_s`` (leaves as a dataclass
    # field, combinators as a derived property) and implements ``_sample``.
    # The base deliberately does NOT declare a ``duration_s`` property: a
    # property object on the base would read as a field default to the
    # dataclass machinery of the leaves.

    duration_s: float

    def _sample(
        self, slot_s: float, seed: int, key: SeedKey
    ) -> np.ndarray:
        """Per-slot offered load of this node at tree path *key*."""
        raise NotImplementedError

    def sample_load(
        self, slot_s: float, seed: int, key: SeedKey = ()
    ) -> np.ndarray:
        """Draw the per-slot offered-load series of this process.

        The result has :func:`slot_count` ``(duration_s, slot_s)`` entries,
        every entry ``>= 0``.  Fixing ``(seed, key)`` fixes the series
        bit-for-bit across processes and platforms.
        """
        loads = self._sample(slot_s, int(seed), tuple(key))
        loads.flags.writeable = False
        return loads

    # -- the composition algebra -------------------------------------------------------

    def then(self, other: "ArrivalProcess") -> "SequenceArrivals":
        """This process followed in time by *other* (flattened)."""
        return SequenceArrivals(children=_chain(self) + _chain(other))

    def repeated(self, count: int) -> "ArrivalProcess":
        """This process repeated *count* times back to back.

        ``a.repeated(n)`` equals the n-fold ``then`` chain of *a* exactly —
        the same flattened :class:`SequenceArrivals`, hence the same draws.
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        if count == 1:
            return self
        return SequenceArrivals(children=_chain(self) * count)

    def overlay(self, other: "ArrivalProcess") -> "OverlayArrivals":
        """Sum of this process and *other* (shorter child zero-padded)."""
        return OverlayArrivals(children=_stack(self) + _stack(other))

    def scaled(self, factor: float) -> "ArrivalProcess":
        """This process with every sampled load multiplied by *factor*.

        Scaling is applied after the draw, so it never perturbs the
        underlying randomness; nested scales fold into one node.
        """
        ensure_positive(factor, "factor")
        if isinstance(self, ScaledArrivals):
            return replace(self, factor=self.factor * factor)
        return ScaledArrivals(process=self, factor=factor)


def _chain(process: ArrivalProcess) -> Tuple[ArrivalProcess, ...]:
    if isinstance(process, SequenceArrivals):
        return process.children
    return (process,)


def _stack(process: ArrivalProcess) -> Tuple[ArrivalProcess, ...]:
    if isinstance(process, OverlayArrivals):
        return process.children
    return (process,)


def _check_children(children: Tuple[ArrivalProcess, ...], what: str) -> None:
    if not children:
        raise ConfigurationError(f"{what} needs at least one child process")
    for child in children:
        if not isinstance(child, ArrivalProcess):
            raise ConfigurationError(
                f"{what} children must be arrival processes, got "
                f"{type(child).__name__}"
            )


# -- leaf processes --------------------------------------------------------------------


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless request arrivals at a constant mean rate.

    Parameters
    ----------
    duration_s:
        Time horizon.
    rate_hz:
        Mean request arrival rate.
    request_load:
        Offered load contributed by each request landing in a slot (the
        per-request service demand as a fraction of one core-slot).
    """

    duration_s: float
    rate_hz: float
    request_load: float = 0.25

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        if self.rate_hz < 0.0:
            raise ConfigurationError("rate_hz must be >= 0")
        ensure_positive(self.request_load, "request_load")

    def _sample(self, slot_s: float, seed: int, key: SeedKey) -> np.ndarray:
        n = slot_count(self.duration_s, slot_s)
        rng = spawned_rng(seed, key)
        counts = rng.poisson(self.rate_hz * slot_s, size=n)
        return counts.astype(float) * self.request_load


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Poisson arrivals whose rate follows a day/night (sinusoidal) cycle.

    The instantaneous rate at slot midpoint *t* is
    ``rate_hz * max(0, 1 + amplitude * sin(2 pi (t / period_s + phase)))``.

    Parameters
    ----------
    duration_s:
        Time horizon.
    rate_hz:
        Mean (mid-cycle) request rate.
    amplitude:
        Peak-to-mean modulation depth, ``0..1``.
    period_s:
        Length of one diurnal cycle.
    phase:
        Cycle phase offset in turns (0..1).
    request_load:
        Offered load contributed per request.
    """

    duration_s: float
    rate_hz: float
    amplitude: float = 0.8
    period_s: float = 86400.0
    phase: float = 0.0
    request_load: float = 0.25

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        if self.rate_hz < 0.0:
            raise ConfigurationError("rate_hz must be >= 0")
        ensure_in_range(self.amplitude, 0.0, 1.0, "amplitude")
        ensure_positive(self.period_s, "period_s")
        ensure_in_range(self.phase, 0.0, 1.0, "phase")
        ensure_positive(self.request_load, "request_load")

    def _sample(self, slot_s: float, seed: int, key: SeedKey) -> np.ndarray:
        n = slot_count(self.duration_s, slot_s)
        midpoints = (np.arange(n) + 0.5) * slot_s
        modulation = 1.0 + self.amplitude * np.sin(
            2.0 * math.pi * (midpoints / self.period_s + self.phase)
        )
        rates = self.rate_hz * np.maximum(modulation, 0.0)
        rng = spawned_rng(seed, key)
        counts = rng.poisson(rates * slot_s)
        return counts.astype(float) * self.request_load


@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """A self-similar ON/OFF (bursty) source with heavy-tailed sojourns.

    ON and OFF dwell times are Pareto-distributed with tail index
    *alpha* — the classical construction whose superposition produces
    self-similar (long-range-dependent) traffic.  During ON periods the
    source offers *on_load*; OFF periods offer nothing.  Partial slot
    overlaps contribute fractionally, so the sampled series is exact for
    any slot resolution.

    Parameters
    ----------
    duration_s:
        Time horizon.
    mean_on_s / mean_off_s:
        Mean ON / OFF dwell times.
    alpha:
        Pareto tail index (``1 < alpha <= 2`` gives the self-similar
        heavy-tail regime).
    on_load:
        Offered load while ON.
    """

    duration_s: float
    mean_on_s: float = 4.0
    mean_off_s: float = 8.0
    alpha: float = 1.5
    on_load: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        ensure_positive(self.mean_on_s, "mean_on_s")
        ensure_positive(self.mean_off_s, "mean_off_s")
        if not 1.0 < self.alpha <= 2.0:
            raise ConfigurationError(
                "alpha must lie in (1, 2] for a finite-mean heavy tail"
            )
        ensure_positive(self.on_load, "on_load")

    def _pareto(self, rng: np.random.Generator, mean_s: float) -> float:
        # Classical Pareto with tail alpha and mean `mean_s`:
        # scale m = mean * (alpha - 1) / alpha, sample = m * (1 + Lomax).
        scale = mean_s * (self.alpha - 1.0) / self.alpha
        return scale * (1.0 + float(rng.pareto(self.alpha)))

    def _sample(self, slot_s: float, seed: int, key: SeedKey) -> np.ndarray:
        n = slot_count(self.duration_s, slot_s)
        horizon = n * slot_s
        rng = spawned_rng(seed, key)
        loads = np.zeros(n)
        time_s = 0.0
        # Alternate ON/OFF dwell periods until the horizon is covered,
        # spreading each ON interval over the slots it overlaps.
        while time_s < horizon:
            on_s = self._pareto(rng, self.mean_on_s)
            on_start, on_end = time_s, min(time_s + on_s, horizon)
            first = int(on_start / slot_s)
            last = min(int(math.ceil(on_end / slot_s)), n)
            for slot in range(first, last):
                lo = max(on_start, slot * slot_s)
                hi = min(on_end, (slot + 1) * slot_s)
                if hi > lo:
                    loads[slot] += self.on_load * (hi - lo) / slot_s
            time_s += on_s + self._pareto(rng, self.mean_off_s)
        return loads


@dataclass(frozen=True)
class DutyCycleArrivals(ArrivalProcess):
    """A deterministic periodic duty cycle (no randomness drawn at all).

    Each period opens with ``on_fraction`` of ON time at *load*, then
    rests.  Partial slot overlaps contribute fractionally.

    Parameters
    ----------
    duration_s:
        Time horizon.
    period_s:
        Cycle period.
    on_fraction:
        Fraction of each period spent ON, ``0..1``.
    load:
        Offered load while ON.
    """

    duration_s: float
    period_s: float = 10.0
    on_fraction: float = 0.5
    load: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.duration_s, "duration_s")
        ensure_positive(self.period_s, "period_s")
        ensure_in_range(self.on_fraction, 0.0, 1.0, "on_fraction")
        if self.load < 0.0:
            raise ConfigurationError("load must be >= 0")

    def _on_overlap_s(self, t0: float, t1: float) -> float:
        """ON time inside ``[t0, t1)`` of the periodic ON/OFF pattern."""
        on_s = self.on_fraction * self.period_s
        total = 0.0
        period = int(t0 / self.period_s)
        while period * self.period_s < t1:
            on_start = period * self.period_s
            lo = max(t0, on_start)
            hi = min(t1, on_start + on_s)
            if hi > lo:
                total += hi - lo
            period += 1
        return total

    def _sample(self, slot_s: float, seed: int, key: SeedKey) -> np.ndarray:
        n = slot_count(self.duration_s, slot_s)
        loads = np.empty(n)
        for slot in range(n):
            overlap = self._on_overlap_s(slot * slot_s, (slot + 1) * slot_s)
            loads[slot] = self.load * overlap / slot_s
        return loads


# -- combinators -----------------------------------------------------------------------


@dataclass(frozen=True)
class SequenceArrivals(ArrivalProcess):
    """Children played back to back in time (the ``then`` combinator).

    Child *i* draws from tree path ``key + (i,)``, so a child's randomness
    is independent of its siblings and of how the sequence was assembled
    (``a.then(b).then(c)``, ``a.then(b.then(c))`` and a literal
    three-child sequence are one and the same flattened spec).
    """

    children: Tuple[ArrivalProcess, ...]

    def __post_init__(self) -> None:
        _check_children(self.children, "SequenceArrivals")
        if any(isinstance(c, SequenceArrivals) for c in self.children):
            raise ConfigurationError(
                "SequenceArrivals children must be flattened; build "
                "sequences with .then()/.repeated()"
            )

    @property
    def duration_s(self) -> float:
        return sum(child.duration_s for child in self.children)

    def _sample(self, slot_s: float, seed: int, key: SeedKey) -> np.ndarray:
        return np.concatenate(
            [
                child._sample(slot_s, seed, key + (index,))
                for index, child in enumerate(self.children)
            ]
        )


@dataclass(frozen=True)
class OverlayArrivals(ArrivalProcess):
    """Children summed slot-wise (the ``overlay`` combinator).

    Shorter children are zero-padded to the longest child's slot grid;
    child *i* draws from tree path ``key + (i,)``.
    """

    children: Tuple[ArrivalProcess, ...]

    def __post_init__(self) -> None:
        _check_children(self.children, "OverlayArrivals")
        if any(isinstance(c, OverlayArrivals) for c in self.children):
            raise ConfigurationError(
                "OverlayArrivals children must be flattened; build "
                "overlays with .overlay()"
            )

    @property
    def duration_s(self) -> float:
        return max(child.duration_s for child in self.children)

    def _sample(self, slot_s: float, seed: int, key: SeedKey) -> np.ndarray:
        n = slot_count(self.duration_s, slot_s)
        total = np.zeros(n)
        for index, child in enumerate(self.children):
            sample = child._sample(slot_s, seed, key + (index,))
            total[: len(sample)] += sample[:n]
        return total


@dataclass(frozen=True)
class ScaledArrivals(ArrivalProcess):
    """A child process with its sampled load multiplied by a factor.

    The scale applies *after* the draw on the child's own tree path, so
    ``a.scaled(k).sample_load(...) == a.sample_load(...) * k`` exactly.
    """

    process: ArrivalProcess
    factor: float

    def __post_init__(self) -> None:
        if not isinstance(self.process, ArrivalProcess):
            raise ConfigurationError(
                "ScaledArrivals wraps an arrival process, got "
                f"{type(self.process).__name__}"
            )
        ensure_positive(self.factor, "factor")

    @property
    def duration_s(self) -> float:
        return self.process.duration_s

    def _sample(self, slot_s: float, seed: int, key: SeedKey) -> np.ndarray:
        return self.process._sample(slot_s, seed, key) * self.factor
